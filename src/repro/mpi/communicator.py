"""Rank-bound communicator: the object MPI application code programs
against (a thin veneer over the runtime and the collective functions)."""

from __future__ import annotations

from typing import Any, Callable

from repro.mpi import collectives
from repro.mpi.runtime import ANY_SOURCE, ANY_TAG, MpiRuntime, Rank


class Communicator:
    """MPI_COMM_WORLD as seen from one rank."""

    def __init__(self, runtime: MpiRuntime, rank: int) -> None:
        self.runtime = runtime
        self._rank = runtime.rank_object(rank)

    @property
    def rank(self) -> int:
        return self._rank.rank

    @property
    def size(self) -> int:
        return self.runtime.world_size

    @property
    def node(self):
        return self._rank.node

    @property
    def rank_object(self) -> Rank:
        return self._rank

    # -- point-to-point ----------------------------------------------------
    def send(self, dest: int, payload: Any, size: int, tag: int = 0):
        """Generator: MPI_Send (eager or rendezvous by size)."""
        yield from self._rank.send(dest, payload, size, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: MPI_Recv -> (payload, size, source)."""
        result = yield from self._rank.recv(source, tag)
        return result

    def isend(self, dest: int, payload: Any, size: int, tag: int = 0):
        """Generator: MPI_Isend -> request handle (wait() to complete)."""
        handle = yield from self._rank.isend(dest, payload, size, tag)
        return handle

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: MPI_Irecv -> request handle (wait() to receive)."""
        handle = yield from self._rank.irecv(source, tag)
        return handle

    # -- collectives ---------------------------------------------------------
    def barrier(self):
        """Generator: MPI_Barrier."""
        yield from collectives.barrier(self._rank)

    def alltoall(self, chunks):
        """Generator: MPI_Alltoall -> payloads indexed by source."""
        result = yield from collectives.alltoall(self._rank, chunks)
        return result

    def bcast(self, payload: Any, size: int, root: int = 0):
        """Generator: MPI_Bcast -> payload on every rank."""
        result = yield from collectives.bcast(self._rank, payload, size,
                                              root)
        return result

    def gather(self, payload: Any, size: int, root: int = 0):
        """Generator: MPI_Gather -> list at root, None elsewhere."""
        result = yield from collectives.gather(self._rank, payload, size,
                                               root)
        return result

    def scatter(self, chunks, root: int = 0):
        """Generator: MPI_Scatter -> this rank's payload."""
        result = yield from collectives.scatter(self._rank, chunks, root)
        return result

    def allreduce(self, value: Any, size: int,
                  op: Callable[[Any, Any], Any]):
        """Generator: MPI_Allreduce -> folded value on every rank."""
        result = yield from collectives.allreduce(self._rank, value, size,
                                                  op)
        return result

    # -- multi-process shared-memory surcharge ------------------------------
    def charge_shm_access(self, num_bytes: int):
        """Generator: cost of touching shared state across processes."""
        yield from self._rank.charge_shm_access(num_bytes)
