"""MPI collective operations (bulk-synchronous).

Every collective has BSP semantics: no data moves before all ranks have
entered with their complete input, and no rank leaves before the exchange
finished — exactly the property that makes MPI collectives unable to
overlap computation with communication and sensitive to stragglers
(paper Sections 2.3 and 6.2.2).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import MpiError
from repro.mpi.runtime import _ENVELOPE_BYTES, MpiRuntime, Rank


def _entry(rank: Rank, kind: str, contribution: Any = None):
    """Generator: charge entry overhead and enter the collective's
    rendezvous. Returns the shared state once *all* ranks have entered."""
    runtime = rank.runtime
    yield from rank._call_overhead(
        runtime.profile.collective_entry_overhead)
    state = runtime._collective_state(kind, rank.next_collective_seq())
    state.enter(rank.rank, contribution)
    if not state.entry_signal.fired:
        yield state.entry_signal.wait()
    return state


def _exit(rank: Rank, state):
    """Generator: completion barrier — wait for every rank to finish."""
    state.finish()
    if not state.exit_signal.fired:
        yield state.exit_signal.wait()


def barrier(rank: Rank):
    """Generator: MPI_Barrier."""
    state = yield from _entry(rank, "barrier")
    yield from _exit(rank, state)


def alltoall(rank: Rank, chunks: "list[tuple[Any, int]]"):
    """Generator: MPI_Alltoall.

    ``chunks[d]`` is the ``(payload, size)`` this rank contributes for
    destination ``d`` (``len(chunks)`` must equal the world size). Returns
    the list of payloads received, indexed by source rank.
    """
    runtime = rank.runtime
    world = runtime.world_size
    if len(chunks) != world:
        raise MpiError(
            f"alltoall needs one chunk per rank ({world}), got "
            f"{len(chunks)}")
    state = yield from _entry(rank, "alltoall", chunks)
    # All inputs are ready (BSP). The exchange proceeds in world-1
    # synchronized pairwise rounds (the classic ring/pairwise alltoall):
    # in round r, rank i sends to (i+r) and receives from (i-r), and no
    # rank starts round r+1 before everyone finished round r. A straggler
    # therefore paces *every* round — its per-round send-buffer packing
    # runs at reduced frequency and the barrier makes everyone wait.
    copy_cost = runtime.profile.eager_copy_per_byte
    for round_index in range(1, world):
        dest = (rank.rank + round_index) % world
        _payload, size = chunks[dest]
        yield rank.node.compute(size * copy_cost)
        arrival = runtime.cluster.fabric.unicast(
            rank.node, runtime.rank_object(dest).node,
            size + _ENVELOPE_BYTES)
        rank.messages_sent += 1
        rank.bytes_sent += size
        yield arrival
        yield state.round_barrier(round_index).wait()
    yield from _exit(rank, state)
    return [state.contributions[src][rank.rank][0] for src in range(world)]


def bcast(rank: Rank, payload: Any, size: int, root: int = 0):
    """Generator: MPI_Bcast along a binomial tree rooted at ``root``.
    Returns the broadcast payload on every rank."""
    runtime = rank.runtime
    world = runtime.world_size
    state = yield from _entry(rank, "bcast",
                              payload if rank.rank == root else None)
    payload = state.contributions[root]
    # Binomial tree on ranks relative to the root.
    relative = (rank.rank - root) % world
    have_signal = state.__dict__.setdefault("have", {})
    for r in range(world):
        if r not in have_signal:
            from repro.simnet.sync import Signal
            have_signal[r] = Signal(rank.env)
    if relative != 0 and not have_signal[relative].fired:
        yield have_signal[relative].wait()
    mask = 1
    while mask < world:
        if relative < mask:
            child = relative + mask
            if child < world:
                dest = (child + root) % world
                arrival = runtime.cluster.fabric.unicast(
                    rank.node, runtime.rank_object(dest).node,
                    size + _ENVELOPE_BYTES)
                rank.messages_sent += 1
                rank.bytes_sent += size

                def on_arrival(_event, child=child):
                    if not have_signal[child].fired:
                        have_signal[child].fire()

                arrival.callbacks.append(on_arrival)
        mask <<= 1
    yield from _exit(rank, state)
    return payload


def gather(rank: Rank, payload: Any, size: int, root: int = 0):
    """Generator: MPI_Gather. Root returns the list of payloads by rank;
    non-roots return ``None``."""
    runtime = rank.runtime
    state = yield from _entry(rank, "gather", (payload, size))
    if rank.rank != root:
        arrival = runtime.cluster.fabric.unicast(
            rank.node, runtime.rank_object(root).node,
            size + _ENVELOPE_BYTES)
        rank.messages_sent += 1
        rank.bytes_sent += size
        yield arrival
    yield from _exit(rank, state)
    if rank.rank != root:
        return None
    return [state.contributions[r][0] for r in range(runtime.world_size)]


def scatter(rank: Rank, chunks: "list[tuple[Any, int]] | None",
            root: int = 0):
    """Generator: MPI_Scatter. Root passes one ``(payload, size)`` per
    rank; every rank returns its own payload."""
    runtime = rank.runtime
    world = runtime.world_size
    if rank.rank == root and (chunks is None or len(chunks) != world):
        raise MpiError(f"scatter root needs {world} chunks")
    state = yield from _entry(rank, "scatter",
                              chunks if rank.rank == root else None)
    root_chunks = state.contributions[root]
    my_payload, my_size = root_chunks[rank.rank]
    if rank.rank == root:
        events = []
        for dest in range(world):
            if dest == root:
                continue
            _payload, size = root_chunks[dest]
            events.append(runtime.cluster.fabric.unicast(
                rank.node, runtime.rank_object(dest).node,
                size + _ENVELOPE_BYTES))
            rank.messages_sent += 1
            rank.bytes_sent += size
        if events:
            yield rank.env.all_of(events)
    yield from _exit(rank, state)
    return my_payload


def allreduce(rank: Rank, value: Any, size: int,
              op: Callable[[Any, Any], Any]):
    """Generator: MPI_Allreduce — gather to rank 0, fold, broadcast."""
    gathered = yield from gather(rank, value, size, root=0)
    if rank.rank == 0:
        result = gathered[0]
        for item in gathered[1:]:
            result = op(result, item)
    else:
        result = None
    result = yield from bcast(rank, result, size, root=0)
    return result
