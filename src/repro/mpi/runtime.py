"""MPI baseline runtime: process-centric ranks on the simulated cluster.

This models the HPC-X-style MPI deployment the paper compares against
(Section 6.2), with the properties that drive its measured behaviour:

* *eager vs. rendezvous* point-to-point protocol: small sends return after
  a local copy; large sends handshake with the receiver and block until the
  data moved — no batching either way, so tiny tuples waste the wire
  (Fig. 10a);
* *process-centric parallelism*: one rank per process. Multi-threaded use
  (``MPI_THREAD_MULTIPLE``) funnels every call through a per-rank latch
  whose hold time grows with the number of contending threads — the
  collapse of Fig. 10b. Multi-process mode avoids the latch but pays a
  shared-memory surcharge when threads of the *application* touch common
  data structures across process boundaries;
* *bulk-synchronous collectives*: all ranks must enter the collective with
  their full input before any data moves (Figs. 11 and 12).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any

from repro.common.config import DEFAULT_MPI, MpiProfile
from repro.common.errors import MpiError
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Event
from repro.simnet.node import Node
from repro.simnet.sync import Resource, Signal

#: Wildcard source for ``recv`` (MPI_ANY_SOURCE).
ANY_SOURCE = -1
#: Wildcard tag for ``recv`` (MPI_ANY_TAG).
ANY_TAG = -1
#: Wire overhead of one MPI message envelope (header + matching info).
_ENVELOPE_BYTES = 64
#: Size of the rendezvous RTS/CTS control messages.
_CONTROL_BYTES = 64


class ThreadingLevel(enum.Enum):
    """MPI threading support level requested at init."""

    SINGLE = "single"
    MULTIPLE = "multiple"  # MPI_THREAD_MULTIPLE


class _Rendezvous:
    """Sender-side state of one rendezvous (large-message) transfer."""

    __slots__ = ("cts", "payload", "size", "done_event")

    def __init__(self, env, payload: Any, size: int) -> None:
        self.cts = Event(env)
        self.payload = payload
        self.size = size
        self.done_event: Event | None = None


class _Request:
    """Handle of a non-blocking point-to-point operation."""

    __slots__ = ("_event",)

    def __init__(self, env) -> None:
        self._event = Event(env)

    @property
    def complete(self) -> bool:
        return self._event.triggered

    def wait(self):
        """Generator: block until the operation finished; returns the
        receive result for irecv, ``None`` for isend."""
        if self._event.processed:
            return self._event.value
        result = yield self._event
        return result


class Rank:
    """One MPI rank: a process pinned to a node with a receive mailbox."""

    def __init__(self, runtime: "MpiRuntime", rank: int, node: Node) -> None:
        self.runtime = runtime
        self.rank = rank
        self.node = node
        self.env = node.env
        self._latch = Resource(node.env, capacity=1)
        #: Unmatched incoming messages: (kind, source, tag, payload, size).
        self._pending: deque[tuple] = deque()
        #: Blocked receivers: (source, tag, event).
        self._recv_waiters: deque[tuple] = deque()
        self._collective_seq = 0
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- cost model ----------------------------------------------------------
    def _call_overhead(self, extra: float = 0.0):
        """Generator: per-call software cost, including the THREAD_MULTIPLE
        latch with its contention penalty."""
        profile = self.runtime.profile
        if self.runtime.threading is ThreadingLevel.MULTIPLE:
            yield self._latch.acquire()
            contenders = self._latch.queue_length
            hold = (profile.thread_latch_hold
                    + profile.thread_latch_contention * contenders
                    + extra)
            yield self.node.compute(hold)
            self._latch.release()
        elif extra > 0:
            yield self.node.compute(extra)

    def charge_shm_access(self, num_bytes: int):
        """Generator: cost of touching ``num_bytes`` of a data structure
        shared across process boundaries (multi-process mode)."""
        yield self.node.compute(
            num_bytes * self.runtime.profile.shm_access_per_byte)

    # -- point-to-point ----------------------------------------------------
    def send(self, dest: int, payload: Any, size: int, tag: int = 0):
        """Generator: MPI_Send. Eager (small) sends return once the local
        copy is done; rendezvous (large) sends block until the receiver
        matched and the data transferred."""
        profile = self.runtime.profile
        dest_rank = self.runtime.rank_object(dest)
        self.messages_sent += 1
        self.bytes_sent += size
        if size <= profile.eager_threshold:
            cost = (profile.per_message_overhead
                    + size * profile.eager_copy_per_byte)
            yield from self._call_overhead(cost)
            arrival = self.runtime.cluster.fabric.unicast(
                self.node, dest_rank.node, size + _ENVELOPE_BYTES)

            def on_arrival(_event, payload=payload, size=size, tag=tag):
                dest_rank._deliver("eager", self.rank, tag, payload, size)

            arrival.callbacks.append(on_arrival)
            return
        # Rendezvous: announce, wait for clear-to-send, then move the data.
        yield from self._call_overhead(profile.per_message_overhead)
        rendezvous = _Rendezvous(self.env, payload, size)
        rts = self.runtime.cluster.fabric.unicast(
            self.node, dest_rank.node, _CONTROL_BYTES)

        def on_rts(_event, tag=tag):
            dest_rank._deliver("rts", self.rank, tag, rendezvous, size)

        rts.callbacks.append(on_rts)
        yield rendezvous.cts
        data = self.runtime.cluster.fabric.unicast(
            self.node, dest_rank.node, size + _ENVELOPE_BYTES)
        yield data
        rendezvous.done_event.succeed((payload, size))

    def isend(self, dest: int, payload: Any, size: int, tag: int = 0):
        """Generator: MPI_Isend — returns a request handle immediately;
        ``wait`` on it for completion. Eager sends complete locally;
        rendezvous sends complete once the receiver matched and the data
        moved (the non-blocking variant the paper notes applications must
        otherwise hand-roll, Section 2.3)."""
        handle = _Request(self.env)

        def _drive():
            yield from self.send(dest, payload, size, tag)
            handle._event.succeed(None)

        self.env.process(_drive(), name=f"isend-r{self.rank}-to-{dest}")
        if False:  # pragma: no cover - keeps this a generator function
            yield
        return handle

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: MPI_Irecv — returns a request handle immediately;
        ``wait`` yields ``(payload, size, source)``."""
        handle = _Request(self.env)

        def _drive():
            result = yield from self.recv(source, tag)
            handle._event.succeed(result)

        self.env.process(_drive(), name=f"irecv-r{self.rank}")
        if False:  # pragma: no cover - keeps this a generator function
            yield
        return handle

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: MPI_Recv. Returns ``(payload, size, source)``."""
        yield from self._call_overhead(
            self.runtime.profile.per_message_overhead)
        match = self._match_pending(source, tag)
        if match is None:
            event = Event(self.env)
            self._recv_waiters.append((source, tag, event))
            match = yield event
        kind, src, _tag, payload, size = match
        if kind == "eager":
            return payload, size, src
        # Rendezvous: grant the sender clear-to-send and await the data.
        rendezvous: _Rendezvous = payload
        rendezvous.done_event = Event(self.env)
        cts = self.runtime.cluster.fabric.unicast(
            self.node, self.runtime.rank_object(src).node, _CONTROL_BYTES)

        def on_cts(_event):
            rendezvous.cts.succeed()

        cts.callbacks.append(on_cts)
        data_payload, data_size = yield rendezvous.done_event
        return data_payload, data_size, src

    def _deliver(self, kind: str, source: int, tag: int, payload: Any,
                 size: int) -> None:
        message = (kind, source, tag, payload, size)
        for i, (want_src, want_tag, event) in enumerate(self._recv_waiters):
            if self._matches(want_src, want_tag, source, tag):
                del self._recv_waiters[i]
                event.succeed(message)
                return
        self._pending.append(message)

    def _match_pending(self, source: int, tag: int):
        for i, message in enumerate(self._pending):
            _kind, src, msg_tag, _payload, _size = message
            if self._matches(source, tag, src, msg_tag):
                del self._pending[i]
                return message
        return None

    @staticmethod
    def _matches(want_src: int, want_tag: int, src: int, tag: int) -> bool:
        return ((want_src == ANY_SOURCE or want_src == src)
                and (want_tag == ANY_TAG or want_tag == tag))

    def next_collective_seq(self) -> int:
        seq = self._collective_seq
        self._collective_seq += 1
        return seq

    def __repr__(self) -> str:
        return f"<Rank {self.rank} on {self.node.name}>"


class MpiRuntime:
    """An MPI world: ``ranks_per_node`` ranks on each cluster node."""

    def __init__(self, cluster: Cluster, ranks_per_node: int = 1,
                 threading: ThreadingLevel = ThreadingLevel.SINGLE,
                 profile: MpiProfile = DEFAULT_MPI,
                 nodes: "list[int] | None" = None) -> None:
        if ranks_per_node < 1:
            raise MpiError("ranks_per_node must be >= 1")
        self.cluster = cluster
        self.profile = profile
        self.threading = threading
        node_ids = nodes if nodes is not None else range(cluster.node_count)
        self._ranks: list[Rank] = []
        for node_id in node_ids:
            node = cluster.node(node_id)
            for _ in range(ranks_per_node):
                self._ranks.append(Rank(self, len(self._ranks), node))
        self._collectives: dict[tuple, "_CollectiveState"] = {}

    @property
    def world_size(self) -> int:
        return len(self._ranks)

    def rank_object(self, rank: int) -> Rank:
        if not 0 <= rank < len(self._ranks):
            raise MpiError(f"rank {rank} out of range [0, {len(self._ranks)})")
        return self._ranks[rank]

    def _collective_state(self, kind: str, seq: int) -> "_CollectiveState":
        key = (kind, seq)
        state = self._collectives.get(key)
        if state is None:
            state = _CollectiveState(self.cluster.env, self.world_size)
            self._collectives[key] = state
        return state


class _CollectiveState:
    """Shared per-invocation state of one collective operation."""

    def __init__(self, env, world_size: int) -> None:
        self.env = env
        self.world_size = world_size
        self.entered = 0
        self.finished = 0
        self.entry_signal = Signal(env)
        self.exit_signal = Signal(env)
        self.contributions: dict[int, Any] = {}
        self._round_barriers: dict[int, Any] = {}

    def round_barrier(self, round_index: int):
        """Per-round rendezvous for round-synchronized exchanges."""
        from repro.simnet.sync import Barrier

        barrier = self._round_barriers.get(round_index)
        if barrier is None:
            barrier = Barrier(self.env, self.world_size)
            self._round_barriers[round_index] = barrier
        return barrier

    def enter(self, rank: int, contribution: Any = None) -> None:
        self.contributions[rank] = contribution
        self.entered += 1
        if self.entered == self.world_size:
            self.entry_signal.fire()

    def finish(self) -> None:
        self.finished += 1
        if self.finished == self.world_size:
            self.exit_signal.fire()
