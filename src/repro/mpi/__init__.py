"""MPI baseline: the abstraction the paper's Experiment 2 argues against."""

from repro.mpi.communicator import Communicator
from repro.mpi.runtime import ANY_SOURCE, ANY_TAG, MpiRuntime, Rank, ThreadingLevel

__all__ = [
    "MpiRuntime",
    "Communicator",
    "Rank",
    "ThreadingLevel",
    "ANY_SOURCE",
    "ANY_TAG",
]
