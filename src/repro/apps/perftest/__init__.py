"""Raw-verbs performance baselines (the role of linux-rdma/perftest)."""

from repro.apps.perftest.perftest import ib_write_bw, ib_write_lat

__all__ = ["ib_write_lat", "ib_write_bw"]
