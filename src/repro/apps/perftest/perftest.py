"""`ib_write_lat` / `ib_write_bw` equivalents on the raw verbs layer.

The paper uses linux-rdma/perftest's ``ib_write_lat`` as the no-abstraction
latency baseline for Fig. 7b: a strict ping-pong of one-sided writes where
each side polls the last payload byte of its receive buffer. We reproduce
that tool here directly on our verbs layer — no DFI involved — so the
figure's "DFI adds only minimal overhead" comparison is meaningful.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.rand import derive_rng
from repro.rdma.nic import get_nic
from repro.simnet.cluster import Cluster


def _fill_payload(cluster: Cluster, tool: str, role: str, size: int,
                  client_node: int, server_node: int) -> bytearray:
    """Random-fill a message buffer from a named RNG stream.

    The real linux-rdma/perftest fills its buffers with random data; we
    do the same, but from ``derive_rng(cluster.seed, "perftest", ...)``
    so the bytes are (a) reproducible for a fixed experiment seed and
    (b) decorrelated from every other stream in the run — drawing here
    never perturbs node backoff RNGs or workload generators.
    """
    rng = derive_rng(cluster.seed, "perftest", tool, role, size,
                     client_node, server_node)
    return bytearray(rng.getrandbits(8) for _ in range(size))


def _wait_flag(env, region, offset, expected: int):
    """Generator: wait until ``region[offset] == expected`` (memory poll,
    modeled with a write hook exactly like DFI's target polling)."""
    while region.mem[offset] != expected:
        event = env.event()
        fired = [False]

        def hook(_offset, _length):
            if not fired[0]:
                fired[0] = True
                event.succeed()

        region.add_write_hook(hook)
        if region.mem[offset] == expected:  # committed while arming
            region.remove_write_hook(hook)
            continue
        yield event
        region.remove_write_hook(hook)


def ib_write_lat(cluster: Cluster, size: int, iterations: int = 100,
                 client_node: int = 0, server_node: int = 1) -> list[float]:
    """Round-trip latency of a one-sided-write ping-pong.

    Returns the list of per-iteration round-trip times in nanoseconds.
    """
    if size < 1:
        raise ConfigurationError("message size must be >= 1 byte")
    if iterations < 1:
        raise ConfigurationError("need at least one iteration")
    client = cluster.node(client_node)
    server = cluster.node(server_node)
    client_nic, server_nic = get_nic(client), get_nic(server)
    client_buf = client_nic.register_memory(size)
    server_buf = server_nic.register_memory(size)
    client_qp = client_nic.create_qp(server)
    server_qp = server_nic.create_qp(client)
    rtts: list[float] = []

    def client_proc(env):
        payload = _fill_payload(cluster, "lat", "client", size,
                                client_node, server_node)
        for i in range(1, iterations + 1):
            start = env.now
            payload[-1] = i % 256
            client_qp.post_write(payload, server_buf.rkey, 0)
            yield from _wait_flag(env, client_buf, size - 1, i % 256)
            rtts.append(env.now - start)

    def server_proc(env):
        payload = _fill_payload(cluster, "lat", "server", size,
                                client_node, server_node)
        for i in range(1, iterations + 1):
            yield from _wait_flag(env, server_buf, size - 1, i % 256)
            payload[-1] = i % 256
            server_qp.post_write(payload, client_buf.rkey, 0)

    cluster.env.process(client_proc(cluster.env))
    cluster.env.process(server_proc(cluster.env))
    cluster.run()
    return rtts


def ib_write_bw(cluster: Cluster, size: int, iterations: int = 1000,
                window: int = 64, client_node: int = 0,
                server_node: int = 1) -> float:
    """One-directional write bandwidth with ``window`` outstanding writes.

    Returns the achieved bandwidth in bytes per nanosecond (== GB/s).
    """
    if size < 1 or iterations < 1 or window < 1:
        raise ConfigurationError("size, iterations and window must be >= 1")
    client = cluster.node(client_node)
    server = cluster.node(server_node)
    client_nic, server_nic = get_nic(client), get_nic(server)
    server_buf = server_nic.register_memory(size)
    qp = client_nic.create_qp(server)
    payload = bytes(_fill_payload(cluster, "bw", "client", size,
                                  client_node, server_node))
    state = {}

    def client_proc(env):
        outstanding = []
        start = env.now
        for i in range(iterations):
            signaled = (i % window == window - 1) or i == iterations - 1
            wr = qp.post_write(payload, server_buf.rkey, 0,
                               signaled=signaled)
            if signaled:
                outstanding.append(wr)
                if len(outstanding) > 1:
                    head = outstanding.pop(0)
                    if not head.done.triggered:
                        yield head.done
                qp.send_cq.poll(max_entries=window)
        for wr in outstanding:
            if not wr.done.triggered:
                yield wr.done
        state["elapsed"] = env.now - start

    cluster.env.process(client_proc(cluster.env))
    cluster.run()
    return iterations * size / state["elapsed"]
