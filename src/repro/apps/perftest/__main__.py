"""Command-line driver for the perftest baselines.

Run with::

    PYTHONPATH=src python -m repro.apps.perftest lat --size 64
    PYTHONPATH=src python -m repro.apps.perftest bw --size 4096 --stats

``--stats`` enables the observability plane before the run and prints
the compact :func:`repro.obs.render_report` table afterwards — the
simulated results are bit-identical either way (the ``repro.obs``
determinism contract). ``--trace-out FILE`` additionally records every
flow event and writes a Chrome ``trace_event`` JSON loadable in
Perfetto (perftest itself creates no DFI flows, so the file carries the
metadata and any fault-plan instants; it is mostly useful as a smoke
test of the exporter).
"""

from __future__ import annotations

import argparse
import statistics
import sys

from repro.apps.perftest.perftest import ib_write_bw, ib_write_lat
from repro.simnet.cluster import Cluster


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.apps.perftest",
        description="ib_write_lat / ib_write_bw on the simulated fabric")
    parser.add_argument("tool", choices=("lat", "bw"),
                        help="lat: ping-pong RTT; bw: windowed bandwidth")
    parser.add_argument("--size", type=int, default=64,
                        help="message size in bytes (default 64)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="iterations (default: 100 lat / 1000 bw)")
    parser.add_argument("--window", type=int, default=64,
                        help="outstanding writes for bw (default 64)")
    parser.add_argument("--seed", type=int, default=7,
                        help="experiment seed (default 7)")
    parser.add_argument("--nodes", type=int, default=2,
                        help="cluster size; the client runs on node 0 and "
                             "the server on the last node (default 2)")
    parser.add_argument("--shards", type=int, default=None,
                        help="event-kernel shards (default: REPRO_SHARDS "
                             "or 1; simulated results are bit-identical "
                             "at any shard count)")
    parser.add_argument("--stats", action="store_true",
                        help="enable observability and print the metrics "
                             "report after the run")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON (implies "
                             "--stats with tracing)")
    args = parser.parse_args(argv)

    if args.nodes < 2:
        parser.error("--nodes must be >= 2 (client and server)")
    cluster = Cluster(node_count=args.nodes, seed=args.seed,
                      shards=args.shards)
    if args.stats or args.trace_out:
        cluster.enable_observability(trace=args.trace_out is not None)
    server_node = args.nodes - 1

    if args.tool == "lat":
        iterations = args.iterations or 100
        rtts = ib_write_lat(cluster, args.size, iterations=iterations,
                            server_node=server_node)
        print(f"ib_write_lat size={args.size}B iterations={iterations}: "
              f"median={statistics.median(rtts):.1f} ns "
              f"min={min(rtts):.1f} ns max={max(rtts):.1f} ns")
    else:
        iterations = args.iterations or 1000
        bw = ib_write_bw(cluster, args.size, iterations=iterations,
                         window=args.window, server_node=server_node)
        print(f"ib_write_bw size={args.size}B iterations={iterations} "
              f"window={args.window}: {bw:.3f} GB/s")

    if args.stats or args.trace_out:
        from repro.obs import export_chrome_trace, render_report

        print(render_report(cluster.metrics_snapshot()))
        if args.trace_out:
            export_chrome_trace(cluster, args.trace_out)
            print(f"wrote {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
