"""Use-case applications built on DFI, plus their baselines."""
