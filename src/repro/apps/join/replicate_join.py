"""Fragment-and-replicate join on a DFI replicate flow (paper Fig. 14).

The adaptability showcase: swap the inner relation's *shuffle* flow for a
*replicate* flow (switch multicast) and the radix join becomes a
fragment-and-replicate join. Every worker receives the full (small) inner
relation, builds a complete hash table, and probes its **local** fragment
of the outer relation — the big table never crosses the network.
"""

from __future__ import annotations

import numpy as np

from repro.apps.join import costs
from repro.apps.join.dfi_radix import JOIN_SCHEMA
from repro.apps.join.result import JoinResult, average_phases
from repro.core.flow import DfiRuntime
from repro.core.flowdef import FLOW_END, FlowOptions
from repro.core.nodes import endpoints_on
from repro.simnet.cluster import Cluster
from repro.workloads.tables import partition_chunks


def run_dfi_replicate_join(cluster: Cluster, inner: np.ndarray,
                           outer: np.ndarray,
                           nodes: "list[int] | None" = None,
                           workers_per_node: int = 8,
                           multicast: bool = True,
                           flow_prefix: str = "fr-join") -> JoinResult:
    """Execute the fragment-and-replicate join; the inner relation is
    replicated to all workers, the outer relation stays local."""
    dfi = DfiRuntime(cluster)
    node_ids = list(nodes) if nodes is not None else list(
        range(cluster.node_count))
    workers = endpoints_on(cluster.node_count, workers_per_node,
                           nodes=node_ids)
    worker_count = len(workers)
    dfi.init_replicate_flow(
        f"{flow_prefix}-inner", workers, workers, JOIN_SCHEMA,
        options=FlowOptions(multicast=multicast))
    inner_chunks = partition_chunks(inner, worker_count)
    outer_chunks = partition_chunks(outer, worker_count)
    env = cluster.env
    worker_phases: list[dict[str, float]] = []
    matches_total = [0]
    finish_times: list[float] = []

    def feeder(index: int):
        source = yield from dfi.open_source(f"{flow_prefix}-inner", index)
        for key, payload in inner_chunks[index].tolist():
            yield from source.push((key, payload))
        yield from source.close()

    def consumer(index: int):
        node = cluster.node(workers[index].node_id)
        target = yield from dfi.open_target(f"{flow_prefix}-inner", index)
        start = env.now
        rows: list[tuple] = []
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                break
            rows.append(item)
        yield node.compute(costs.RECEIVE_PER_TUPLE * len(rows))
        replication_done = env.now
        # Build the full inner hash table on every worker.
        yield node.compute(costs.BUILD_PER_TUPLE * len(rows))
        table = {key: payload for key, payload in rows}
        build_done = env.now
        # Probe the local outer fragment — no network involved.
        my_outer = outer_chunks[index]
        yield node.compute(costs.PROBE_PER_TUPLE * len(my_outer))
        matches = 0
        for key, _payload in my_outer.tolist():
            if key in table:
                matches += 1
        done = env.now
        matches_total[0] += matches
        worker_phases.append({
            "network_replication": replication_done - start,
            "build": build_done - replication_done,
            "probe": done - build_done,
        })
        finish_times.append(done)

    for index in range(worker_count):
        env.process(feeder(index), name=f"fr-feeder-{index}")
        env.process(consumer(index), name=f"fr-consumer-{index}")
    cluster.run()
    return JoinResult(matches=matches_total[0], runtime=max(finish_times),
                      workers=worker_count,
                      phases=average_phases(worker_phases))
