"""Distributed radix hash join on DFI shuffle flows (paper Figure 2).

Two bandwidth-optimized shuffle flows partition the relations across all
worker threads with a radix routing function. Each worker runs a *feeder*
(scan + push) and a *consumer* (consume + local phases) — the send and
receive halves of one worker thread, whose overlap is exactly the
pipelining DFI provides. There is no histogram pass and no global barrier:
the memory management the MPI join needs them for is encapsulated in DFI's
ring buffers, and incoming tuples are processed as they arrive.
"""

from __future__ import annotations

import numpy as np

from repro.apps.join import costs
from repro.apps.join.result import JoinResult, average_phases
from repro.core.flow import DfiRuntime
from repro.core.flowdef import FLOW_END, FlowOptions
from repro.core.nodes import endpoints_on
from repro.core.schema import Schema
from repro.simnet.cluster import Cluster
from repro.workloads.tables import partition_chunks

JOIN_SCHEMA = Schema(("key", "uint64"), ("payload", "uint64"))


def radix_partition_router(values: tuple, target_count: int) -> int:
    """Network-partition routing: low radix bits of the join key."""
    return int(values[0]) % target_count


def run_dfi_radix_join(cluster: Cluster, inner: np.ndarray,
                       outer: np.ndarray,
                       nodes: "list[int] | None" = None,
                       workers_per_node: int = 8,
                       options: FlowOptions = FlowOptions(
                           source_segments=8, target_segments=8,
                           credit_threshold=4),
                       flow_prefix: str = "dfi-radix") -> JoinResult:
    """Execute the DFI radix join; returns matches and phase breakdown."""
    dfi = DfiRuntime(cluster)
    node_ids = list(nodes) if nodes is not None else list(
        range(cluster.node_count))
    workers = endpoints_on(cluster.node_count, workers_per_node,
                           nodes=node_ids)
    worker_count = len(workers)
    dfi.init_shuffle_flow(f"{flow_prefix}-inner", workers, workers,
                          JOIN_SCHEMA, routing=radix_partition_router,
                          options=options)
    dfi.init_shuffle_flow(f"{flow_prefix}-outer", workers, workers,
                          JOIN_SCHEMA, routing=radix_partition_router,
                          options=options)
    inner_chunks = partition_chunks(inner, worker_count)
    outer_chunks = partition_chunks(outer, worker_count)
    env = cluster.env
    worker_phases: list[dict[str, float]] = []
    matches_total = [0]
    finish_times: list[float] = []

    def feeder(index: int):
        inner_source = yield from dfi.open_source(f"{flow_prefix}-inner",
                                                  index)
        for key, payload in inner_chunks[index].tolist():
            yield from inner_source.push((key, payload))
        yield from inner_source.close()
        outer_source = yield from dfi.open_source(f"{flow_prefix}-outer",
                                                  index)
        for key, payload in outer_chunks[index].tolist():
            yield from outer_source.push((key, payload))
        yield from outer_source.close()

    def consumer(index: int):
        node = cluster.node(workers[index].node_id)
        inner_target = yield from dfi.open_target(f"{flow_prefix}-inner",
                                                  index)
        outer_target = yield from dfi.open_target(f"{flow_prefix}-outer",
                                                  index)
        start = env.now
        # Network partition: stream the inner relation into this worker's
        # partition as it arrives.
        rows: list[tuple] = []
        while True:
            batch = yield from inner_target.consume_batch()
            if batch is FLOW_END:
                break
            yield node.compute(costs.RECEIVE_PER_TUPLE * len(batch))
            rows.extend(batch)
        network_done = env.now
        # Local partition: a cache-conscious radix pass over the partition.
        yield node.compute(costs.PARTITION_PER_TUPLE * len(rows))
        local_done = env.now
        # Build the (sub-partitioned) hash table.
        yield node.compute(costs.BUILD_PER_TUPLE * len(rows))
        table = {key: payload for key, payload in rows}
        # Probe: incoming outer tuples are partitioned and probed on the
        # fly, overlapping the outer relation's network shuffle.
        matches = 0
        while True:
            batch = yield from outer_target.consume_batch()
            if batch is FLOW_END:
                break
            yield node.compute(
                (costs.PARTITION_PER_TUPLE + costs.PROBE_PER_TUPLE)
                * len(batch))
            for key, _payload in batch:
                if key in table:
                    matches += 1
        done = env.now
        matches_total[0] += matches
        worker_phases.append({
            "network_partition": network_done - start,
            "local_partition": local_done - network_done,
            "build_probe": done - local_done,
        })
        finish_times.append(done)

    for index in range(worker_count):
        env.process(feeder(index), name=f"radix-feeder-{index}")
        env.process(consumer(index), name=f"radix-consumer-{index}")
    cluster.run()
    return JoinResult(matches=matches_total[0], runtime=max(finish_times),
                      workers=worker_count,
                      phases=average_phases(worker_phases))
