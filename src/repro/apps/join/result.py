"""Join execution results and phase accounting."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class JoinResult:
    """Outcome of one distributed join execution.

    ``phases`` maps phase name to the mean duration (ns) across workers —
    the quantity behind the stacked bars of the paper's Figures 13/14.
    ``runtime`` is the wall-clock makespan (slowest worker).
    """

    matches: int
    runtime: float
    workers: int
    phases: dict[str, float] = field(default_factory=dict)

    def phase_table(self) -> str:
        """Human-readable phase breakdown."""
        lines = [f"  {name:<24} {duration / 1e6:9.3f} ms"
                 for name, duration in self.phases.items()]
        lines.append(f"  {'total (makespan)':<24} {self.runtime / 1e6:9.3f} ms")
        return "\n".join(lines)


def average_phases(per_worker: list[dict[str, float]]) -> dict[str, float]:
    """Average per-worker phase durations (order-preserving)."""
    if not per_worker:
        return {}
    phases: dict[str, float] = {}
    for name in per_worker[0]:
        phases[name] = sum(worker[name] for worker in per_worker) / len(per_worker)
    return phases
