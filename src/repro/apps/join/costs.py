"""CPU cost model of the local join phases.

Per-tuple costs in nanoseconds on a nominal-frequency core, calibrated to
the cache-conscious radix join literature (Barthels et al.): a histogram
pass is a read-only scan; a partition pass reads and writes every tuple
through write-combine buffers; build and probe touch a small (cache-sized)
hash table once per tuple.
"""

#: Read-only counting scan (the MPI join's extra histogram pass).
HISTOGRAM_PER_TUPLE = 5.0
#: Local radix partition pass (read + software write-combine + write).
PARTITION_PER_TUPLE = 10.0
#: Hash-table insert into a cache-resident partition.
BUILD_PER_TUPLE = 18.0
#: Hash-table lookup in a cache-resident partition.
PROBE_PER_TUPLE = 18.0
#: Handling cost per tuple on the receive side (dispatch into partitions).
RECEIVE_PER_TUPLE = 4.0
