"""The MPI radix join baseline (Barthels et al., as used in the paper).

Faithful to the structure the paper contrasts DFI against:

1. a *histogram pass* over both relations plus an allreduce, needed to
   compute exclusive write offsets for coordination-free one-sided
   partitioning;
2. a *network partition* pass per relation — partition locally, then a
   bulk-synchronous exchange (no overlap with later phases);
3. a *synchronization barrier* before local processing may start, since
   the join must be sure all remote writes have arrived;
4. local radix partitioning, then build and probe.

Parallelism is multi-process (one rank per worker), matching the
evaluation's "64 processes (MPI)" setup.
"""

from __future__ import annotations

import numpy as np

from repro.apps.join import costs
from repro.apps.join.result import JoinResult, average_phases
from repro.mpi import Communicator, MpiRuntime
from repro.simnet.cluster import Cluster
from repro.workloads.tables import partition_chunks

_TUPLE_BYTES = 16


def run_mpi_radix_join(cluster: Cluster, inner: np.ndarray,
                       outer: np.ndarray,
                       ranks_per_node: int = 8) -> JoinResult:
    """Execute the MPI radix join; returns matches and phase breakdown."""
    runtime = MpiRuntime(cluster, ranks_per_node=ranks_per_node)
    world = runtime.world_size
    inner_chunks = partition_chunks(inner, world)
    outer_chunks = partition_chunks(outer, world)
    env = cluster.env
    worker_phases: list[dict[str, float]] = []
    matches_total = [0]
    finish_times: list[float] = []

    def split_by_rank(chunk: np.ndarray) -> list[np.ndarray]:
        destinations = (chunk[:, 0] % world).astype(np.int64)
        return [chunk[destinations == dest] for dest in range(world)]

    def rank_proc(rank: int):
        comm = Communicator(runtime, rank)
        node = comm.node
        my_inner = inner_chunks[rank]
        my_outer = outer_chunks[rank]
        start = env.now
        # Phase 1 — histograms: count per-partition tuples of both
        # relations, then exchange them to compute write offsets.
        yield node.compute(costs.HISTOGRAM_PER_TUPLE
                           * (len(my_inner) + len(my_outer)))
        histogram = np.bincount((my_inner[:, 0] % world).astype(np.int64),
                                minlength=world)
        yield from comm.allreduce(histogram, size=world * 8,
                                  op=lambda a, b: a + b)
        histogram_done = env.now
        # Phase 2 — network partition: local partition pass, then a
        # bulk-synchronous exchange per relation.
        yield node.compute(costs.PARTITION_PER_TUPLE * len(my_inner))
        inner_parts = split_by_rank(my_inner)
        received_inner = yield from comm.alltoall(
            [(part, len(part) * _TUPLE_BYTES) for part in inner_parts])
        yield node.compute(costs.PARTITION_PER_TUPLE * len(my_outer))
        outer_parts = split_by_rank(my_outer)
        received_outer = yield from comm.alltoall(
            [(part, len(part) * _TUPLE_BYTES) for part in outer_parts])
        network_done = env.now
        # Phase 3 — synchronization barrier: all writes must have landed
        # everywhere before local processing starts.
        yield from comm.barrier()
        barrier_done = env.now
        # Phase 4 — local radix partition of the received partitions.
        inner_rows = np.concatenate(received_inner) if received_inner else \
            np.empty((0, 2), dtype=np.uint64)
        outer_rows = np.concatenate(received_outer) if received_outer else \
            np.empty((0, 2), dtype=np.uint64)
        yield node.compute(costs.PARTITION_PER_TUPLE
                           * (len(inner_rows) + len(outer_rows)))
        local_done = env.now
        # Phase 5 — build and probe.
        yield node.compute(costs.BUILD_PER_TUPLE * len(inner_rows))
        table = {int(key): int(payload) for key, payload in inner_rows}
        yield node.compute(costs.PROBE_PER_TUPLE * len(outer_rows))
        matches = int(np.sum([int(key) in table
                              for key in outer_rows[:, 0]]))
        done = env.now
        matches_total[0] += matches
        worker_phases.append({
            "histogram": histogram_done - start,
            "network_partition": network_done - histogram_done,
            "sync_barrier": barrier_done - network_done,
            "local_partition": local_done - barrier_done,
            "build_probe": done - local_done,
        })
        finish_times.append(done)

    for rank in range(world):
        env.process(rank_proc(rank), name=f"mpi-radix-{rank}")
    cluster.run()
    return JoinResult(matches=matches_total[0], runtime=max(finish_times),
                      workers=world, phases=average_phases(worker_phases))
