"""Distributed joins (paper Section 6.3.1): the DFI radix hash join, the
MPI radix join baseline of Barthels et al., and the fragment-and-replicate
variant enabled by swapping in a replicate flow."""

from repro.apps.join.dfi_radix import run_dfi_radix_join
from repro.apps.join.mpi_radix import run_mpi_radix_join
from repro.apps.join.replicate_join import run_dfi_replicate_join
from repro.apps.join.result import JoinResult

__all__ = [
    "run_dfi_radix_join",
    "run_mpi_radix_join",
    "run_dfi_replicate_join",
    "JoinResult",
]
