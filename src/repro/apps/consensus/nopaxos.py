"""NOPaxos (Li et al., OSDI '16) on DFI's ordered replicate flow.

Normal operation: clients submit requests directly through the
globally-ordered multicast (OUM) flow — DFI's tuple sequencer stamps each
request, costing one extra round trip, and every replica consumes the same
global order. The leader executes and answers with the result; followers
log and answer with an ack; a client's request is decided once it holds
the leader's response plus enough follower acks for a majority quorum.
The leader never aggregates votes, which is why NOPaxos sustains higher
throughput than Multi-Paxos once the Multi-Paxos leader saturates
(paper Fig. 15).

Gap agreement: the OUM flow runs in ``gap_notify`` mode. A replica that
times out on a missing sequence number asks the leader; the leader answers
with the request (if it received it) or a NO-OP decision (if it is missing
too), and every replica resolves the slot identically.
"""

from __future__ import annotations

from repro.apps.consensus import messages
from repro.apps.consensus.driver import (
    ConsensusResult,
    ConsensusSetup,
    LatencyTracker,
    LoadGenerator,
)
from repro.apps.consensus.kvstore import APPLY_COST_NS, KvStore
from repro.core.flow import DfiRuntime
from repro.core.flowdef import (
    FLOW_END,
    FlowOptions,
    GapNotification,
    Optimization,
    Ordering,
)
from repro.core.nodes import Endpoint
from repro.simnet.cluster import Cluster

_HANDLE_COST = 250.0
_FLOW_OPTIONS = FlowOptions(target_segments=256, credit_threshold=64)


def run_nopaxos(cluster: Cluster,
                setup: ConsensusSetup = ConsensusSetup()) -> ConsensusResult:
    """Run NOPaxos normal operation under the Fig. 15 workload.

    Returns the achieved throughput and latency distribution; gap counters
    are attached for loss-injection experiments.
    """
    dfi = DfiRuntime(cluster)
    replicas = list(setup.replica_nodes)
    replica_count = len(replicas)
    quorum = replica_count // 2 + 1  # leader response + follower acks
    client_eps = [Endpoint(setup.client_node(i), 10 + i % 2)
                  for i in range(setup.clients)]
    dfi.init_replicate_flow(
        "nop-oum", client_eps,
        [Endpoint(node, 0) for node in replicas],
        messages.REQUEST_SCHEMA, optimization=Optimization.LATENCY,
        ordering=Ordering.GLOBAL,
        options=FlowOptions(target_segments=256, credit_threshold=64,
                            multicast=True, gap_notify=True,
                            retransmit_timeout=30_000))
    dfi.init_shuffle_flow(
        "nop-resp", [Endpoint(node, 1) for node in replicas], client_eps,
        messages.RESPONSE_SCHEMA, optimization=Optimization.LATENCY,
        options=_FLOW_OPTIONS)
    dfi.init_shuffle_flow(
        "nop-gap-req",
        [Endpoint(node, 2) for node in replicas[1:]],
        [Endpoint(replicas[0], 2)], messages.GAP_REQ_SCHEMA,
        optimization=Optimization.LATENCY, options=_FLOW_OPTIONS)
    dfi.init_replicate_flow(
        "nop-gap-resp", [Endpoint(replicas[0], 3)],
        [Endpoint(node, 3) for node in replicas[1:]],
        messages.GAP_RESP_SCHEMA, optimization=Optimization.LATENCY,
        options=FlowOptions(target_segments=64, credit_threshold=16,
                            multicast=True))

    tracker = LatencyTracker(setup)
    env = cluster.env
    stores = [KvStore() for _ in replicas]
    #: Leader log (by global sequence) and sticky gap decisions.
    leader_log: dict[int, tuple] = {}
    leader_decisions: dict[int, tuple] = {}
    #: Followers' OUM targets, registered for the gap listeners.
    oum_targets: dict[int, object] = {}
    stats = {"gaps_noop": 0, "gaps_recovered": 0}
    _NOOP_PAYLOAD = (0, 0, 0, 0, b"\x00" * messages.VALUE_BYTES)

    def replica_proc(index: int):
        """One replica: consume the global order, execute/log, respond."""
        is_leader = index == 0
        node = cluster.node(replicas[index])
        oum_target = yield from dfi.open_target("nop-oum", index)
        oum_targets[index] = oum_target
        response_source = yield from dfi.open_source("nop-resp", index)
        gap_source = None
        if not is_leader:
            gap_source = yield from dfi.open_source("nop-gap-req",
                                                    index - 1)
        log_position = 0
        while True:
            item = yield from oum_target.consume()
            if item is FLOW_END:
                yield from response_source.close()
                if gap_source is not None:
                    yield from gap_source.close()
                return
            if isinstance(item, GapNotification):
                seq = item.missing_seq
                if is_leader:
                    # The leader is missing the request itself: decide
                    # NO-OP so every replica resolves the slot identically
                    # (followers learn it when they query).
                    if seq not in leader_decisions:
                        leader_decisions[seq] = (messages.DECISION_NOOP,
                                                 _NOOP_PAYLOAD)
                        stats["gaps_noop"] += 1
                    oum_target.skip_gap(seq)
                    log_position += 1
                else:
                    yield from gap_source.push((seq, index))
                continue
            yield node.compute(_HANDLE_COST)
            reqid, client, op, key, value = item
            if is_leader:
                leader_log[log_position] = item
                yield node.compute(APPLY_COST_NS)
                result = stores[index].apply(op, key, value)
                yield from response_source.push((reqid, client, 0, result),
                                                target=client)
            else:
                stores[index].apply(op, key, value)
                yield from response_source.push(
                    (reqid, client, 1, b"\x00" * messages.VALUE_BYTES),
                    target=client)
            log_position += 1

    def leader_gap_responder(env):
        """Leader thread answering followers' gap queries."""
        node = cluster.node(replicas[0])
        gap_target = yield from dfi.open_target("nop-gap-req", 0)
        decision_source = yield from dfi.open_source("nop-gap-resp", 0)
        while True:
            query = yield from gap_target.consume()
            if query is FLOW_END:
                yield from decision_source.close()
                return
            yield node.compute(_HANDLE_COST)
            seq, _replica = query
            if seq in leader_decisions:
                decision, payload = leader_decisions[seq]
            elif seq in leader_log:
                decision, payload = messages.DECISION_OP, leader_log[seq]
                stats["gaps_recovered"] += 1
            else:
                # The leader has not reached this slot / missed it too.
                decision, payload = messages.DECISION_NOOP, _NOOP_PAYLOAD
                leader_decisions[seq] = (decision, payload)
                stats["gaps_noop"] += 1
            yield from decision_source.push((seq, decision, *payload))

    def follower_gap_listener(index: int):
        """Follower thread applying the leader's gap decisions."""
        node = cluster.node(replicas[index])
        target = yield from dfi.open_target("nop-gap-resp", index - 1)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            seq, decision, _reqid, _client, op, key, value = item
            oum_target = oum_targets.get(index)
            if oum_target is None or oum_target.next_expected_seq != seq:
                continue  # slot already resolved (duplicate decision)
            yield node.compute(_HANDLE_COST)
            if decision == messages.DECISION_OP:
                stores[index].apply(op, key, value)
            oum_target.skip_gap(seq)

    def client_submit(index: int):
        generator = LoadGenerator(setup, index)
        source = yield from dfi.open_source("nop-oum", index)
        sequence = 0
        while True:
            arrival = generator.next_arrival()
            if arrival is None:
                yield from source.close()
                return
            if arrival > env.now:
                yield env.timeout(arrival - env.now)
            operation = generator.next_operation()
            reqid = messages.make_reqid(index, sequence)
            sequence += 1
            tracker.issue(reqid, arrival)
            value = operation.value.ljust(messages.VALUE_BYTES, b"\x00")
            yield from source.push(
                (reqid, index, operation.op.value == "update",
                 operation.key, value))

    def client_receive(index: int):
        target = yield from dfi.open_target("nop-resp", index)
        acks: dict[int, int] = {}
        leader_seen: set[int] = set()
        while True:
            response = yield from target.consume()
            if response is FLOW_END:
                return
            reqid, _client, role, _value = response
            acks[reqid] = acks.get(reqid, 0) + 1
            if role == 0:
                leader_seen.add(reqid)
            if reqid in leader_seen and acks[reqid] >= quorum:
                tracker.complete(reqid, env.now)

    for i in range(replica_count):
        env.process(replica_proc(i), name=f"nop-replica-{i}")
    env.process(leader_gap_responder(env), name="nop-gap-leader")
    for i in range(1, replica_count):
        env.process(follower_gap_listener(i), name=f"nop-gap-follower-{i}")
    for i in range(setup.clients):
        env.process(client_submit(i), name=f"nop-client-submit-{i}")
        env.process(client_receive(i), name=f"nop-client-recv-{i}")
    cluster.run()
    result = tracker.result("nopaxos")
    result.gaps_noop = stats["gaps_noop"]  # type: ignore[attr-defined]
    result.gaps_recovered = stats["gaps_recovered"]  # type: ignore[attr-defined]
    return result
