"""Shared load-generation and measurement harness for Fig. 15.

All three systems are driven identically: six clients on three nodes
generate 64-byte YCSB-B requests open-loop at a configured aggregate rate
(Poisson arrivals). Latency is measured from the request's *scheduled
arrival* to its completion, so client-side queueing — e.g. DARE's
one-outstanding-request rule — shows up in the distribution exactly as it
would for a real user.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


@dataclass(frozen=True)
class ConsensusSetup:
    """Deployment shape of one consensus run (defaults match Fig. 15)."""

    replica_nodes: tuple = (0, 1, 2, 3, 4)
    client_nodes: tuple = (5, 6, 7)
    clients: int = 6
    #: Aggregate offered load, requests per second.
    offered_rate: float = 500_000.0
    #: Measured interval in ns (excluding warmup).
    duration: float = 10_000_000.0
    #: Warmup interval in ns (requests issued, not measured).
    warmup: float = 2_000_000.0
    seed: int = 0
    ycsb: YcsbConfig = field(default_factory=YcsbConfig)

    def __post_init__(self) -> None:
        if self.clients % len(self.client_nodes):
            raise ConfigurationError(
                "clients must spread evenly over client nodes")
        if self.offered_rate <= 0 or self.duration <= 0:
            raise ConfigurationError("rate and duration must be positive")

    @property
    def leader_node(self) -> int:
        return self.replica_nodes[0]

    @property
    def follower_nodes(self) -> tuple:
        return self.replica_nodes[1:]

    @property
    def majority_votes(self) -> int:
        """Follower votes needed for a majority including the leader."""
        return (len(self.replica_nodes) + 1) // 2 - 1 + \
            (len(self.replica_nodes) + 1) % 2

    def client_node(self, client_index: int) -> int:
        per_node = self.clients // len(self.client_nodes)
        return self.client_nodes[client_index // per_node]


@dataclass
class ConsensusResult:
    """Outcome of one consensus run at one offered load."""

    protocol: str
    offered_rate: float
    completed: int
    achieved_rate: float
    median_latency: float
    p95_latency: float
    p99_latency: float
    issued: int

    def describe(self) -> str:
        return (f"{self.protocol:<12} offered={self.offered_rate / 1e6:5.2f}M/s "
                f"achieved={self.achieved_rate / 1e6:5.2f}M/s "
                f"median={self.median_latency / 1e3:6.1f}us "
                f"p95={self.p95_latency / 1e3:6.1f}us")


class LoadGenerator:
    """Per-client Poisson arrival schedule plus YCSB operation stream."""

    def __init__(self, setup: ConsensusSetup, client_index: int) -> None:
        self._rng = random.Random(f"arrivals:{setup.seed}:{client_index}")
        self._workload = YcsbWorkload(setup.ycsb,
                                      seed=setup.seed * 101 + client_index)
        self._rate = setup.offered_rate / setup.clients  # per second
        self._horizon = setup.warmup + setup.duration
        self._next_arrival = 0.0

    def next_arrival(self) -> "float | None":
        """Scheduled time (ns) of the next request, or None past the end."""
        self._next_arrival += self._rng.expovariate(self._rate) * 1e9
        if self._next_arrival >= self._horizon:
            return None
        return self._next_arrival

    def next_operation(self):
        return self._workload.next_request()


class LatencyTracker:
    """Records request lifecycles and computes the Fig. 15 statistics."""

    def __init__(self, setup: ConsensusSetup) -> None:
        self._setup = setup
        self._starts: dict[int, float] = {}
        self._latencies: list[float] = []
        self.issued = 0
        self.completed = 0
        self._first_measured: "float | None" = None
        self._last_measured: "float | None" = None

    def issue(self, reqid: int, scheduled_at: float) -> None:
        self.issued += 1
        self._starts[reqid] = scheduled_at

    def complete(self, reqid: int, now: float) -> None:
        start = self._starts.pop(reqid, None)
        if start is None:
            return  # duplicate completion (e.g. extra quorum responses)
        self.completed += 1
        if start < self._setup.warmup:
            return
        self._latencies.append(now - start)
        if self._first_measured is None:
            self._first_measured = start
        self._last_measured = start

    def result(self, protocol: str) -> ConsensusResult:
        latencies = sorted(self._latencies)
        if not latencies:
            raise ConfigurationError(
                f"{protocol}: no requests completed in the measured window")

        def percentile(fraction: float) -> float:
            index = min(len(latencies) - 1,
                        int(fraction * (len(latencies) - 1)))
            return latencies[index]

        span = max(1.0, (self._last_measured or 1.0)
                   - (self._first_measured or 0.0))
        achieved = len(latencies) / (span / 1e9)
        return ConsensusResult(
            protocol=protocol,
            offered_rate=self._setup.offered_rate,
            completed=len(latencies),
            achieved_rate=achieved,
            median_latency=percentile(0.50),
            p95_latency=percentile(0.95),
            p99_latency=percentile(0.99),
            issued=self.issued)
