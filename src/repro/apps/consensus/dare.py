"""DARE (Poke & Hoefler, HPDC '15): the hand-crafted RDMA SMR baseline.

Implemented directly on the raw verbs layer, with the two structural
properties the paper identifies as DARE's bottlenecks (Section 6.3.2):

1. **one outstanding request per client** — a client cannot submit a new
   request before the previous one completed, so offered load beyond the
   closed-loop limit queues at the client;
2. **serialized write protocol** — the leader's protocol engine processes
   one batch at a time; it batches *consecutive* requests of the same
   type, so the 95/5 read/write mix of YCSB-B constantly interrupts read
   batches with write batches, each of which blocks the pipeline for a
   one-sided replication round to a majority of follower logs.

Cost calibration: DARE's client library and leader protocol engine carry
per-request software costs (polling epochs, state-machine bookkeeping)
that our flow-based implementations do not. The constants below are set so
the *relative* unloaded latency and saturation point against the DFI
implementations match the factors in the paper's Fig. 15.
"""

from __future__ import annotations

from collections import deque

from repro.apps.consensus import messages
from repro.apps.consensus.driver import (
    ConsensusResult,
    ConsensusSetup,
    LatencyTracker,
    LoadGenerator,
)
from repro.apps.consensus.kvstore import APPLY_COST_NS, KvStore
from repro.rdma.completion import CompletionQueue
from repro.rdma.nic import get_nic
from repro.simnet.cluster import Cluster
from repro.simnet.sync import Store

#: Serialized leader protocol-engine cost per request.
_LEADER_ENGINE_COST = 1_800.0
#: Client library cost per request (UD send path + response handling).
_CLIENT_OVERHEAD = 2_000.0
#: Largest run of same-type requests processed as one batch.
_MAX_BATCH = 32
#: Size of one replicated log entry.
_LOG_ENTRY_BYTES = 64
#: Follower log region size (circular).
_LOG_REGION_BYTES = 1 << 20


def run_dare(cluster: Cluster,
             setup: ConsensusSetup = ConsensusSetup()) -> ConsensusResult:
    """Run the DARE baseline under the Fig. 15 workload."""
    tracker = LatencyTracker(setup)
    env = cluster.env
    store = KvStore()
    leader_node = cluster.node(setup.leader_node)
    leader_nic = get_nic(leader_node)
    follower_nodes = [cluster.node(n) for n in setup.follower_nodes]
    majority = setup.majority_votes  # follower log writes to wait for

    # Follower logs: registered regions the leader writes one-sidedly.
    follower_logs = [get_nic(node).register_memory(_LOG_REGION_BYTES)
                     for node in follower_nodes]
    follower_qps = [leader_nic.create_qp(node) for node in follower_nodes]
    log_offset = [0]

    # Client <-> leader queue pairs (shared leader receive CQ).
    leader_recv_cq = CompletionQueue(env, "dare-leader-rcq")
    client_qps = []
    for index in range(setup.clients):
        client_node = cluster.node(setup.client_node(index))
        client_nic = get_nic(client_node)
        to_leader = client_nic.create_qp(leader_node)
        from_leader = leader_nic.create_qp(client_node,
                                           recv_cq=leader_recv_cq)
        to_leader.connect(from_leader)
        client_qps.append((to_leader, from_leader))

    # Pre-posted receive buffers.
    leader_rx = leader_nic.register_memory(
        setup.clients * 64 * messages.REQUEST_SCHEMA.tuple_size)
    for index in range(setup.clients):
        _to_leader, from_leader = client_qps[index]
        base = index * 64 * messages.REQUEST_SCHEMA.tuple_size
        for slot in range(64):
            from_leader.post_recv(
                leader_rx, base + slot * messages.REQUEST_SCHEMA.tuple_size,
                messages.REQUEST_SCHEMA.tuple_size, wr_id=index)

    pending: deque[tuple] = deque()
    wake = Store(env)

    def leader_receiver(env):
        """Pull client requests off the wire into the protocol queue."""
        done_clients = 0
        while done_clients < setup.clients:
            completion = yield leader_recv_cq.wait()
            region, offset, _length = completion.result
            request = messages.REQUEST_SCHEMA.unpack_from(region.mem,
                                                          offset)
            client_index = completion.wr_id
            _to_leader, from_leader = client_qps[client_index]
            from_leader.post_recv(region, offset,
                                  messages.REQUEST_SCHEMA.tuple_size,
                                  wr_id=client_index)
            if request[0] == 2 ** 48 - 1:  # shutdown sentinel
                done_clients += 1
                continue
            pending.append(request)
            yield wake.put(None)

    def wait_majority(work_requests, needed: int):
        """Generator: wait until ``needed`` of the posted log writes
        completed (DARE commits on a majority of remote log writes)."""
        remaining = [wr.done for wr in work_requests
                     if not wr.done.triggered]
        completed = len(work_requests) - len(remaining)
        while completed < needed and remaining:
            index, _value = yield env.any_of(remaining)
            remaining.pop(index)
            completed += 1

    def leader_engine(env):
        """The serialized protocol engine: one same-type batch at a time."""
        served = 0
        while True:
            if not pending:
                yield wake.get()
                continue
            batch_op = pending[0][2]
            batch = []
            while (pending and pending[0][2] == batch_op
                   and len(batch) < _MAX_BATCH):
                batch.append(pending.popleft())
            yield leader_node.compute(_LEADER_ENGINE_COST * len(batch))
            if batch_op == messages.OP_UPDATE:
                # Replicate the log entries one-sidedly; commit on majority.
                entry_bytes = b"".join(
                    messages.REQUEST_SCHEMA.pack(request)
                    for request in batch).ljust(
                        _LOG_ENTRY_BYTES * len(batch), b"\x00")
                offset = log_offset[0]
                log_offset[0] = (offset + len(entry_bytes)) % (
                    _LOG_REGION_BYTES - _LOG_ENTRY_BYTES * _MAX_BATCH)
                writes = [qp.post_write(entry_bytes, log.rkey, offset,
                                        signaled=True)
                          for qp, log in zip(follower_qps, follower_logs)]
                yield from wait_majority(writes, majority)
            for request in batch:
                reqid, client, op, key, value = request
                yield leader_node.compute(APPLY_COST_NS)
                result = store.apply(op, key, value)
                _to_leader, from_leader = client_qps[client]
                response = messages.RESPONSE_SCHEMA.pack(
                    (reqid, client, 0, result))
                from_leader.post_send(response, signaled=False)
                served += 1

    def client_proc(index: int):
        """Closed-loop DARE client fed by an open-loop arrival process."""
        generator = LoadGenerator(setup, index)
        to_leader, _from_leader = client_qps[index]
        client_nic = get_nic(cluster.node(setup.client_node(index)))
        rx = client_nic.register_memory(
            4 * messages.RESPONSE_SCHEMA.tuple_size)
        for slot in range(4):
            to_leader.post_recv(rx,
                                slot * messages.RESPONSE_SCHEMA.tuple_size,
                                messages.RESPONSE_SCHEMA.tuple_size)
        sequence = 0
        backlog: deque[tuple] = deque()
        next_arrival = generator.next_arrival()
        while next_arrival is not None or backlog:
            if not backlog:
                if next_arrival > env.now:
                    yield env.timeout(next_arrival - env.now)
                operation = generator.next_operation()
                backlog.append((next_arrival, operation))
                next_arrival = generator.next_arrival()
            scheduled_at, operation = backlog.popleft()
            reqid = messages.make_reqid(index, sequence)
            sequence += 1
            tracker.issue(reqid, scheduled_at)
            yield cluster.node(setup.client_node(index)).compute(
                _CLIENT_OVERHEAD)
            value = operation.value.ljust(messages.VALUE_BYTES, b"\x00")
            to_leader.post_send(messages.REQUEST_SCHEMA.pack(
                (reqid, index,
                 int(operation.op.value == "update"),
                 operation.key, value)), signaled=False)
            # One outstanding request: block until the response arrives.
            completion = yield to_leader.recv_cq.wait()
            region, offset, _length = completion.result
            response = messages.RESPONSE_SCHEMA.unpack_from(region.mem,
                                                            offset)
            to_leader.post_recv(region, offset,
                                messages.RESPONSE_SCHEMA.tuple_size)
            tracker.complete(response[0], env.now)
            # Drain arrivals that queued while we were blocked.
            while (next_arrival is not None and next_arrival <= env.now):
                operation = generator.next_operation()
                backlog.append((next_arrival, operation))
                next_arrival = generator.next_arrival()
        # Tell the leader we are done (lets the receiver terminate).
        to_leader.post_send(messages.REQUEST_SCHEMA.pack(
            (2 ** 48 - 1, index, 0, 0, b"\x00" * messages.VALUE_BYTES)),
            signaled=False)

    env.process(leader_receiver(env), name="dare-leader-recv")
    engine = env.process(leader_engine(env), name="dare-leader-engine")
    for index in range(setup.clients):
        env.process(client_proc(index), name=f"dare-client-{index}")
    cluster.run()
    del engine  # blocked on an empty queue once all clients finished
    return tracker.result("dare")
