"""Multi-Paxos (normal, failure-free operation) on DFI flows.

The four-flow message pattern of the paper's Figure 3:

1. clients submit requests through an N:1 latency-optimized shuffle flow
   to the leader;
2. the leader assigns log slots and proposes through a multicast replicate
   flow to the followers;
3. followers vote back through an N:1 shuffle flow;
4. on a majority the leader executes and answers through a 1:N shuffle
   flow routed by client id.
"""

from __future__ import annotations

from collections import defaultdict

from repro.apps.consensus import messages
from repro.apps.consensus.driver import (
    ConsensusResult,
    ConsensusSetup,
    LatencyTracker,
    LoadGenerator,
)
from repro.apps.consensus.kvstore import APPLY_COST_NS, KvStore
from repro.core.flow import DfiRuntime
from repro.core.flowdef import FLOW_END, FlowOptions, Optimization
from repro.core.nodes import Endpoint
from repro.simnet.cluster import Cluster

#: Per-message protocol processing cost on replicas (ns).
_HANDLE_COST = 250.0
#: Flow options for the latency-critical paths: deep rings absorb bursts.
_FLOW_OPTIONS = FlowOptions(target_segments=256, credit_threshold=64)


def run_multipaxos(cluster: Cluster,
                   setup: ConsensusSetup = ConsensusSetup()) -> ConsensusResult:
    """Run failure-free Multi-Paxos under the Fig. 15 workload."""
    dfi = DfiRuntime(cluster)
    leader = setup.leader_node
    followers = list(setup.follower_nodes)
    client_eps = [Endpoint(setup.client_node(i), 10 + i % 2)
                  for i in range(setup.clients)]
    dfi.init_shuffle_flow(
        "mp-req", client_eps, [Endpoint(leader, 0)],
        messages.REQUEST_SCHEMA, optimization=Optimization.LATENCY,
        options=_FLOW_OPTIONS)
    dfi.init_replicate_flow(
        "mp-prop", [Endpoint(leader, 1)],
        [Endpoint(node, 0) for node in followers],
        messages.PROPOSAL_SCHEMA, optimization=Optimization.LATENCY,
        options=FlowOptions(target_segments=256, credit_threshold=64,
                            multicast=True))
    dfi.init_shuffle_flow(
        "mp-vote", [Endpoint(node, 1) for node in followers],
        [Endpoint(leader, 2)], messages.VOTE_SCHEMA,
        optimization=Optimization.LATENCY, options=_FLOW_OPTIONS)
    dfi.init_shuffle_flow(
        "mp-resp", [Endpoint(leader, 3)], client_eps,
        messages.RESPONSE_SCHEMA, optimization=Optimization.LATENCY,
        options=_FLOW_OPTIONS)

    tracker = LatencyTracker(setup)
    store = KvStore()
    env = cluster.env
    log: dict[int, tuple] = {}
    votes: dict[int, int] = defaultdict(int)
    committed: set[int] = set()
    next_to_execute = [0]

    def leader_propose(env):
        """Leader thread 1: order client requests into log slots."""
        node = cluster.node(leader)
        request_target = yield from dfi.open_target("mp-req", 0)
        proposal_source = yield from dfi.open_source("mp-prop", 0)
        next_slot = 0
        while True:
            request = yield from request_target.consume()
            if request is FLOW_END:
                yield from proposal_source.close()
                return
            yield node.compute(_HANDLE_COST)
            slot = next_slot
            next_slot += 1
            log[slot] = request
            yield from proposal_source.push((slot, *request))

    def leader_decide(env):
        """Leader thread 2: count votes, execute, answer clients."""
        node = cluster.node(leader)
        vote_target = yield from dfi.open_target("mp-vote", 0)
        response_source = yield from dfi.open_source("mp-resp", 0)
        while True:
            vote = yield from vote_target.consume()
            if vote is FLOW_END:
                yield from response_source.close()
                return
            yield node.compute(_HANDLE_COST)
            slot, _follower = vote
            votes[slot] += 1
            if votes[slot] == setup.majority_votes:
                committed.add(slot)
                # Execute commits in slot order.
                while next_to_execute[0] in committed:
                    current = next_to_execute[0]
                    next_to_execute[0] += 1
                    reqid, client, op, key, value = log[current]
                    yield node.compute(APPLY_COST_NS)
                    result = store.apply(op, key, value)
                    yield from response_source.push(
                        (reqid, client, 0, result), target=client)

    def follower(index: int):
        node = cluster.node(followers[index])
        proposal_target = yield from dfi.open_target("mp-prop", index)
        vote_source = yield from dfi.open_source("mp-vote", index)
        follower_log = []
        while True:
            proposal = yield from proposal_target.consume()
            if proposal is FLOW_END:
                yield from vote_source.close()
                return
            yield node.compute(_HANDLE_COST)
            follower_log.append(proposal)
            yield from vote_source.push((proposal[0], index))

    def client_submit(index: int):
        generator = LoadGenerator(setup, index)
        source = yield from dfi.open_source("mp-req", index)
        sequence = 0
        while True:
            arrival = generator.next_arrival()
            if arrival is None:
                yield from source.close()
                return
            if arrival > env.now:
                yield env.timeout(arrival - env.now)
            operation = generator.next_operation()
            reqid = messages.make_reqid(index, sequence)
            sequence += 1
            tracker.issue(reqid, arrival)
            value = operation.value.ljust(messages.VALUE_BYTES, b"\x00")
            yield from source.push(
                (reqid, index, operation.op.value == "update",
                 operation.key, value))

    def client_receive(index: int):
        target = yield from dfi.open_target("mp-resp", index)
        while True:
            response = yield from target.consume()
            if response is FLOW_END:
                return
            tracker.complete(response[0], env.now)

    env.process(leader_propose(env), name="mp-leader-propose")
    env.process(leader_decide(env), name="mp-leader-decide")
    for i in range(len(followers)):
        env.process(follower(i), name=f"mp-follower-{i}")
    for i in range(setup.clients):
        env.process(client_submit(i), name=f"mp-client-submit-{i}")
        env.process(client_receive(i), name=f"mp-client-recv-{i}")
    cluster.run()
    return tracker.result("multipaxos")
