"""The replicated key-value store state machine."""

from __future__ import annotations

from repro.apps.consensus.messages import OP_READ, OP_UPDATE, VALUE_BYTES

#: CPU cost of applying one operation to the state machine.
APPLY_COST_NS = 150.0


class KvStore:
    """In-memory KV state machine: the application replicated by all
    three consensus implementations."""

    def __init__(self) -> None:
        self._data: dict[int, bytes] = {}
        self.reads = 0
        self.updates = 0

    def apply(self, op: int, key: int, value: bytes) -> bytes:
        """Apply one operation; returns the (old or read) value."""
        if op == OP_READ:
            self.reads += 1
            return self._data.get(key, b"\x00" * VALUE_BYTES)
        if op == OP_UPDATE:
            self.updates += 1
            self._data[key] = bytes(value)
            return value
        raise ValueError(f"unknown operation code {op}")

    def __len__(self) -> int:
        return len(self._data)
