"""State-machine replication use case (paper Section 6.3.2):
Multi-Paxos and NOPaxos on DFI flows, and the DARE baseline on raw verbs."""

from repro.apps.consensus.dare import run_dare
from repro.apps.consensus.driver import ConsensusResult
from repro.apps.consensus.kvstore import KvStore
from repro.apps.consensus.multipaxos import run_multipaxos
from repro.apps.consensus.nopaxos import run_nopaxos

__all__ = [
    "run_multipaxos",
    "run_nopaxos",
    "run_dare",
    "ConsensusResult",
    "KvStore",
]
