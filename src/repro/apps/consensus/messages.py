"""Wire schemas of the consensus protocols.

Client requests are 64 bytes, matching the paper's Fig. 15 workload.
"""

from __future__ import annotations

from repro.core.schema import Schema

#: Size of the opaque value carried by requests/responses.
VALUE_BYTES = 32

#: Operation codes.
OP_READ = 0
OP_UPDATE = 1

#: Gap-agreement decisions.
DECISION_NOOP = 0
DECISION_OP = 1

#: Client -> leader / OUM group: 64-byte request.
REQUEST_SCHEMA = Schema(
    ("reqid", "uint64"), ("client", "uint64"), ("op", "uint64"),
    ("key", "uint64"), ("value", VALUE_BYTES))

#: Leader -> followers proposal (request plus its log slot).
PROPOSAL_SCHEMA = Schema(
    ("slot", "uint64"), ("reqid", "uint64"), ("client", "uint64"),
    ("op", "uint64"), ("key", "uint64"), ("value", VALUE_BYTES))

#: Follower -> leader vote.
VOTE_SCHEMA = Schema(("slot", "uint64"), ("follower", "uint64"))

#: Replica -> client response. ``role`` 0 = leader result, 1 = follower ack.
RESPONSE_SCHEMA = Schema(
    ("reqid", "uint64"), ("client", "uint64"), ("role", "uint64"),
    ("value", VALUE_BYTES))

#: Follower -> leader gap query (NOPaxos gap agreement).
GAP_REQ_SCHEMA = Schema(("seq", "uint64"), ("replica", "uint64"))

#: Leader -> followers gap decision: NO-OP or the recovered request.
GAP_RESP_SCHEMA = Schema(
    ("seq", "uint64"), ("decision", "uint64"), ("reqid", "uint64"),
    ("client", "uint64"), ("op", "uint64"), ("key", "uint64"),
    ("value", VALUE_BYTES))


def make_reqid(client_index: int, sequence: int) -> int:
    """Globally unique request id: client index in the upper 16 bits."""
    return (client_index << 48) | sequence
