"""Flow schemas: named, fixed-offset tuple layouts.

A :class:`Schema` is declared once at flow initialization (mirroring
``DFI_Schema({"key", int}, {"value", int})`` from the paper's Figure 1) and
compiled to a ``struct.Struct`` — packing, unpacking and key extraction all
run on precomputed offsets with zero per-tuple type interpretation.

Schema specialization (the columnar hot path)
---------------------------------------------
On top of the generic ``struct`` machinery, each schema compiles a small
set of *specialized kernels* from generated source (``exec``-cached per
dtype-code string, so two schemas with the same wire layout share one
kernel set):

* ``pack_many_into`` / ``unpack_rows`` — flat batch (de)serializers with
  the schema layout baked into the source;
* hash-partition kernels for the shuffle router (integer keys skip the
  per-tuple ``int`` probe entirely — the dtype proves it);
* columnar combiner folds that aggregate straight out of packed segment
  bytes, decoding only the group/value columns (every other field becomes
  ``struct`` pad bytes).

The kernels are wall-clock accelerators only: they emit bit-identical
bytes, partitions and aggregates to the generic path, and none of them is
ever consulted for a simulated-time decision. ``REPRO_NO_CODEGEN=1``
(see :mod:`repro.common.config`) disables generation and leaves every
call on the generic pure-``struct`` fallback.
"""

from __future__ import annotations

import operator
import struct
from dataclasses import dataclass
from itertools import chain

from repro.common.config import codegen_enabled
from repro.common.errors import SchemaError
from repro.core.types import DataType, resolve_type

#: struct codes whose values are always Python ints (lets the router
#: kernel drop the per-tuple integer probe).
_INT_CODES = frozenset("bBhHiIqQ")

#: Unsigned subset: key dtypes whose in-range values fit a C uint64,
#: making the vectorized router bucket pass applicable.
_UNSIGNED_CODES = frozenset("BHIQ")

#: Lazily-resolved numpy module, or ``False`` when unavailable. The
#: vectorized router pass is an optional accelerator only — the
#: stdlib router stays the reference and the fallback, and nothing
#: else in the simulator touches numpy.
_NUMPY = None


def _numpy():
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy
            _NUMPY = numpy
        except ImportError:  # pragma: no cover - depends on environment
            _NUMPY = False
    return _NUMPY

#: Fibonacci-hash constants of :func:`repro.core.routing._fibonacci_hash_u64`
#: (duplicated here for inlining into generated router source; the router
#: tests pin the two definitions together).
_HASH_MULT = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1

#: Batches below this size stay on the scalar router loop — the
#: vectorized pass has per-call conversion overhead that only pays
#: off once the batch amortizes it (threshold is a pure wall-clock
#: knob: both passes produce bit-identical partitions).
_ROUTE_NP_MIN = 256

#: Count-keyed batch-struct caches stop growing at this many entries;
#: uncached counts fall back to power-of-two chunked packing instead of
#: compiling a fresh ``struct.Struct`` per call.
_BATCH_CACHE_CAP = 64


@dataclass(frozen=True)
class Field:
    """One schema column: a name, a type, and its byte offset."""

    name: str
    dtype: DataType
    offset: int


class Schema:
    """An ordered set of typed fields defining the wire layout of a tuple.

    Example::

        schema = Schema(("key", "uint64"), ("value", "uint64"))
        raw = schema.pack((1, 20))
        assert schema.unpack(raw) == (1, 20)
    """

    def __init__(self, *fields: tuple[str, "DataType | str | int"]) -> None:
        if not fields:
            raise SchemaError("a schema needs at least one field")
        resolved: list[Field] = []
        seen: set[str] = set()
        offset = 0
        for entry in fields:
            try:
                name, spec = entry
            except (TypeError, ValueError):
                raise SchemaError(
                    f"schema field must be a (name, type) pair, got {entry!r}"
                ) from None
            if not isinstance(name, str) or not name:
                raise SchemaError(f"field name must be a non-empty string, "
                                  f"got {name!r}")
            if name in seen:
                raise SchemaError(f"duplicate field name {name!r}")
            seen.add(name)
            dtype = resolve_type(spec)
            resolved.append(Field(name, dtype, offset))
            offset += dtype.size
        self._fields = tuple(resolved)
        self._index = {field.name: i for i, field in enumerate(resolved)}
        self._codes = "".join(field.dtype.code for field in resolved)
        self._struct = struct.Struct("<" + self._codes)
        if self._struct.size != offset:
            raise AssertionError("packed size does not match field offsets")
        #: Bound method cache: ``unpack_rows`` runs once per drained
        #: segment on the target hot path.
        self._iter_unpack = self._struct.iter_unpack
        #: Compiled batch structs, keyed by tuple count (push_batch packs a
        #: whole segment with a single struct call). Bounded: once
        #: ``_BATCH_CACHE_CAP`` distinct counts are cached, new counts pack
        #: through power-of-two chunks instead of compiling per call.
        self._batch_structs: dict[int, struct.Struct] = {}
        #: Power-of-two chunk structs used by counts that miss the full
        #: cache (bounded by the count's bit length, so ~60 entries max).
        self._pow2_structs: dict[int, struct.Struct] = {}
        #: Generated kernel set (``None`` under ``REPRO_NO_CODEGEN``).
        self._kernels = None
        if codegen_enabled():
            kernels = _kernels_for(self._codes)
            self._kernels = kernels
            # Shadow the generic bound methods with the flat generated
            # kernels (same signatures minus ``self``).
            self.pack_many_into = kernels.pack_many_into
            self.unpack_rows = kernels.unpack_rows

    # -- introspection -----------------------------------------------------
    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def tuple_size(self) -> int:
        """Packed size of one tuple in bytes."""
        return self._struct.size

    @property
    def arity(self) -> int:
        return len(self._fields)

    def field_index(self, name_or_index: "str | int") -> int:
        """Resolve a field reference (name or positional index)."""
        if isinstance(name_or_index, int):
            if not 0 <= name_or_index < len(self._fields):
                raise SchemaError(
                    f"field index {name_or_index} out of range "
                    f"[0, {len(self._fields)})")
            return name_or_index
        try:
            return self._index[name_or_index]
        except KeyError:
            raise SchemaError(
                f"unknown field {name_or_index!r}; fields: "
                f"{[f.name for f in self._fields]}") from None

    def offset_of(self, name_or_index: "str | int") -> int:
        """Byte offset of a field inside the packed tuple."""
        return self._fields[self.field_index(name_or_index)].offset

    # -- (de)serialization -----------------------------------------------
    def pack(self, values: tuple) -> bytes:
        """Pack a Python tuple into its wire representation."""
        try:
            return self._struct.pack(*values)
        except struct.error as exc:
            raise SchemaError(
                f"tuple {values!r} does not match schema "
                f"{[f.name for f in self._fields]}: {exc}") from None

    def pack_into(self, buffer: bytearray, offset: int,
                  values: tuple) -> None:
        """Pack a tuple directly into ``buffer`` at ``offset``."""
        try:
            self._struct.pack_into(buffer, offset, *values)
        except struct.error as exc:
            raise SchemaError(
                f"tuple {values!r} does not match schema: {exc}") from None

    def _batch_struct(self, count: int) -> "struct.Struct | None":
        """Batch struct for ``count`` tuples, or ``None`` once the cache
        is full and ``count`` is uncached — callers then take the
        power-of-two chunked path instead of compiling a throwaway
        ``struct.Struct`` on every call."""
        compiled = self._batch_structs.get(count)
        if compiled is None and len(self._batch_structs) < _BATCH_CACHE_CAP:
            compiled = struct.Struct("<" + self._codes * count)
            self._batch_structs[count] = compiled
        return compiled

    def _pow2_struct(self, count: int) -> struct.Struct:
        """Batch struct for a power-of-two chunk (never evicted; at most
        one entry per bit of the largest chunked count)."""
        compiled = self._pow2_structs.get(count)
        if compiled is None:
            compiled = self._pow2_structs[count] = struct.Struct(
                "<" + self._codes * count)
        return compiled

    def pack_many_into(self, buffer: bytearray, offset: int,
                       tuples) -> None:
        """Pack a sequence of tuples contiguously into ``buffer`` with one
        ``struct`` call — the amortization behind the batched push path.

        Counts beyond the batch-struct cache pack in power-of-two chunks
        (identical bytes, no per-call compile). Schemas built with codegen
        enabled shadow this method with the generated kernel of the same
        contract.
        """
        count = len(tuples)
        if count == 1:
            self.pack_into(buffer, offset, tuples[0])
            return
        compiled = self._batch_struct(count)
        try:
            if compiled is not None:
                compiled.pack_into(
                    buffer, offset, *chain.from_iterable(tuples))
                return
            size = self._struct.size
            index = 0
            while index < count:
                chunk = 1 << ((count - index).bit_length() - 1)
                self._pow2_struct(chunk).pack_into(
                    buffer, offset + index * size,
                    *chain.from_iterable(tuples[index:index + chunk]))
                index += chunk
        except struct.error as exc:
            raise SchemaError(
                f"batch of {count} tuples does not match schema: "
                f"{exc}") from None

    def unpack(self, data: "bytes | bytearray | memoryview") -> tuple:
        """Unpack one tuple from exactly ``tuple_size`` bytes."""
        try:
            return self._struct.unpack(data)
        except struct.error as exc:
            raise SchemaError(f"cannot unpack tuple: {exc}") from None

    def unpack_from(self, buffer, offset: int = 0) -> tuple:
        """Unpack one tuple from ``buffer`` starting at ``offset``."""
        try:
            return self._struct.unpack_from(buffer, offset)
        except struct.error as exc:
            raise SchemaError(f"cannot unpack tuple: {exc}") from None

    def unpack_many(self, buffer, count: int, offset: int = 0) -> list[tuple]:
        """Unpack ``count`` consecutive tuples (a segment payload)."""
        size = self._struct.size
        span = count * size
        if offset or len(buffer) != span:
            buffer = memoryview(buffer)[offset:offset + span]
        # iter_unpack walks the whole payload in C, one call per segment.
        return list(self._iter_unpack(buffer))

    def unpack_rows(self, buffer) -> list[tuple]:
        """Unpack every tuple in ``buffer`` — the target-side drain hot
        path. ``buffer`` must hold a whole number of packed tuples (a
        segment's used payload always does); unlike :meth:`unpack_many`
        there is no count bookkeeping or slicing, just one C call."""
        try:
            return list(self._iter_unpack(buffer))
        except struct.error as exc:
            raise SchemaError(
                f"cannot unpack {len(buffer)} bytes as "
                f"{self.tuple_size}-byte tuples: {exc}") from None

    def row_views(self, buffer) -> list[memoryview]:
        """Split ``buffer`` into one zero-copy memoryview per packed tuple.

        The views alias ``buffer``'s memory — for views handed out by
        ``consume_bytes`` the ring-segment lifetime rules apply (valid
        only until the consuming process yields back to the simulator).
        """
        size = self._struct.size
        view = buffer if isinstance(buffer, memoryview) else memoryview(buffer)
        span = len(view)
        if span % size:
            raise SchemaError(
                f"cannot split {span} bytes into {size}-byte rows")
        return [view[offset:offset + size]
                for offset in range(0, span, size)]

    # -- specialized kernels ----------------------------------------------
    def compiled_route_many(self, key_index: int, generic_route_many):
        """Generated hash-partition kernel for shuffling on field
        ``key_index``, or ``None`` when codegen is off or the key dtype
        is not a statically-known integer.

        The kernel produces exactly the partitions of
        ``generic_route_many`` (same Fibonacci hash, same power-of-two
        mask folding); on any ``TypeError`` — a value that does not match
        the declared dtype — it discards its partial groups and replays
        the whole batch through ``generic_route_many``, so even the
        mistyped-batch behaviour is bit-identical to the fallback.
        """
        if self._kernels is None:
            return None
        code = self._fields[key_index].dtype.code
        if code not in _INT_CODES:
            return None
        return self._kernels.route_many(key_index, generic_route_many,
                                        code in _UNSIGNED_CODES)

    def fold_kernel(self, group_index: int, value_index: int, op: str):
        """Columnar combiner-fold factory for this schema, or ``None``
        when codegen is off or ``op`` is unknown.

        The factory is called as ``factory(get, put)`` with the aggregate
        table's bound ``dict.get``/``dict.__setitem__`` and returns
        ``fold_chunks(chunks) -> folded_tuple_count``: it aggregates
        straight out of packed segment bytes, decoding only the group and
        value columns (all other fields are ``struct`` pad bytes in the
        generated format), and folds in exactly the order the generic
        row-tuple loop would have.
        """
        if self._kernels is None or op not in ("sum", "count", "min",
                                               "max"):
            return None
        return self._kernels.fold_factory(self._fields, group_index,
                                          value_index, op)

    @property
    def codegen_active(self) -> bool:
        """True when this schema carries generated kernels."""
        return self._kernels is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        cols = ", ".join(f"{f.name}:{f.dtype.name}" for f in self._fields)
        return f"<Schema [{cols}] size={self.tuple_size}>"


# ---------------------------------------------------------------------------
# Generated kernels (the columnar hot path)
# ---------------------------------------------------------------------------
#
# One kernel set per dtype-code string, built by exec-ing specialized
# source with the layout constants inlined. The cache below makes kernel
# construction O(1) after the first schema of a given layout — flow setup
# creates many short-lived Schema objects in tests.

#: codes -> _SchemaKernels (process-global; kernels are stateless apart
#: from their struct caches, so sharing across schemas is safe).
_KERNEL_CACHE: dict = {}


def _kernels_for(codes: str) -> "_SchemaKernels":
    kernels = _KERNEL_CACHE.get(codes)
    if kernels is None:
        kernels = _KERNEL_CACHE[codes] = _SchemaKernels(codes)
    return kernels


_PACK_UNPACK_TEMPLATE = '''\
_S = _Struct("<" + _CODES)
_PACK_INTO_1 = _S.pack_into
_ITER_UNPACK = _S.iter_unpack
_BATCH = {}
_POW2 = {}


def _batch_struct(count):
    s = _BATCH.get(count)
    if s is None and len(_BATCH) < _CACHE_CAP:
        s = _BATCH[count] = _Struct("<" + _CODES * count)
    return s


def _pow2_struct(count):
    s = _POW2.get(count)
    if s is None:
        s = _POW2[count] = _Struct("<" + _CODES * count)
    return s


def pack_many_into(buffer, offset, tuples):
    """Generated batch packer for schema layout %(codes)r."""
    count = len(tuples)
    if count == 1:
        try:
            _PACK_INTO_1(buffer, offset, *tuples[0])
        except _struct_error as exc:
            raise _SchemaError(
                f"tuple {tuples[0]!r} does not match schema: {exc}"
            ) from None
        return
    compiled = _batch_struct(count)
    try:
        if compiled is not None:
            compiled.pack_into(buffer, offset, *_flat(tuples))
            return
        index = 0
        while index < count:
            chunk = 1 << ((count - index).bit_length() - 1)
            _pow2_struct(chunk).pack_into(
                buffer, offset + index * %(size)d,
                *_flat(tuples[index:index + chunk]))
            index += chunk
    except _struct_error as exc:
        raise _SchemaError(
            f"batch of {count} tuples does not match schema: {exc}"
        ) from None


def unpack_rows(buffer):
    """Generated row-block unpacker for schema layout %(codes)r."""
    try:
        return list(_ITER_UNPACK(buffer))
    except _struct_error as exc:
        raise _SchemaError(
            f"cannot unpack {len(buffer)} bytes as "
            f"%(size)d-byte tuples: {exc}") from None
'''

_ROUTE_TEMPLATE = '''\
def %(pyname)s(tuples, target_count):
    """Generated hash partitioner (key field %(key_index)d, int dtype)."""
    groups = [[] for _ in range(target_count)]
    try:
        if target_count & (target_count - 1) == 0:
            low = target_count - 1
            appends = tuple(group.append for group in groups)
            # ``>> 32 & low`` reads bits 32..32+b-1 of the product, all
            # below bit 64 — identical with or without the ``& %(mask)d``
            # truncation (Python's infinite two's complement agrees with
            # the masked value on every bit position < 64), so the mask
            # is dropped from this branch for speed. The modulo branch
            # folds *all* bits and must keep it.
            for values in tuples:
                appends[values[%(key_index)d] * %(mult)d
                        >> 32 & low](values)
        else:
            appends = [group.append for group in groups]
            for values in tuples:
                appends[((values[%(key_index)d] * %(mult)d
                          & %(mask)d) >> 32) %% target_count](values)
    except (TypeError, OverflowError):
        # A value defied its declared integer dtype (str keys raise
        # OverflowError from sequence repetition, most others TypeError):
        # replay the whole batch through the generic router (partial
        # groups discarded), reproducing its isinstance semantics.
        return %(generic)s(tuples, target_count)
    return groups
%(np_block)s'''

_ROUTE_NP_TEMPLATE = '''\


def %(name)s(tuples, target_count):
    """Vectorized bucket pass over %(pyname)s (identical partitions).

    The bucket arithmetic wraps the key*multiplier product mod 2**64
    exactly as the scalar kernel's mask does, and both branches read
    only bits 32..63 of that product — the partitions are therefore
    bit-identical for every in-range key, and the out-of-band cases
    land on the same code paths the scalar kernel uses.
    """
    if len(tuples) < %(np_min)d:
        return %(pyname)s(tuples, target_count)
    try:
        keys = _np_fromiter(map(_op_index, map(_ig%(key_index)d, tuples)),
                            _np_uint64, len(tuples))
    except TypeError:
        # A key defied the declared integer dtype (``operator.index``
        # rejects floats, strings, None): same destination as the
        # scalar kernel's mistyped-batch path.
        return %(generic)s(tuples, target_count)
    except OverflowError:
        # Negative or >= 2**64 keys fall outside the C-uint64 pass,
        # but the scalar kernel routes them by full-precision product
        # bits without erroring — replay through it, not the generic.
        return %(pyname)s(tuples, target_count)
    buckets = ((keys * _np_mult) >> _np_s32).astype(_np_int64)
    if target_count & (target_count - 1) == 0:
        buckets &= target_count - 1
    else:
        buckets %%= target_count
    groups = [[] for _ in range(target_count)]
    appends = tuple(group.append for group in groups)
    for bucket, values in zip(buckets.tolist(), tuples):
        appends[bucket](values)
    return groups
'''

_FOLD_TEMPLATE = '''\
def %(name)s(get, put):
    """Generated columnar fold factory (%(op)s) for layout %(codes)r."""
    _iter_pairs = _Struct(%(fmt)r).iter_unpack

    def fold_chunks(chunks):
        folded = 0
        for chunk in chunks:
            folded += len(chunk)
%(body)s
        return folded // %(size)d

    return fold_chunks
'''

#: Inner loop bodies per (op, column order). ``%(head)s`` is the loop
#: header unpacking the selective struct's yield into group/value.
_FOLD_BODIES = {
    "sum": """\
            for {head} in _iter_pairs(chunk):
                current = get(group)
                put(group, value if current is None else current + value)""",
    "count": """\
            for (group,) in _iter_pairs(chunk):
                current = get(group)
                put(group, 1 if current is None else current + 1)""",
    "min": """\
            for {head} in _iter_pairs(chunk):
                current = get(group)
                if current is None or value < current:
                    put(group, value)""",
    "max": """\
            for {head} in _iter_pairs(chunk):
                current = get(group)
                if current is None or value > current:
                    put(group, value)""",
}


def _selective_format(fields, indices) -> str:
    """Little-endian struct format decoding only ``indices`` of a packed
    row; every other byte is padding. One row in, one tuple out (field
    order), so ``iter_unpack`` walks a segment of rows directly."""
    wanted = sorted(set(indices))
    parts = ["<"]
    position = 0
    for index in wanted:
        field = fields[index]
        if field.offset > position:
            parts.append(f"{field.offset - position}x")
        parts.append(field.dtype.code)
        position = field.offset + field.dtype.size
    total = fields[-1].offset + fields[-1].dtype.size
    if total > position:
        parts.append(f"{total - position}x")
    return "".join(parts)


class _SchemaKernels:
    """Kernel set generated for one dtype-code string."""

    __slots__ = ("codes", "_namespace", "pack_many_into", "unpack_rows",
                 "_route_cache", "_fold_cache")

    def __init__(self, codes: str) -> None:
        self.codes = codes
        compiled = struct.Struct("<" + codes)
        namespace = {
            "_Struct": struct.Struct,
            "_struct_error": struct.error,
            "_SchemaError": SchemaError,
            "_flat": chain.from_iterable,
            "_CODES": codes,
            "_CACHE_CAP": _BATCH_CACHE_CAP,
        }
        source = _PACK_UNPACK_TEMPLATE % {
            "codes": codes, "size": compiled.size}
        exec(compile(source, f"<schema-kernels {codes!r}>", "exec"),
             namespace)
        self._namespace = namespace
        self.pack_many_into = namespace["pack_many_into"]
        self.unpack_rows = namespace["unpack_rows"]
        self._route_cache: dict = {}
        self._fold_cache: dict = {}

    def route_many(self, key_index: int, generic_route_many,
                   unsigned: bool = False):
        """Hash-partition kernel for ``key_index`` (see
        :meth:`Schema.compiled_route_many`). The generic fallback is
        rebound per call site — kernels are shared across schemas, but
        every generated router of a given key index shares one body.
        Unsigned key dtypes additionally get the vectorized bucket
        pass when numpy is importable (identical partitions either
        way, so availability never changes results)."""
        kernel = self._route_cache.get(key_index)
        if kernel is None:
            name = f"_route_many_k{key_index}"
            generic_name = f"_generic_route_k{key_index}"
            np_mod = _numpy() if unsigned else False
            pyname = name + "_py" if np_mod else name
            fields = {
                "name": name, "pyname": pyname, "key_index": key_index,
                "mult": _HASH_MULT, "mask": _HASH_MASK,
                "generic": generic_name, "np_min": _ROUTE_NP_MIN,
            }
            if np_mod:
                namespace = self._namespace
                if "_np_fromiter" not in namespace:
                    namespace["_np_fromiter"] = np_mod.fromiter
                    namespace["_np_uint64"] = np_mod.uint64
                    namespace["_np_int64"] = np_mod.int64
                    namespace["_np_mult"] = np_mod.uint64(_HASH_MULT)
                    namespace["_np_s32"] = np_mod.uint64(32)
                    namespace["_op_index"] = operator.index
                namespace[f"_ig{key_index}"] = operator.itemgetter(
                    key_index)
                fields["np_block"] = _ROUTE_NP_TEMPLATE % fields
            else:
                fields["np_block"] = ""
            source = _ROUTE_TEMPLATE % fields
            exec(compile(source,
                         f"<schema-router {self.codes!r}[{key_index}]>",
                         "exec"), self._namespace)
            kernel = self._route_cache[key_index] = (
                self._namespace[name], generic_name)
        route, generic_name = kernel
        # The TypeError fallback dispatches through the namespace so the
        # kernel body stays shared; the latest generic is always correct
        # because every generic router of (codes, key) behaves alike.
        self._namespace[generic_name] = generic_route_many
        return route

    def fold_factory(self, fields, group_index: int, value_index: int,
                     op: str):
        """Columnar fold factory (see :meth:`Schema.fold_kernel`)."""
        key = (group_index, value_index, op)
        factory = self._fold_cache.get(key)
        if factory is None:
            if op == "count" or group_index == value_index:
                fmt = _selective_format(fields, (group_index,))
            else:
                fmt = _selective_format(fields,
                                        (group_index, value_index))
            if op == "count":
                head = "(group,)"
            elif group_index == value_index:
                head = "(group,)"
            elif group_index < value_index:
                head = "(group, value)"
            else:
                head = "(value, group)"
            body = _FOLD_BODIES[op].format(head=head)
            if op != "count" and group_index == value_index:
                # Single decoded column doubles as group and value.
                body = body.replace("_iter_pairs(chunk):",
                                    "_iter_pairs(chunk):\n"
                                    "                value = group",
                                    1)
            name = f"_fold_{group_index}_{value_index}_{op}"
            size = fields[-1].offset + fields[-1].dtype.size
            source = _FOLD_TEMPLATE % {
                "name": name, "op": op, "codes": self.codes,
                "fmt": fmt, "body": body, "size": size,
            }
            exec(compile(source,
                         f"<schema-fold {self.codes!r} {op}>", "exec"),
                 self._namespace)
            factory = self._fold_cache[key] = self._namespace[name]
        return factory
