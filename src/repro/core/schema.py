"""Flow schemas: named, fixed-offset tuple layouts.

A :class:`Schema` is declared once at flow initialization (mirroring
``DFI_Schema({"key", int}, {"value", int})`` from the paper's Figure 1) and
compiled to a ``struct.Struct`` — packing, unpacking and key extraction all
run on precomputed offsets with zero per-tuple type interpretation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from itertools import chain

from repro.common.errors import SchemaError
from repro.core.types import DataType, resolve_type


@dataclass(frozen=True)
class Field:
    """One schema column: a name, a type, and its byte offset."""

    name: str
    dtype: DataType
    offset: int


class Schema:
    """An ordered set of typed fields defining the wire layout of a tuple.

    Example::

        schema = Schema(("key", "uint64"), ("value", "uint64"))
        raw = schema.pack((1, 20))
        assert schema.unpack(raw) == (1, 20)
    """

    def __init__(self, *fields: tuple[str, "DataType | str | int"]) -> None:
        if not fields:
            raise SchemaError("a schema needs at least one field")
        resolved: list[Field] = []
        seen: set[str] = set()
        offset = 0
        for entry in fields:
            try:
                name, spec = entry
            except (TypeError, ValueError):
                raise SchemaError(
                    f"schema field must be a (name, type) pair, got {entry!r}"
                ) from None
            if not isinstance(name, str) or not name:
                raise SchemaError(f"field name must be a non-empty string, "
                                  f"got {name!r}")
            if name in seen:
                raise SchemaError(f"duplicate field name {name!r}")
            seen.add(name)
            dtype = resolve_type(spec)
            resolved.append(Field(name, dtype, offset))
            offset += dtype.size
        self._fields = tuple(resolved)
        self._index = {field.name: i for i, field in enumerate(resolved)}
        self._codes = "".join(field.dtype.code for field in resolved)
        self._struct = struct.Struct("<" + self._codes)
        if self._struct.size != offset:
            raise AssertionError("packed size does not match field offsets")
        #: Bound method cache: ``unpack_rows`` runs once per drained
        #: segment on the target hot path.
        self._iter_unpack = self._struct.iter_unpack
        #: Compiled batch structs, keyed by tuple count (push_batch packs a
        #: whole segment with a single struct call).
        self._batch_structs: dict[int, struct.Struct] = {}

    # -- introspection -----------------------------------------------------
    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def tuple_size(self) -> int:
        """Packed size of one tuple in bytes."""
        return self._struct.size

    @property
    def arity(self) -> int:
        return len(self._fields)

    def field_index(self, name_or_index: "str | int") -> int:
        """Resolve a field reference (name or positional index)."""
        if isinstance(name_or_index, int):
            if not 0 <= name_or_index < len(self._fields):
                raise SchemaError(
                    f"field index {name_or_index} out of range "
                    f"[0, {len(self._fields)})")
            return name_or_index
        try:
            return self._index[name_or_index]
        except KeyError:
            raise SchemaError(
                f"unknown field {name_or_index!r}; fields: "
                f"{[f.name for f in self._fields]}") from None

    def offset_of(self, name_or_index: "str | int") -> int:
        """Byte offset of a field inside the packed tuple."""
        return self._fields[self.field_index(name_or_index)].offset

    # -- (de)serialization -----------------------------------------------
    def pack(self, values: tuple) -> bytes:
        """Pack a Python tuple into its wire representation."""
        try:
            return self._struct.pack(*values)
        except struct.error as exc:
            raise SchemaError(
                f"tuple {values!r} does not match schema "
                f"{[f.name for f in self._fields]}: {exc}") from None

    def pack_into(self, buffer: bytearray, offset: int,
                  values: tuple) -> None:
        """Pack a tuple directly into ``buffer`` at ``offset``."""
        try:
            self._struct.pack_into(buffer, offset, *values)
        except struct.error as exc:
            raise SchemaError(
                f"tuple {values!r} does not match schema: {exc}") from None

    def _batch_struct(self, count: int) -> struct.Struct:
        compiled = self._batch_structs.get(count)
        if compiled is None:
            compiled = struct.Struct("<" + self._codes * count)
            if len(self._batch_structs) < 64:
                self._batch_structs[count] = compiled
        return compiled

    def pack_many_into(self, buffer: bytearray, offset: int,
                       tuples) -> None:
        """Pack a sequence of tuples contiguously into ``buffer`` with one
        ``struct`` call — the amortization behind the batched push path."""
        count = len(tuples)
        if count == 1:
            self.pack_into(buffer, offset, tuples[0])
            return
        try:
            self._batch_struct(count).pack_into(
                buffer, offset, *chain.from_iterable(tuples))
        except struct.error as exc:
            raise SchemaError(
                f"batch of {count} tuples does not match schema: "
                f"{exc}") from None

    def unpack(self, data: "bytes | bytearray | memoryview") -> tuple:
        """Unpack one tuple from exactly ``tuple_size`` bytes."""
        try:
            return self._struct.unpack(data)
        except struct.error as exc:
            raise SchemaError(f"cannot unpack tuple: {exc}") from None

    def unpack_from(self, buffer, offset: int = 0) -> tuple:
        """Unpack one tuple from ``buffer`` starting at ``offset``."""
        try:
            return self._struct.unpack_from(buffer, offset)
        except struct.error as exc:
            raise SchemaError(f"cannot unpack tuple: {exc}") from None

    def unpack_many(self, buffer, count: int, offset: int = 0) -> list[tuple]:
        """Unpack ``count`` consecutive tuples (a segment payload)."""
        size = self._struct.size
        span = count * size
        if offset or len(buffer) != span:
            buffer = memoryview(buffer)[offset:offset + span]
        # iter_unpack walks the whole payload in C, one call per segment.
        return list(self._iter_unpack(buffer))

    def unpack_rows(self, buffer) -> list[tuple]:
        """Unpack every tuple in ``buffer`` — the target-side drain hot
        path. ``buffer`` must hold a whole number of packed tuples (a
        segment's used payload always does); unlike :meth:`unpack_many`
        there is no count bookkeeping or slicing, just one C call."""
        try:
            return list(self._iter_unpack(buffer))
        except struct.error as exc:
            raise SchemaError(
                f"cannot unpack {len(buffer)} bytes as "
                f"{self.tuple_size}-byte tuples: {exc}") from None

    def row_views(self, buffer) -> list[memoryview]:
        """Split ``buffer`` into one zero-copy memoryview per packed tuple.

        The views alias ``buffer``'s memory — for views handed out by
        ``consume_bytes`` the ring-segment lifetime rules apply (valid
        only until the consuming process yields back to the simulator).
        """
        size = self._struct.size
        view = buffer if isinstance(buffer, memoryview) else memoryview(buffer)
        span = len(view)
        if span % size:
            raise SchemaError(
                f"cannot split {span} bytes into {size}-byte rows")
        return [view[offset:offset + size]
                for offset in range(0, span, size)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        cols = ", ".join(f"{f.name}:{f.dtype.name}" for f in self._fields)
        return f"<Schema [{cols}] size={self.tuple_size}>"
