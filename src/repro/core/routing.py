"""Tuple routing for shuffle flows (paper Section 4.2.1).

Three ways to route a tuple to a target:

1. a *shuffle key*: DFI hashes the key field (default);
2. a *routing function* supplied by the application — e.g. the radix hash
   partitioning used by the distributed radix join, or range partitioning;
3. *direct* routing: the application names the target index on each push.

All of them resolve to a target index in ``[0, target_count)``.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import FlowError
from repro.core.schema import Schema

#: A routing function maps (tuple, target_count) -> target index.
RoutingFunction = Callable[[tuple, int], int]


def _fibonacci_hash_u64(value: int) -> int:
    """Cheap 64-bit mixer (Fibonacci hashing) for key-based shuffling.

    The product's *high* half is returned: the low bits of ``key * odd``
    depend only on the key's low bits, which would make power-of-two
    modulo partitioning degenerate for structured keys.
    """
    return (((value & (2 ** 64 - 1)) * 0x9E3779B97F4A7C15)
            & (2 ** 64 - 1)) >> 32


def key_hash_router(schema: Schema, key: "str | int") -> RoutingFunction:
    """The default router: hash the key field, modulo the target count."""
    index = schema.field_index(key)

    def route(values: tuple, target_count: int) -> int:
        key_value = values[index]
        if isinstance(key_value, int):
            return _fibonacci_hash_u64(key_value) % target_count
        return hash(key_value) % target_count

    def route_many(tuples, target_count: int) -> list[list]:
        """Partition a whole batch at once — the hash is inlined and the
        per-group ``append`` is pre-bound, saving two function calls per
        tuple on the batched push path.

        Produces exactly the same partitions as ``route``: integer keys
        take the Fibonacci-hash path (the ``TypeError`` fallback replaces
        the per-tuple ``isinstance`` — free for the all-int common case),
        and for power-of-two target counts the modulo folds into a bit
        mask (``x % n == x & (n - 1)`` for the non-negative hash)."""
        groups: list[list] = [[] for _ in range(target_count)]
        appends = [group.append for group in groups]
        mask = 2 ** 64 - 1
        mult = 0x9E3779B97F4A7C15
        if target_count & (target_count - 1) == 0:
            low = target_count - 1
            for values in tuples:
                key_value = values[index]
                try:
                    appends[((key_value & mask) * mult & mask) >> 32
                            & low](values)
                except TypeError:
                    appends[hash(key_value) % target_count](values)
        else:
            for values in tuples:
                key_value = values[index]
                try:
                    appends[(((key_value & mask) * mult & mask) >> 32)
                            % target_count](values)
                except TypeError:
                    appends[hash(key_value) % target_count](values)
        return groups

    compiled = schema.compiled_route_many(index, route_many)
    route.route_many = compiled if compiled is not None else route_many
    return route


def radix_router(schema: Schema, key: "str | int", bits: int,
                 shift: int = 0) -> RoutingFunction:
    """Radix partitioning: route on ``bits`` bits of the key after
    ``shift`` — the partition function of the distributed radix join."""
    if bits <= 0:
        raise FlowError("radix router needs a positive number of bits")
    index = schema.field_index(key)
    mask = (1 << bits) - 1

    def route(values: tuple, target_count: int) -> int:
        return ((values[index] >> shift) & mask) % target_count

    def route_many(tuples, target_count: int) -> list[list]:
        groups: list[list] = [[] for _ in range(target_count)]
        appends = [group.append for group in groups]
        for values in tuples:
            appends[((values[index] >> shift) & mask) % target_count](values)
        return groups

    route.route_many = route_many
    return route


def range_router(schema: Schema, key: "str | int",
                 boundaries: list[int]) -> RoutingFunction:
    """Range partitioning: target *i* receives keys < ``boundaries[i]``;
    the last target receives the rest. Boundaries must be sorted."""
    if sorted(boundaries) != list(boundaries):
        raise FlowError("range boundaries must be sorted ascending")
    index = schema.field_index(key)

    def route(values: tuple, target_count: int) -> int:
        if target_count != len(boundaries) + 1:
            raise FlowError(
                f"range router built for {len(boundaries) + 1} targets, "
                f"flow has {target_count}")
        key_value = values[index]
        for i, bound in enumerate(boundaries):
            if key_value < bound:
                return i
        return len(boundaries)

    return route


def round_robin_router() -> RoutingFunction:
    """Stateful round-robin distribution (ignores tuple contents)."""
    state = {"next": 0}

    def route(_values: tuple, target_count: int) -> int:
        target = state["next"] % target_count
        state["next"] = target + 1
        return target

    return route
