"""Low-level remote-ring writers used by replicate flows.

Two synchronization strategies, mirroring the shuffle-flow channel designs
(paper Sections 5.2 / 5.3):

* :class:`FooterRingWriter` — bandwidth protocol: pipelined footer pre-read
  of segment *n+1* with the write of *n*, random-backoff polling on a full
  ring, selective signaling;
* :class:`CreditRingWriter` — latency protocol: a target-side consumed
  counter read asynchronously when the local credit estimate runs low.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common import config as _config
from repro.common.errors import FlowTimeoutError
from repro.core.backoff import traced_backoff
from repro.core.registry import RingHandle
from repro.core.segment import (
    FOOTER_SIZE,
    footer_consumable,
    pack_footer,
    pack_footer_into,
)
from repro.rdma.nic import get_nic
from repro.simnet.congestion import stall_is_congestion

if TYPE_CHECKING:
    from repro.simnet.node import Node


def _congestion_grace(node: "Node", remote_id: int, metrics) -> bool:
    """A writer whose backoff budget ran out is forgiven while the path to
    the remote ring is visibly congestion-throttled: the ring is full
    because the fabric is slow, not because the peer went silent, so
    raising ``FlowTimeoutError`` would misreport congestion as failure.
    Throttle state self-clears (queues drain, rates recover), so grace is
    bounded — once the path looks healthy again the very next exhausted
    round raises."""
    remote = node.cluster.node(remote_id)
    if not stall_is_congestion(node, remote):
        return False
    if metrics is not None:
        metrics.inc("core.congestion_grace")
    return True


class FooterRingWriter:
    """Writes whole segment slots to a remote ring, footer-synchronized."""

    def __init__(self, node: "Node", handle: RingHandle,
                 tag: tuple, signal_interval: int = 16,
                 max_retries: "int | None" = None) -> None:
        self.node = node
        self.env = node.env
        nic = get_nic(node)
        self.qp = nic.create_qp(node.cluster.node(handle.node_id))
        self._scratch = nic.register_memory(FOOTER_SIZE)
        self.handle = handle
        self.slot_size = handle.segment_size + FOOTER_SIZE
        self._rng = node.backoff_rng
        self._max_retries = max_retries
        self._remote_index = 0
        self._pending_read = None
        self._signal_interval = signal_interval
        self._since_signal = 0
        self._signal_wr = None
        self.segments_written = 0
        # Doorbell trains (see BandwidthSourceChannel): one windowed
        # footer read proves a half-ring of slots writable at once.
        self._train_window = max(1, handle.segment_count // 2)
        self._window_left = 0
        self._pending_window_read = None
        #: Observability registry of the owning node (``None`` when the
        #: plane is off — one attribute check per guarded site).
        self._metrics = node.metrics
        self._causal = node.causal
        self._flow = tag[0]
        # Replicate passes (flow, source_index, target_index); tests may
        # construct writers with a bare (flow,) tag.
        self._tid = (f"r{tag[1]}->t{tag[2]}" if len(tag) >= 3
                     else f"r{tag[0]}")
        # Steady-state event elision (see BandwidthSourceChannel): fuse
        # doorbell trains into macro-events when telemetry is off and
        # both ends share a shard lane; fault/congestion planes are
        # re-checked per flush inside ``post_write_train_fused``.
        target_node = node.cluster.node(handle.node_id)
        self._fused = (_config.FASTPATH_ENABLED
                       and self._metrics is None
                       and (node.env.shard_count == 1
                            or node._shard == target_node._shard))

    def write_segment(self, payload: bytes, flags: int, seq: int,
                      source_index: int = 0):
        """Generator: transfer one segment into the next remote slot,
        synchronizing on its writability first.

        Full segments go out as one contiguous payload+footer write.
        Partial segments (final flushes, close markers) write only the
        used payload followed by a separate footer write at the fixed
        end-of-segment position — RC per-QP ordering keeps the footer
        landing strictly after the payload.
        """
        # A windowed proof from a preceding train covers this slot; the
        # pipelined window read goes stale once the index advances.
        self._pending_window_read = None
        if self._window_left > 0:
            self._window_left -= 1
        else:
            yield from self._ensure_writable()
        if (self._signal_wr is not None
                and self._since_signal >= self._signal_interval):
            if not self._signal_wr.done.triggered:
                yield self._signal_wr.done
            self._signal_wr = None
            self._since_signal = 0
            self.qp.send_cq.poll(max_entries=64)
        signaled = self._since_signal + 1 >= self._signal_interval
        remote_offset = self._remote_index * self.slot_size
        footer = pack_footer(len(payload), flags, seq, source_index)
        if len(payload) == self.handle.segment_size:
            # Gather post: payload + footer leave as one wire write with
            # no concatenation copy.
            wr = self.qp.post_write([payload, footer], self.handle.rkey,
                                    remote_offset, signaled=signaled)
        else:
            if payload:
                self.qp.post_write(payload, self.handle.rkey,
                                   remote_offset, signaled=False)
            wr = self.qp.post_write(
                footer, self.handle.rkey,
                remote_offset + self.handle.segment_size, signaled=signaled)
        if signaled:
            self._signal_wr = wr
        self._since_signal += 1
        self.segments_written += 1
        if self._metrics is not None:
            self._metrics.inc("core.segments_written")
        next_index = (self._remote_index + 1) % self.handle.segment_count
        self._pending_read = self.qp.post_read(
            self._scratch, 0, self.handle.rkey,
            next_index * self.slot_size + self.handle.segment_size,
            FOOTER_SIZE, signaled=False)
        self._remote_index = next_index
        return wr

    def write_segments(self, segments, source_index: int = 0):
        """Generator: transfer a train of *full* segments, one doorbell
        ring per windowed chunk.

        ``segments`` is a sequence of ``(payload, flags, seq)`` tuples
        whose payloads each fill a whole segment (partial segments and
        close markers must go through :meth:`write_segment`). Each chunk
        is bounded by the writability window and the selective-signaling
        interval, so at most the last WQE of a chunk is signaled and one
        footer read proves a half-ring of slots. Returns the last posted
        work request.
        """
        handle = self.handle
        rkey = handle.rkey
        slot_size = self.slot_size
        segment_size = handle.segment_size
        segment_count = handle.segment_count
        interval = self._signal_interval
        post_write = self.qp.post_write
        wr = None
        index = 0
        total = len(segments)
        while index < total:
            if (self._signal_wr is not None
                    and self._since_signal >= interval):
                if not self._signal_wr.done.triggered:
                    yield self._signal_wr.done
                self._signal_wr = None
                self._since_signal = 0
                self.qp.send_cq.poll(max_entries=64)
            if not self._window_left:
                yield from self._acquire_window()
            take = min(self._window_left, total - index,
                       interval - self._since_signal)
            # Per-chunk state lives in locals across the inner loop; the
            # chunk bound guarantees only its last WQE can be signaled.
            remote_index = self._remote_index
            since_signal = self._since_signal
            for payload, flags, seq in segments[index:index + take]:
                since_signal += 1
                signaled = since_signal >= interval
                wr = post_write(
                    [payload,
                     pack_footer(segment_size, flags, seq, source_index)],
                    rkey, remote_index * slot_size, signaled=signaled,
                    doorbell=False)
                if signaled:
                    self._signal_wr = wr
                remote_index += 1
                if remote_index == segment_count:
                    remote_index = 0
            self._remote_index = remote_index
            self._since_signal = since_signal
            self.segments_written += take
            self._window_left -= take
            index += take
            if self._metrics is not None:
                self._metrics.inc("core.segments_written", take)
            self.qp.ring_doorbell(fused=self._fused)
            # Any per-segment pre-read refers to a slot this train wrote.
            self._pending_read = None
            if self._window_left == 0:
                self._pending_window_read = self._read_footer_ahead(
                    self._train_window)
        return wr

    def _acquire_window(self):
        """Generator: make ``_window_left`` positive with one footer read
        ``W - 1`` slots ahead (the windowed-writability proof — see
        ``BandwidthSourceChannel._acquire_train_window``)."""
        window = self._train_window
        wr = self._pending_window_read
        self._pending_window_read = None
        if wr is None:
            wr = self._pending_read
            self._pending_read = None
            if wr is not None:
                window = 1
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("core.preread_hits" if wr is not None
                        else "core.preread_misses")
        if wr is None:
            wr = self._read_footer_ahead(window)
        attempt = 0
        while True:
            if wr.done.triggered:
                data = wr.done.value
            else:
                wait_from = self.env.now
                data = yield wr.done
                if self._causal is not None:
                    self._causal.edge(self.env.now, wait_from, "credit_stall",
                                      self.node.node_id, self._tid,
                                      self._flow)
            if not footer_consumable(data):
                self._window_left = window
                return
            if (self._max_retries is not None
                    and attempt >= self._max_retries
                    and not _congestion_grace(self.node,
                                              self.handle.node_id, metrics)):
                raise FlowTimeoutError(
                    f"remote ring on node {self.handle.node_id} still "
                    f"full after {attempt} backoff rounds")
            if metrics is not None:
                metrics.inc("core.backoff_rounds")
            yield self.env.timeout(traced_backoff(
                self._rng, attempt, self._causal, self.node.node_id,
                self._tid, self._flow))
            attempt += 1
            window = self._train_window
            wr = self._read_footer_ahead(window)

    def _read_footer_ahead(self, window: int):
        slot = (self._remote_index + window - 1) % self.handle.segment_count
        return self.qp.post_read(
            self._scratch, 0, self.handle.rkey,
            slot * self.slot_size + self.handle.segment_size,
            FOOTER_SIZE, signaled=False)

    def _ensure_writable(self):
        wr = self._pending_read
        self._pending_read = None
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("core.preread_hits" if wr is not None
                        else "core.preread_misses")
        if wr is None:
            wr = self._read_footer()
        attempt = 0
        while True:
            if wr.done.triggered:
                data = wr.done.value
            else:
                wait_from = self.env.now
                data = yield wr.done
                if self._causal is not None:
                    self._causal.edge(self.env.now, wait_from, "credit_stall",
                                      self.node.node_id, self._tid,
                                      self._flow)
            if not footer_consumable(data):
                return
            if (self._max_retries is not None
                    and attempt >= self._max_retries
                    and not _congestion_grace(self.node,
                                              self.handle.node_id, metrics)):
                raise FlowTimeoutError(
                    f"remote ring on node {self.handle.node_id} still "
                    f"full after {attempt} backoff rounds")
            if metrics is not None:
                metrics.inc("core.backoff_rounds")
            yield self.env.timeout(traced_backoff(
                self._rng, attempt, self._causal, self.node.node_id,
                self._tid, self._flow))
            attempt += 1
            wr = self._read_footer()

    def _read_footer(self):
        offset = (self._remote_index * self.slot_size
                  + self.handle.segment_size)
        return self.qp.post_read(self._scratch, 0, self.handle.rkey, offset,
                                 FOOTER_SIZE, signaled=False)


class CreditRingWriter:
    """Writes segment slots to a remote ring under credit flow control."""

    def __init__(self, node: "Node", handle: RingHandle, tag: tuple,
                 credit_threshold: int,
                 max_retries: "int | None" = None) -> None:
        if handle.credit_rkey is None:
            raise ValueError("credit writer needs a credit counter handle")
        self.node = node
        self.env = node.env
        nic = get_nic(node)
        self.qp = nic.create_qp(node.cluster.node(handle.node_id))
        self._scratch = nic.register_memory(8)
        self.handle = handle
        self.slot_size = handle.segment_size + FOOTER_SIZE
        self._rng = node.backoff_rng
        self._max_retries = max_retries
        self._threshold = credit_threshold
        self._sent = 0
        self._cached_consumed = 0
        self._pending_read = None
        self.segments_written = 0
        self._metrics = node.metrics
        self._causal = node.causal
        self._flow = tag[0]
        # Replicate passes (flow, source_index, target_index); tests may
        # construct writers with a bare (flow,) tag.
        self._tid = (f"r{tag[1]}->t{tag[2]}" if len(tag) >= 3
                     else f"r{tag[0]}")
        self._credit_read_issued = 0.0

    @property
    def _available(self) -> int:
        return self.handle.segment_count - (self._sent
                                            - self._cached_consumed)

    def write_segment(self, payload: bytes, flags: int, seq: int,
                      source_index: int = 0):
        """Generator: transfer one segment after acquiring a credit."""
        yield from self._acquire_credit()
        remote_offset = ((self._sent % self.handle.segment_count)
                         * self.slot_size)
        footer = pack_footer(len(payload), flags, seq, source_index)
        if len(payload) == self.handle.segment_size:
            wr = self.qp.post_write([payload, footer], self.handle.rkey,
                                    remote_offset, signaled=False)
        else:
            if payload:
                self.qp.post_write(payload, self.handle.rkey,
                                   remote_offset, signaled=False)
            wr = self.qp.post_write(
                footer, self.handle.rkey,
                remote_offset + self.handle.segment_size, signaled=False)
        self._sent += 1
        self.segments_written += 1
        if self._metrics is not None:
            self._metrics.inc("core.segments_written")
        if self._available <= self._threshold and self._pending_read is None:
            self._refresh_async()
        return wr

    def _refresh_async(self) -> None:
        if self._metrics is not None:
            self._credit_read_issued = self.env.now
        self._pending_read = self.qp.post_read(
            self._scratch, 0, self.handle.credit_rkey,
            self.handle.credit_offset, 8, signaled=False)

    def _acquire_credit(self):
        metrics = self._metrics
        pending = self._pending_read
        if pending is not None and pending.done.triggered:
            self._apply(pending.done.value)
            self._pending_read = None
            if metrics is not None:
                metrics.observe("core.credit_rtt",
                                self.env.now - self._credit_read_issued)
        attempt = 0
        while self._available <= 0:
            if metrics is not None:
                metrics.inc("core.credit_stalls")
            if self._pending_read is None:
                self._refresh_async()
            wait_from = self.env.now
            data = yield self._pending_read.done
            if self._causal is not None and self.env.now > wait_from:
                self._causal.edge(self.env.now, wait_from, "credit_stall",
                                  self.node.node_id, self._tid, self._flow)
            self._pending_read = None
            self._apply(data)
            if metrics is not None:
                metrics.observe("core.credit_rtt",
                                self.env.now - self._credit_read_issued)
            if self._available <= 0:
                if (self._max_retries is not None
                        and attempt >= self._max_retries
                        and not _congestion_grace(
                            self.node, self.handle.node_id, metrics)):
                    raise FlowTimeoutError(
                        f"no credit from node {self.handle.node_id} "
                        f"after {attempt} backoff rounds")
                if metrics is not None:
                    metrics.inc("core.backoff_rounds")
                yield self.env.timeout(traced_backoff(
                    self._rng, attempt, self._causal, self.node.node_id,
                    self._tid, self._flow))
                attempt += 1

    def _apply(self, data: bytes) -> None:
        consumed = int.from_bytes(data, "little")
        if consumed > self._cached_consumed:
            self._cached_consumed = consumed


def build_slot(payload: bytes, segment_size: int, flags: int, seq: int,
               source_index: int = 0) -> bytes:
    """Assemble one wire slot: payload, zero padding, 16-byte footer."""
    used = len(payload)
    if used > segment_size:
        raise ValueError(
            f"payload of {used} bytes exceeds segment size "
            f"{segment_size}")
    # One allocation: a pre-zeroed slot, payload and footer packed in place.
    slot = bytearray(segment_size + FOOTER_SIZE)
    slot[:used] = payload
    pack_footer_into(slot, segment_size, used, flags, seq, source_index)
    return bytes(slot)
