"""Shared ring-full backoff policy for flow writers and channels.

Exponential backoff with jitter: retry round ``attempt`` sleeps
``BASE * 2**min(attempt, MAX_EXPONENT) * (1 + U[0, 1))`` nanoseconds.
The jitter draw comes from the caller's RNG; flow code passes the
*per-node* deterministic stream (``Node.backoff_rng``), so two identical
runs schedule bit-identical backoff events no matter how many channels
on the node share the stream — the draws interleave in event order,
which the kernel makes deterministic.
"""

from __future__ import annotations

import random

#: First-round backoff delay (ns) when a remote ring polls full.
FULL_RING_BACKOFF_BASE = 400.0
#: Cap the exponential at BASE * 2**_MAX_EXPONENT (25.6 us): beyond that,
#: longer sleeps only delay failure detection without relieving pressure.
_MAX_EXPONENT = 6


def full_ring_backoff(rng: random.Random, attempt: int) -> float:
    """Delay (ns) to sleep before re-polling a full remote ring."""
    return (FULL_RING_BACKOFF_BASE * (1 << min(attempt, _MAX_EXPONENT))
            * (1.0 + rng.random()))


def traced_backoff(rng: random.Random, attempt: int, causal,
                   node_id: int, tid: str,
                   flow: "str | None" = None) -> float:
    """:func:`full_ring_backoff` plus a ``credit_stall`` causal edge for
    the sleep when causal observability is on (``causal`` is the caller's
    cached ``node.causal``, possibly ``None``). The RNG draw happens
    exactly as in the untraced path — same stream, same order — so the
    simulated timeline is unchanged by recording."""
    delay = full_ring_backoff(rng, attempt)
    if causal is not None:
        causal.sleep_edge(delay, "credit_stall", node_id, tid, flow)
    return delay
