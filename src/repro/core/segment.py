"""Segment rings: the memory layout of DFI buffers (paper Figure 5).

A ring is one consecutive registered memory region split into fixed-size
*segments*. Each segment carries a small footer placed **after** its
payload::

    | payload (segment_size bytes) | used u32 | flags u32 | seq u64 |

Because the RNIC commits DMA bytes in increasing address order, a footer
whose flags read ``CONSUMABLE`` proves the entire payload before it has
landed — DFI's checksum-free synchronization trick (Section 5.2).
"""

from __future__ import annotations

import struct
from typing import NamedTuple

from repro.common.errors import FlowError
from repro.rdma.memory import MemoryRegion

#: Footer wire format: used bytes (u32), flags (u32), sequence number (u64).
FOOTER_STRUCT = struct.Struct("<IIQ")
FOOTER_SIZE = FOOTER_STRUCT.size  # 16 bytes

#: Footer flag: the segment holds data ready for the target to consume.
FLAG_CONSUMABLE = 0x1
#: Footer flag: the source closed the flow; no data follows this segment.
FLAG_CLOSED = 0x2
#: Footer flag: the source aborted the flow (fault-tolerance extension,
#: paper Section 7 future work); targets surface FlowAbortedError.
FLAG_ABORTED = 0x4

#: Replicate flows stamp the sending source's index into the upper half of
#: the flags word (targets need it for per-source credit/NACK back-flow).
_SOURCE_SHIFT = 16
_FLAG_MASK = (1 << _SOURCE_SHIFT) - 1

#: The released-segment footer (used=0, flags=0, seq=0): what a target
#: writes back over a consumed segment's footer to mark it writable.
BLANK_FOOTER = bytes(FOOTER_SIZE)


def footer_consumable(data) -> bool:
    """Fast CONSUMABLE test on 16 raw footer bytes — no decode.

    The flags word is a little-endian u32 at byte 4 and every protocol
    flag lives in its low byte, so one indexed load answers the only
    question the writability/poll hot paths ask. Full decodes go through
    :func:`unpack_footer`.
    """
    return bool(data[4] & FLAG_CONSUMABLE)


class Footer(NamedTuple):
    """Decoded segment footer.

    A ``NamedTuple`` rather than a dataclass: one is decoded per footer
    poll on the consume path and per pre-read on the flush path, and
    tuple construction runs in C (a frozen dataclass pays three
    ``object.__setattr__`` calls per instance)."""

    used: int
    flags: int
    seq: int

    @property
    def consumable(self) -> bool:
        return bool(self.flags & FLAG_CONSUMABLE)

    @property
    def closed(self) -> bool:
        return bool(self.flags & FLAG_CLOSED)

    @property
    def aborted(self) -> bool:
        return bool(self.flags & FLAG_ABORTED)

    @property
    def source_index(self) -> int:
        """Index of the sending source (replicate flows only)."""
        return self.flags >> _SOURCE_SHIFT


#: Memoized footers for seq-0 encodings. The hot repeats are the segment
#: release in ``TargetChannel.poll`` (``pack_footer(0, 0, 0)`` once per
#: consumed segment) and close/abort markers; footers with a live sequence
#: number are packed via :func:`pack_footer_into` straight into the staging
#: buffer instead.
_FOOTER_CACHE: dict[tuple[int, int, int], bytes] = {}
_FOOTER_CACHE_CAP = 1024


def pack_footer(used: int, flags: int, seq: int = 0,
                source_index: int = 0) -> bytes:
    """Encode a footer to its 16-byte wire form."""
    if seq == 0:
        key = (used, flags, source_index)
        footer = _FOOTER_CACHE.get(key)
        if footer is None:
            footer = FOOTER_STRUCT.pack(used,
                                        (flags & _FLAG_MASK)
                                        | (source_index << _SOURCE_SHIFT),
                                        0)
            if len(_FOOTER_CACHE) < _FOOTER_CACHE_CAP:
                _FOOTER_CACHE[key] = footer
        return footer
    return FOOTER_STRUCT.pack(used,
                              (flags & _FLAG_MASK)
                              | (source_index << _SOURCE_SHIFT),
                              seq)


def pack_footer_into(buffer: bytearray, offset: int, used: int, flags: int,
                     seq: int = 0, source_index: int = 0) -> None:
    """Encode a footer directly into ``buffer`` at ``offset`` — no 16-byte
    intermediate object (the full-segment flush hot path)."""
    FOOTER_STRUCT.pack_into(buffer, offset, used,
                            (flags & _FLAG_MASK)
                            | (source_index << _SOURCE_SHIFT),
                            seq)


def unpack_footer(data: "bytes | bytearray | memoryview") -> Footer:
    """Decode a footer from 16 bytes."""
    return Footer._make(FOOTER_STRUCT.unpack(data))


class SegmentRing:
    """A segment ring laid out inside one registered memory region.

    Used for both source-side send rings and target-side receive rings;
    only the access pattern differs (see ``shuffle.py``).
    """

    def __init__(self, region: MemoryRegion, segment_count: int,
                 segment_size: int) -> None:
        if segment_count < 2:
            raise FlowError("a ring needs at least 2 segments to pipeline")
        if segment_size <= 0:
            raise FlowError("segment size must be positive")
        self.region = region
        self.segment_count = segment_count
        self.segment_size = segment_size
        self.slot_size = segment_size + FOOTER_SIZE
        required = segment_count * self.slot_size
        if region.size < required:
            raise FlowError(
                f"region of {region.size} B too small for "
                f"{segment_count} x {self.slot_size} B segments")

    @classmethod
    def allocate(cls, nic, segment_count: int, segment_size: int) -> "SegmentRing":
        """Register a fresh memory region sized for the ring on ``nic``."""
        size = segment_count * (segment_size + FOOTER_SIZE)
        return cls(nic.register_memory(size), segment_count, segment_size)

    # -- layout ----------------------------------------------------------
    def payload_offset(self, index: int) -> int:
        """Byte offset of segment ``index``'s payload within the region."""
        return self._check(index) * self.slot_size

    def footer_offset(self, index: int) -> int:
        """Byte offset of segment ``index``'s footer within the region."""
        return self._check(index) * self.slot_size + self.segment_size

    def _check(self, index: int) -> int:
        if not 0 <= index < self.segment_count:
            raise FlowError(
                f"segment index {index} out of range "
                f"[0, {self.segment_count})")
        return index

    @property
    def total_bytes(self) -> int:
        """Memory footprint of the ring (the §6.1.4 accounting unit)."""
        return self.segment_count * self.slot_size

    # -- footer access (local memory) ------------------------------------
    def read_footer(self, index: int) -> Footer:
        return unpack_footer(
            self.region.view(self.footer_offset(index), FOOTER_SIZE))

    def write_footer(self, index: int, used: int, flags: int,
                     seq: int = 0) -> None:
        self.region.write(self.footer_offset(index),
                          pack_footer(used, flags, seq))

    def payload_view(self, index: int, length: int):
        """Zero-copy view of the first ``length`` payload bytes of a
        segment."""
        if length > self.segment_size:
            raise FlowError(
                f"payload length {length} exceeds segment size "
                f"{self.segment_size}")
        return self.region.view(self.payload_offset(index), length)

    def payload_rows_view(self, index: int, used: int, row_size: int):
        """Zero-copy view of a segment body as a contiguous block of
        fixed-size rows — the columnar accessor behind the byte-mode
        consume path (``drain_bytes`` → ``consume_bytes`` → columnar
        folds).

        Downstream kernels reinterpret the block with whole-row struct
        formats, so the whole-row contract the sources maintain (every
        flush is a multiple of the tuple size) is enforced here rather
        than trusted: a torn row is a protocol bug and surfaces as a
        ``FlowError`` at the segment layer instead of a confusing struct
        error in a generated kernel. Footer layout is untouched — this is
        purely a typed window over the payload bytes.
        """
        if used % row_size:
            raise FlowError(
                f"segment {index} holds {used} bytes, not a whole number "
                f"of {row_size}-byte rows")
        if used > self.segment_size:
            raise FlowError(
                f"payload length {used} exceeds segment size "
                f"{self.segment_size}")
        return self.region.view(self.payload_offset(index), used)

    def next_index(self, index: int) -> int:
        """Ring successor of ``index``."""
        return (index + 1) % self.segment_count

    def __repr__(self) -> str:
        return (f"<SegmentRing {self.segment_count} x {self.segment_size} B "
                f"(+{FOOTER_SIZE} B footer)>")
