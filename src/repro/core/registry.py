"""The central flow registry (paper Section 3.2).

Flow metadata is published here at initialization — the role the paper
assigns to a master node. Besides descriptor lookup the registry provides
the two rendezvous services flow setup needs:

* *ring publication*: each target allocates its receive rings and publishes
  their remote handles; sources block until the handle for their channel
  appears;
* the *tuple sequencer*: for globally-ordered replicate flows the registry
  hosts a u64 counter in registered memory on the master node, which
  sources bump with RDMA fetch-and-add to stamp segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import RegistryError
from repro.core.flowdef import FlowDescriptor, FlowType, Ordering
from repro.rdma.nic import get_nic
from repro.rdma.qp import MulticastGroup
from repro.simnet.cluster import Cluster
from repro.simnet.sync import Signal


@dataclass(frozen=True)
class RingHandle:
    """Remote handle of a target-side ring published for one channel."""

    node_id: int
    rkey: int
    segment_count: int
    segment_size: int
    #: rkey of the auxiliary region (credit counters), if the flow uses one.
    credit_rkey: int | None = None
    #: byte offset of this channel's credit counter inside the credit region.
    credit_offset: int = 0


@dataclass(frozen=True)
class SequencerHandle:
    """Remote handle of a flow's global sequence counter."""

    node_id: int
    rkey: int
    offset: int


class FlowRegistry:
    """Central metadata store for all flows of one cluster."""

    def __init__(self, cluster: Cluster, master_node_id: int = 0) -> None:
        self.cluster = cluster
        self.master_node = cluster.node(master_node_id)
        self._flows: dict[str, FlowDescriptor] = {}
        self._rings: dict[tuple[str, int, int], RingHandle] = {}
        self._ring_signals: dict[tuple[str, int, int], Signal] = {}
        self._sequencers: dict[str, SequencerHandle] = {}
        self._mcast_groups: dict[str, MulticastGroup] = {}
        self._backchannel: dict[tuple[str, int, int], Any] = {}
        self._backchannel_signals: dict[tuple[str, int, int], Signal] = {}
        self._ready_targets: dict[str, set[int]] = {}
        self._ready_signals: dict[str, Signal] = {}
        self._aborted: set[str] = set()

    # -- flow lifecycle -----------------------------------------------------
    def initialize_flow(self, descriptor: FlowDescriptor) -> FlowDescriptor:
        """Publish a new flow. Names are unique."""
        if descriptor.name in self._flows:
            raise RegistryError(f"flow {descriptor.name!r} already exists")
        for endpoint in (*descriptor.sources, *descriptor.targets):
            if endpoint.node_id >= self.cluster.node_count:
                raise RegistryError(
                    f"endpoint {endpoint} references node "
                    f"{endpoint.node_id}, but the cluster has only "
                    f"{self.cluster.node_count} nodes")
        self._flows[descriptor.name] = descriptor
        if descriptor.options.congestion is not None:
            # Congestion policy is a fabric property: the first flow that
            # carries one installs it cluster-wide (idempotent for equal
            # configs, conflicting configs raise in install_congestion).
            self.cluster.install_congestion(descriptor.options.congestion)
        if descriptor.ordering is Ordering.GLOBAL:
            counter_region = get_nic(self.master_node).register_memory(8)
            self._sequencers[descriptor.name] = SequencerHandle(
                node_id=self.master_node.node_id,
                rkey=counter_region.rkey, offset=0)
        if (descriptor.flow_type is FlowType.REPLICATE
                and descriptor.options.multicast):
            self._mcast_groups[descriptor.name] = MulticastGroup(
                f"mcast:{descriptor.name}")
        return descriptor

    def descriptor(self, name: str) -> FlowDescriptor:
        """Look up a flow by name."""
        try:
            return self._flows[name]
        except KeyError:
            raise RegistryError(f"unknown flow {name!r}") from None

    def extend_targets(self, name: str, endpoint) -> int:
        """Elasticity (paper Section 7 future work): append a new target
        endpoint to a running shuffle flow. Returns the new target index.

        The new target opens with :meth:`ShuffleTarget.open` as usual;
        existing sources start routing to it after calling
        ``adopt_new_targets()``. Key-hash routing re-partitions the key
        space over the grown target set, so applications that need a
        stable partitioning must quiesce the flow first.
        """
        from dataclasses import replace
        from repro.core.flowdef import FlowType
        from repro.core.nodes import Endpoint

        descriptor = self.descriptor(name)
        if descriptor.flow_type is not FlowType.SHUFFLE:
            raise RegistryError(
                "runtime target extension is supported for shuffle flows")
        new_endpoint = Endpoint.parse(endpoint)
        if new_endpoint in descriptor.targets:
            raise RegistryError(
                f"{new_endpoint} is already a target of {name!r}")
        if new_endpoint.node_id >= self.cluster.node_count:
            raise RegistryError(
                f"endpoint {new_endpoint} outside the cluster")
        self._flows[name] = replace(
            descriptor, targets=(*descriptor.targets, new_endpoint))
        return len(descriptor.targets)

    def mark_flow_aborted(self, name: str) -> None:
        """Record that ``name`` was aborted. Targets opening *after* the
        abort (e.g. one adopted by ``extend_targets`` racing an abort)
        check this flag so they do not wait for ring traffic that will
        never come."""
        self.descriptor(name)  # validates the flow exists
        self._aborted.add(name)

    def flow_aborted(self, name: str) -> bool:
        """True once any endpoint aborted flow ``name``."""
        return name in self._aborted

    def flow_names(self) -> list[str]:
        return sorted(self._flows)

    def release_flow(self, name: str) -> None:
        """Drop every piece of registry state for a closed flow: the
        descriptor, ring/backchannel handles and rendezvous signals,
        readiness tracking, the abort flag, the multicast group, and the
        sequencer counter's registered memory on the master NIC.

        The registry is the one per-cluster store that outlives flows, so
        a long-running cluster cycling many flows (the 256-1024-node
        serving scenarios) must release them or these dicts grow without
        bound — ``tests/test_scale_memory.py`` pins this. Call after all
        endpoints have closed; releasing is idempotent-by-name only in
        the sense that an unknown flow raises (a double release is a
        lifecycle bug worth surfacing). The name becomes reusable."""
        self.descriptor(name)  # validates the flow exists
        del self._flows[name]
        self._aborted.discard(name)
        self._ready_targets.pop(name, None)
        self._ready_signals.pop(name, None)
        self._mcast_groups.pop(name, None)
        sequencer = self._sequencers.pop(name, None)
        if sequencer is not None:
            get_nic(self.cluster.node(sequencer.node_id)).deregister_memory(
                sequencer.rkey)
        # Deregister the target-side ring (and credit) regions behind the
        # published handles — the registry is the only place that still
        # knows them once the endpoints closed. Credit regions are shared
        # by every channel of one target, so dedupe by (node, rkey).
        regions: set[tuple[int, int]] = set()
        for key in [key for key in self._rings if key[0] == name]:
            handle = self._rings.pop(key)
            regions.add((handle.node_id, handle.rkey))
            if handle.credit_rkey is not None:
                regions.add((handle.node_id, handle.credit_rkey))
        for node_id, rkey in sorted(regions):
            get_nic(self.cluster.node(node_id)).deregister_memory(rkey)
        for table in (self._ring_signals, self._backchannel,
                      self._backchannel_signals):
            for key in [key for key in table if key[0] == name]:
                del table[key]
        # Source-side backchannel regions (multicast replicate credit/NACK
        # buffers) are owned by the source endpoints that registered them;
        # only the rendezvous info lived here.

    # -- ring rendezvous ---------------------------------------------------
    def _ring_signal(self, key: tuple[str, int, int]) -> Signal:
        signal = self._ring_signals.get(key)
        if signal is None:
            signal = Signal(self.cluster.env)
            self._ring_signals[key] = signal
        return signal

    def publish_ring(self, name: str, source_index: int, target_index: int,
                     handle: RingHandle) -> None:
        """Called by a target to announce the ring for one channel."""
        self.descriptor(name)  # validates the flow exists
        key = (name, source_index, target_index)
        if key in self._rings:
            raise RegistryError(f"ring for channel {key} already published")
        self._rings[key] = handle
        self._ring_signal(key).fire(handle)

    def wait_ring(self, name: str, source_index: int, target_index: int):
        """Generator: wait until the channel's ring handle is available."""
        key = (name, source_index, target_index)
        handle = self._rings.get(key)
        if handle is None:
            handle = yield self._ring_signal(key).wait()
        return handle

    def published_ring(self, name: str, source_index: int,
                       target_index: int) -> "RingHandle | None":
        """The channel's ring handle if already published, else ``None``
        (never blocks — used by abort paths that must not wait on targets
        that may never open)."""
        return self._rings.get((name, source_index, target_index))

    # -- generic back-channel rendezvous (replicate credit/NACK paths) ------
    def publish_backchannel(self, name: str, source_index: int,
                            target_index: int, info: Any) -> None:
        """Publish auxiliary per-channel setup info (e.g. the source-side
        credit/NACK region used by multicast replicate flows)."""
        key = (name, source_index, target_index)
        if key in self._backchannel:
            raise RegistryError(f"backchannel for {key} already published")
        self._backchannel[key] = info
        signal = self._backchannel_signals.get(key)
        if signal is None:
            signal = Signal(self.cluster.env)
            self._backchannel_signals[key] = signal
        signal.fire(info)

    def wait_backchannel(self, name: str, source_index: int,
                         target_index: int):
        """Generator: wait for the channel's auxiliary setup info."""
        key = (name, source_index, target_index)
        info = self._backchannel.get(key)
        if info is None:
            signal = self._backchannel_signals.get(key)
            if signal is None:
                signal = Signal(self.cluster.env)
                self._backchannel_signals[key] = signal
            info = yield signal.wait()
        return info

    # -- target readiness (multicast replicate rendezvous) ------------------
    def mark_target_ready(self, name: str, target_index: int) -> None:
        """Called by a target once it joined the multicast group and posted
        its receive requests; sources wait for all targets before sending."""
        descriptor = self.descriptor(name)
        ready = self._ready_targets.setdefault(name, set())
        if target_index in ready:
            raise RegistryError(
                f"target {target_index} of flow {name!r} already ready")
        ready.add(target_index)
        if len(ready) == descriptor.target_count:
            signal = self._ready_signals.get(name)
            if signal is None:
                signal = Signal(self.cluster.env)
                self._ready_signals[name] = signal
            signal.fire()

    def wait_all_targets(self, name: str):
        """Generator: wait until every target of ``name`` reported ready."""
        descriptor = self.descriptor(name)
        ready = self._ready_targets.get(name, set())
        if len(ready) < descriptor.target_count:
            signal = self._ready_signals.get(name)
            if signal is None:
                signal = Signal(self.cluster.env)
                self._ready_signals[name] = signal
            yield signal.wait()
        return None

    # -- sequencer ---------------------------------------------------------
    def sequencer(self, name: str) -> SequencerHandle:
        """Handle of the flow's global sequence counter."""
        try:
            return self._sequencers[name]
        except KeyError:
            raise RegistryError(
                f"flow {name!r} has no sequencer (not globally "
                f"ordered)") from None

    # -- multicast groups ----------------------------------------------------
    def multicast_group(self, name: str) -> MulticastGroup:
        """The flow's hardware multicast group."""
        try:
            return self._mcast_groups[name]
        except KeyError:
            raise RegistryError(
                f"flow {name!r} has no multicast group (replicate flows "
                f"with multicast=True only)") from None
