"""In-network aggregation for combiner flows (SHARP-style).

The paper names this as future work twice (Sections 4.2.3 and 6.1.3):
InfiniBand's SHARP protocol can aggregate inside the switch, so a
combiner flow's aggregate bandwidth is no longer capped by the target's
in-going link. This module implements that extension on the simulator's
switch:

* sources send their segments *to the switch* (uplink serialization plus
  half a wire latency — the packet never traverses the target's
  downlink);
* the switch folds every incoming segment into a running group-by table
  in hardware (no CPU is charged — SHARP is an ASIC feature) and
  periodically emits compact *partial-aggregate* segments to the target;
* the target folds the partials exactly like an end-host combiner folds
  raw tuples: SUM/COUNT partials add, MIN/MAX partials re-minimize.

The ``bench_ablation_sharp`` bench shows the headline effect: aggregated
sender bandwidth beyond the single-link limit of the paper's Fig. 9.
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import FlowError
from repro.core.combiner import _aggregator, _initial
from repro.core.flowdef import FLOW_END, FlowDescriptor, FlowType
from repro.core.registry import FlowRegistry
from repro.core.schema import Schema
from repro.core.segment import (
    FLAG_CLOSED,
    FLAG_CONSUMABLE,
    FOOTER_SIZE,
    SegmentRing,
    pack_footer,
)
from repro.core.shuffle import _RingWriteWaiter, segment_payload_size
from repro.rdma.nic import get_nic

#: The switch emits a partial-aggregate segment after folding this many
#: incoming segments (and always on flow close).
EMIT_INTERVAL_SEGMENTS = 8


class SwitchAggregator:
    """The switch-resident reduction engine of one combiner flow."""

    def __init__(self, registry: FlowRegistry,
                 descriptor: FlowDescriptor, ring: SegmentRing) -> None:
        spec = descriptor.aggregation
        schema = descriptor.schema
        self.registry = registry
        self.descriptor = descriptor
        self.env = registry.cluster.env
        self.fabric = registry.cluster.fabric
        self.target_node = registry.cluster.node(
            descriptor.targets[0].node_id)
        self._ring = ring
        self._write_index = 0
        self._schema = schema
        #: Partials travel as (group, value) pairs.
        self._partial_schema = Schema(
            ("group", schema.fields[schema.field_index(spec.group_by)].dtype),
            ("value", schema.fields[schema.field_index(spec.value)].dtype))
        self._group_index = schema.field_index(spec.group_by)
        self._value_index = schema.field_index(spec.value)
        self._fold = _aggregator(spec.op)
        self._op = spec.op
        self._table: dict = {}
        self._segments_folded = 0
        self._since_emit = 0
        self._closed_sources = 0
        self._finished = False
        #: Statistics: bytes entering the switch vs. leaving it.
        self.bytes_in = 0
        self.bytes_out = 0
        #: Segments dropped because the target ring overflowed (the
        #: hardware-queue-full condition; 0 in any sane configuration).
        self.overflow_drops = 0

    # -- source-facing side -------------------------------------------------
    def on_segment(self, tuples: list[tuple], closed: bool,
                   wire_bytes: int) -> None:
        """Fold one arrived segment (called at its switch-arrival time)."""
        if self._finished:
            raise FlowError("segment arrived after the flow finished")
        self.bytes_in += wire_bytes
        for values in tuples:
            group = values[self._group_index]
            value = values[self._value_index]
            if group in self._table:
                self._table[group] = self._fold(self._table[group], value)
            else:
                self._table[group] = _initial(self._op, value)
        self._segments_folded += 1
        self._since_emit += 1
        if closed:
            self._closed_sources += 1
        all_closed = self._closed_sources == self.descriptor.source_count
        if all_closed:
            self._finished = True
            self._emit(FLAG_CLOSED)
        elif self._since_emit >= EMIT_INTERVAL_SEGMENTS:
            self._emit(0)

    # -- target-facing side ----------------------------------------------
    def _emit(self, extra_flags: int) -> None:
        """Forward the accumulated partials to the target ring."""
        partials = sorted(self._table.items())
        self._table.clear()
        self._since_emit = 0
        pair_size = self._partial_schema.tuple_size
        per_segment = max(1, self._ring.segment_size // pair_size)
        chunks = ([partials[i:i + per_segment]
                   for i in range(0, len(partials), per_segment)]
                  or [[]])
        for position, chunk in enumerate(chunks):
            last = position == len(chunks) - 1
            flags = FLAG_CONSUMABLE | (extra_flags if last else 0)
            payload = b"".join(self._partial_schema.pack(pair)
                               for pair in chunk)
            self._forward(payload, flags)

    def _forward(self, payload: bytes, flags: int) -> None:
        index = self._write_index
        self._write_index = self._ring.next_index(index)
        wire_bytes = len(payload) + FOOTER_SIZE
        self.bytes_out += wire_bytes
        arrival = self.fabric.from_switch(self.target_node, wire_bytes)

        def commit(_event, index=index, payload=payload, flags=flags):
            if self._ring.read_footer(index).consumable:
                # Hardware queue overflow: the slot was never consumed.
                self.overflow_drops += 1
                raise FlowError(
                    "SHARP target ring overflow — enlarge target_segments "
                    "or consume faster")
            if payload:
                self._ring.region.write(self._ring.payload_offset(index),
                                        payload)
            self._ring.region.write(
                self._ring.footer_offset(index),
                pack_footer(len(payload), flags, 0))

        arrival.callbacks.append(commit)

    @property
    def partial_schema(self) -> Schema:
        return self._partial_schema


class SharpCombinerSource:
    """Source endpoint of an in-network combiner flow: segments are sent
    into the switch instead of to the target's rings."""

    def __init__(self, registry: FlowRegistry, descriptor: FlowDescriptor,
                 source_index: int, aggregator: SwitchAggregator) -> None:
        self.registry = registry
        self.descriptor = descriptor
        self.source_index = source_index
        self.node = registry.cluster.node(
            descriptor.sources[source_index].node_id)
        self.profile = self.node.cluster.profile
        self._nic = get_nic(self.node)
        self._aggregator = aggregator
        self._schema = descriptor.schema
        self._payload_size = segment_payload_size(descriptor)
        self._staging: list[tuple] = []
        self._staged_bytes = 0
        self._cpu_debt = 0.0
        self.closed = False
        self.tuples_sent = 0
        self.segments_sent = 0

    @classmethod
    def open(cls, registry: FlowRegistry, name: str, source_index: int):
        """Generator: open a SHARP combiner source (waits for the target
        to install the switch aggregator)."""
        descriptor = registry.descriptor(name)
        if not 0 <= source_index < descriptor.source_count:
            raise FlowError(
                f"source index {source_index} out of range "
                f"[0, {descriptor.source_count})")
        aggregator = yield from registry.wait_backchannel(name, 0, 0)
        return cls(registry, descriptor, source_index, aggregator)

    def push(self, values: tuple):
        """Generator: push one tuple toward the in-network reduction."""
        if self.closed:
            raise FlowError("push on a closed flow source")
        self._schema.pack(values)  # validates against the schema
        self._staging.append(values)
        self._staged_bytes += self._schema.tuple_size
        self._cpu_debt += (self.profile.cpu_tuple_overhead
                           + self._schema.tuple_size
                           * self.profile.cpu_copy_per_byte)
        self.tuples_sent += 1
        if self._staged_bytes + self._schema.tuple_size > self._payload_size:
            yield from self._flush(False)

    def close(self):
        """Generator: flush remaining tuples with the close marker."""
        if self.closed:
            return
        yield from self._flush(True)
        self.closed = True

    def _flush(self, closed: bool):
        debt = self._cpu_debt + self.profile.cpu_post_cost
        self._cpu_debt = 0.0
        yield self.node.compute(debt)
        tuples = self._staging
        wire_bytes = self._staged_bytes + FOOTER_SIZE
        self._staging = []
        self._staged_bytes = 0
        delay = self._nic.engine_delay(inline=False)
        arrival = self.registry.cluster.fabric.to_switch(
            self.node, wire_bytes, delay=delay)
        aggregator = self._aggregator

        def on_arrival(_event, tuples=tuples, closed=closed,
                       wire_bytes=wire_bytes):
            aggregator.on_segment(tuples, closed, wire_bytes)

        arrival.callbacks.append(on_arrival)
        self.segments_sent += 1


class SharpCombinerTarget:
    """Target endpoint: consumes partial aggregates emitted by the
    switch and folds them into the final table."""

    def __init__(self, registry: FlowRegistry, descriptor: FlowDescriptor,
                 ring: SegmentRing, aggregator: SwitchAggregator) -> None:
        self.registry = registry
        self.descriptor = descriptor
        self.node = registry.cluster.node(
            descriptor.targets[0].node_id)
        self._ring = ring
        self._aggregator = aggregator
        self._partial_schema = aggregator.partial_schema
        # Folding *partials* differs from folding tuples: COUNT partials
        # are summed (each already carries a count), SUM partials are
        # summed, MIN/MAX partials are re-minimized/maximized.
        op = descriptor.aggregation.op
        self._fold = ((lambda a, b: a + b) if op in ("sum", "count")
                      else _aggregator(op))
        self._op = op
        self._index = 0
        self._done = False
        self._aggregates: dict = {}
        self._waiter = _RingWriteWaiter(self.node.env, [ring.region])
        self.partial_segments = 0

    @classmethod
    def open(cls, registry: FlowRegistry, name: str):
        """Open the target: allocates the ring, installs the switch
        aggregator, and publishes it for the sources."""
        descriptor = registry.descriptor(name)
        if descriptor.flow_type is not FlowType.COMBINER:
            raise FlowError(f"flow {name!r} is not a combiner flow")
        if not descriptor.options.in_network_aggregation:
            raise FlowError(
                f"flow {name!r} does not enable in-network aggregation")
        node = registry.cluster.node(descriptor.targets[0].node_id)
        ring = SegmentRing.allocate(get_nic(node),
                                    descriptor.options.target_segments,
                                    segment_payload_size(descriptor))
        aggregator = SwitchAggregator(registry, descriptor, ring)
        registry.publish_backchannel(name, 0, 0, aggregator)
        return cls(registry, descriptor, ring, aggregator)

    @property
    def aggregates(self) -> dict:
        return self._aggregates

    def consume_all(self):
        """Generator: drain the flow and return the final aggregates."""
        while not self._done:
            event = self._waiter.arm()
            progressed = self._drain()
            if self._done:
                self._waiter.disarm()
                break
            if progressed:
                self._waiter.disarm()
                continue
            yield event
            self._waiter.disarm()
            yield self.node.compute(
                self.node.cluster.profile.cpu_poll_cost)
        return self._aggregates

    def _drain(self) -> bool:
        progressed = False
        while True:
            footer = self._ring.read_footer(self._index)
            if not footer.consumable:
                return progressed
            progressed = True
            count = footer.used // self._partial_schema.tuple_size
            if count:
                payload = self._ring.payload_view(self._index, footer.used)
                for group, value in self._partial_schema.unpack_many(
                        payload, count):
                    if group in self._aggregates:
                        self._aggregates[group] = self._fold(
                            self._aggregates[group], value)
                    else:
                        self._aggregates[group] = value
            self.partial_segments += 1
            if footer.closed:
                self._done = True
            offset = self._ring.footer_offset(self._index)
            self._ring.region.mem[offset:offset + FOOTER_SIZE] = (
                pack_footer(0, 0, 0))
            self._index = self._ring.next_index(self._index)

    @property
    def switch_stats(self) -> dict:
        """In/out byte counts of the switch-side reduction."""
        return {"bytes_in": self._aggregator.bytes_in,
                "bytes_out": self._aggregator.bytes_out,
                "reduction": (self._aggregator.bytes_in
                              / max(1, self._aggregator.bytes_out))}
