"""Replicate flows (paper Sections 4.2.2 and 5.4).

A replicate flow sends every tuple to *all* targets. Two transports:

* **naive** (one-sided): the source writes the segment once per target —
  N copies share the source uplink, which becomes the bottleneck the paper
  measures in Fig. 8a;
* **multicast**: one UD datagram per segment, replicated inside the switch
  (Fig. 8b shows the aggregate receive bandwidth sailing past the sender's
  link speed). UD is unreliable, so segments carry sequence numbers,
  targets pre-populate receive queues under a credit scheme, report
  consumed counts and NACK missing sequence numbers through a one-sided
  back-flow into the source's control region, and sources retransmit from a
  bounded history buffer.

Globally-ordered replicate flows additionally stamp every segment with a
sequence number drawn from the *tuple sequencer* — an RDMA fetch-and-add on
a counter hosted by the registry master — and targets deliver strictly in
that order via the receive-list/next-list reorder buffer (Fig. 6). In
``gap_notify`` mode a timed-out gap is surfaced to the application as a
:class:`~repro.core.flowdef.GapNotification` instead of being NACKed —
the hook NOPaxos' gap agreement builds on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.errors import (
    FlowAbortedError,
    FlowClosedError,
    FlowError,
    FlowPeerFailedError,
    FlowTimeoutError,
    QpFlushedError,
)
from repro.core.flowdef import (
    FLOW_END,
    FlowDescriptor,
    FlowType,
    GapNotification,
    Optimization,
    Ordering,
)
from repro.core.ordering import ReorderBuffer
from repro.core.registry import FlowRegistry
from repro.core.segment import (
    FLAG_ABORTED,
    FLAG_CLOSED,
    FLAG_CONSUMABLE,
    FOOTER_SIZE,
    pack_footer,
    unpack_footer,
)
from repro.core.shuffle import ShuffleTarget, _RingWriteWaiter
from repro.core.writers import CreditRingWriter, FooterRingWriter
from repro.obs import (
    FAULT_DETECT,
    FLOW_CLOSE,
    REROUTE,
    RETRANSMIT,
    SEG_CONSUME,
    SEG_WRITE,
    endpoint_obs,
)
from repro.rdma.nic import get_nic
from repro.rdma.qp import UD_MTU


@dataclass(frozen=True)
class ControlHandle:
    """Remote handle of a source's control region: per-target credit and
    NACK slots written one-sidedly by targets."""

    node_id: int
    rkey: int
    credit_offset: int
    nack_offset: int


class SeqTracker:
    """Per-source sequence bookkeeping for *unordered* multicast delivery:
    duplicate filtering, contiguity, and lowest-missing detection."""

    def __init__(self) -> None:
        self._next = 0
        self._ahead: set[int] = set()
        self.duplicates_dropped = 0

    @property
    def contiguous(self) -> int:
        """All sequence numbers below this value have been processed."""
        return self._next

    @property
    def delivered(self) -> int:
        """Total unique segments processed (contiguous or not)."""
        return self._next + len(self._ahead)

    def add(self, seq: int) -> bool:
        """Record ``seq``; returns False for duplicates."""
        if seq < self._next or seq in self._ahead:
            self.duplicates_dropped += 1
            return False
        if seq == self._next:
            self._next += 1
            while self._next in self._ahead:
                self._ahead.discard(self._next)
                self._next += 1
        else:
            self._ahead.add(seq)
        return True

    def missing(self) -> "int | None":
        """Lowest missing sequence number, if later ones already arrived."""
        return self._next if self._ahead else None

    def skip(self, seq: int) -> None:
        """Give up on ``seq`` (application-level gap handling)."""
        if seq != self._next:
            raise FlowError(
                f"can only skip the lowest missing sequence number "
                f"({self._next}), not {seq}")
        self._next += 1
        while self._next in self._ahead:
            self._ahead.discard(self._next)
            self._next += 1


class TupleSequencer:
    """Source-side client of the global tuple sequencer: one RDMA
    fetch-and-add per segment (paper Section 5.4)."""

    def __init__(self, registry: FlowRegistry, name: str, node) -> None:
        self._handle = registry.sequencer(name)
        self._qp = get_nic(node).create_qp(
            registry.cluster.node(self._handle.node_id))

    def next(self):
        """Generator: draw the next global sequence number."""
        wr = self._qp.post_fetch_add(self._handle.rkey, self._handle.offset,
                                     1, signaled=False)
        seq = yield wr.done
        return seq


def _replicate_payload_size(descriptor: FlowDescriptor) -> int:
    """Segment payload for a replicate flow (MTU-capped when multicast)."""
    if descriptor.optimization is Optimization.LATENCY:
        payload = descriptor.schema.tuple_size
    else:
        payload = descriptor.options.segment_size
    if descriptor.options.multicast:
        limit = UD_MTU - FOOTER_SIZE
        if descriptor.schema.tuple_size > limit:
            raise FlowError(
                f"tuple size {descriptor.schema.tuple_size} exceeds the UD "
                f"multicast payload limit ({limit} B)")
        payload = min(payload, limit)
    if payload < descriptor.schema.tuple_size:
        raise FlowError(
            f"segment payload {payload} smaller than one tuple "
            f"({descriptor.schema.tuple_size} B)")
    return payload


def _check_replicate(descriptor: FlowDescriptor, index: int,
                     count: int, kind: str) -> None:
    if descriptor.flow_type is not FlowType.REPLICATE:
        raise FlowError(
            f"flow {descriptor.name!r} is a {descriptor.flow_type.value} "
            f"flow, not replicate")
    if not 0 <= index < count:
        raise FlowError(f"{kind} index {index} out of range [0, {count})")


class _StagingBuffer:
    """Shared staging segment for replicate sources: tuples are packed once
    and the finished slot is fanned out by the transport."""

    def __init__(self, descriptor: FlowDescriptor, payload_size: int) -> None:
        self.schema = descriptor.schema
        # Bound once: ``room``/``full`` run per chunk on the batched push
        # path and ``pack_many_into`` resolves to the schema's compiled
        # kernel when codegen is on (see ``core/schema.py``).
        self.tuple_size = descriptor.schema.tuple_size
        self._pack_into = descriptor.schema.pack_into
        self._pack_many_into = descriptor.schema.pack_many_into
        self.payload_size = payload_size
        self._buffer = bytearray(payload_size)
        self.used = 0

    def append(self, values: tuple) -> None:
        self._pack_into(self._buffer, self.used, values)
        self.used += self.tuple_size

    def append_many(self, tuples) -> None:
        """Pack a batch of tuples with one ``struct`` call; the caller
        checks :attr:`room` first."""
        self._pack_many_into(self._buffer, self.used, tuples)
        self.used += self.tuple_size * len(tuples)

    @property
    def room(self) -> int:
        """How many more tuples fit before the buffer reads as full."""
        return (self.payload_size - self.used) // self.tuple_size

    @property
    def full(self) -> bool:
        return self.used + self.tuple_size > self.payload_size

    def take(self) -> bytes:
        payload = bytes(self._buffer[:self.used])
        self.used = 0
        return payload


class NaiveReplicateSource:
    """Replicate source using one one-sided write per target."""

    def __init__(self, registry: FlowRegistry, descriptor: FlowDescriptor,
                 source_index: int, writers: list,
                 sequencer: "TupleSequencer | None") -> None:
        self.registry = registry
        self.descriptor = descriptor
        self.source_index = source_index
        self.node = registry.cluster.node(
            descriptor.sources[source_index].node_id)
        self.profile = self.node.cluster.profile
        self._writers = writers
        self._sequencer = sequencer
        self._payload_size = _replicate_payload_size(descriptor)
        self._staging = _StagingBuffer(descriptor, self._payload_size)
        # Doorbell trains need tuple-aligned segments (whole slots go out
        # as contiguous payload+footer writes).
        self._train_ok = (self._payload_size
                          % descriptor.schema.tuple_size == 0)
        self._latency = descriptor.optimization is Optimization.LATENCY
        self._cpu_debt = 0.0
        self._local_seq = 0
        #: Writer indices declared failed (their targets are gone).
        self._failed: set[int] = set()
        self._aborting = False
        self.segments_sent = 0
        self.tuples_sent = 0
        self.closed = False
        self._metrics, self._tracer = endpoint_obs(
            self.node, descriptor.name, descriptor.options)
        self._tid = f"src{source_index}"
        self._causal = self.node.causal
        if self._causal is not None:
            self._causal.open(descriptor.name, self.node.node_id)

    @classmethod
    def open(cls, registry: FlowRegistry, name: str, source_index: int):
        """Generator: open a naive replicate source endpoint."""
        descriptor = registry.descriptor(name)
        _check_replicate(descriptor, source_index, descriptor.source_count,
                         "source")
        node = registry.cluster.node(
            descriptor.sources[source_index].node_id)
        latency = descriptor.optimization is Optimization.LATENCY
        retries = descriptor.options.max_backoff_retries
        writers = []
        for target_index in range(descriptor.target_count):
            handle = yield from registry.wait_ring(name, source_index,
                                                   target_index)
            tag = (name, source_index, target_index)
            if latency:
                writers.append(CreditRingWriter(
                    node, handle, tag,
                    descriptor.options.credit_threshold,
                    max_retries=retries))
            else:
                writers.append(FooterRingWriter(node, handle, tag,
                                                max_retries=retries))
        sequencer = None
        if descriptor.ordering is Ordering.GLOBAL:
            sequencer = TupleSequencer(registry, name, node)
        return cls(registry, descriptor, source_index, writers, sequencer)

    def push(self, values: tuple):
        """Generator: replicate one tuple to all targets."""
        if self.closed:
            raise FlowClosedError("push on a closed replicate source")
        self._staging.append(values)
        self.tuples_sent += 1
        if self._metrics is not None:
            self._metrics.inc("core.tuples_pushed")
        self._cpu_debt += (self.profile.cpu_tuple_overhead
                           + self.descriptor.schema.tuple_size
                           * self.profile.cpu_copy_per_byte)
        if self._latency or self._staging.full:
            yield from self._flush(0)

    def push_batch(self, tuples):
        """Generator: replicate a batch of tuples to all targets.

        Simulated cost matches per-tuple push (same CPU debt, same flush
        points); segments are packed with one ``struct`` call each.
        Unordered bandwidth flows replicate every full segment the batch
        produces as one doorbell train per writer (globally-ordered flows
        must draw one sequencer value per segment over the wire, so they
        keep the eager per-segment path).
        """
        if self.closed:
            raise FlowClosedError("push on a closed replicate source")
        if self._latency:
            for values in tuples:
                yield from self.push(values)
            return
        if not isinstance(tuples, (list, tuple)):
            tuples = list(tuples)
        per_tuple = (self.profile.cpu_tuple_overhead
                     + self.descriptor.schema.tuple_size
                     * self.profile.cpu_copy_per_byte)
        total = len(tuples)
        if total and self._metrics is not None:
            self._metrics.inc("core.tuples_pushed", total)
        index = 0
        if self._train_ok and self._sequencer is None:
            payloads = []
            while index < total:
                take = min(self._staging.room, total - index)
                if take:
                    self._staging.append_many(tuples[index:index + take])
                    self.tuples_sent += take
                    self._cpu_debt += take * per_tuple
                    index += take
                if self._staging.full:
                    payloads.append(self._staging.take())
            if payloads:
                yield from self._flush_train(payloads)
            return
        while index < total:
            take = min(self._staging.room, total - index)
            if take:
                self._staging.append_many(tuples[index:index + take])
                self.tuples_sent += take
                self._cpu_debt += take * per_tuple
                index += take
            if self._staging.full:
                yield from self._flush(0)

    def close(self):
        """Generator: flush, send the close marker, and wait for acks."""
        if self.closed:
            return
        work_requests = yield from self._flush(FLAG_CLOSED)
        self.closed = True
        if self._tracer is not None:
            self._tracer.emit(self.node.env.now, FLOW_CLOSE,
                              self.node.node_id, self._tid, None)
        if self._causal is not None:
            self._causal.close(self.descriptor.name, self.node.node_id)
        failures = []
        for index, wr in work_requests:
            try:
                if not wr.done.triggered:
                    yield wr.done
                elif wr.error is not None:
                    raise wr.error
            except (QpFlushedError, FlowTimeoutError) as exc:
                failures.append((index, exc))
        for index, exc in failures:
            yield from self._handle_writer_failure(index, exc)

    def abort(self):
        """Generator: abort the flow on every target (staged tuples are
        dropped; targets raise FlowAbortedError)."""
        if self.closed:
            return
        self.registry.mark_flow_aborted(self.descriptor.name)
        self._aborting = True
        self._staging.take()  # discard staged tuples
        work_requests = yield from self._flush(FLAG_CLOSED | FLAG_ABORTED)
        self.closed = True
        if self._tracer is not None:
            self._tracer.emit(self.node.env.now, FLOW_CLOSE,
                              self.node.node_id, self._tid,
                              {"aborted": True})
        if self._causal is not None:
            self._causal.close(self.descriptor.name, self.node.node_id)
        for _index, wr in work_requests:
            try:
                if not wr.done.triggered:
                    yield wr.done
            except (QpFlushedError, FlowTimeoutError):
                pass  # abort is best-effort on a failing fabric

    def _flush(self, extra_flags: int):
        debt = (self._cpu_debt
                + self.profile.cpu_post_cost * len(self._writers))
        self._cpu_debt = 0.0
        yield self.node.compute(debt)
        if self._sequencer is not None:
            seq = yield from self._sequencer.next()
        else:
            seq = self._local_seq
            self._local_seq += 1
        payload = self._staging.take()
        flags = FLAG_CONSUMABLE | extra_flags
        work_requests = []
        failures = []
        for index, writer in enumerate(self._writers):
            if index in self._failed:
                continue
            try:
                wr = yield from writer.write_segment(payload, flags, seq,
                                                     self.source_index)
            except (QpFlushedError, FlowTimeoutError) as exc:
                failures.append((index, exc))
                continue
            work_requests.append((index, wr))
        self.segments_sent += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("core.segments_flushed")
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(self.node.env.now, SEG_WRITE,
                            self.node.node_id, self._tid,
                            {"seq": seq, "bytes": len(payload)})
        for index, exc in failures:
            yield from self._handle_writer_failure(index, exc)
        return work_requests

    def _flush_train(self, payloads):
        """Generator: replicate a train of full segments to every target —
        one coalesced CPU charge (same debt a per-segment schedule would
        accrue), then one doorbell train per writer."""
        debt = (self._cpu_debt + self.profile.cpu_post_cost
                * len(payloads) * len(self._writers))
        self._cpu_debt = 0.0
        yield self.node.compute(debt)
        base_seq = self._local_seq
        self._local_seq += len(payloads)
        segments = [(payload, FLAG_CONSUMABLE, base_seq + i)
                    for i, payload in enumerate(payloads)]
        failures = []
        for index, writer in enumerate(self._writers):
            if index in self._failed:
                continue
            try:
                yield from writer.write_segments(segments,
                                                 self.source_index)
            except (QpFlushedError, FlowTimeoutError) as exc:
                failures.append((index, exc))
        self.segments_sent += len(payloads)
        if self._metrics is not None:
            self._metrics.inc("core.segments_flushed", len(payloads))
        for index, exc in failures:
            yield from self._handle_writer_failure(index, exc)

    def _handle_writer_failure(self, index: int, exc: Exception):
        """Generator: one target's writer failed. Replicate semantics
        promise delivery to *all* targets, so under the default abort
        policy any confirmed peer death voids the flow; the reroute
        policy degrades to replicating to the survivors only."""
        self._failed.add(index)
        if self._aborting:
            return
        faults = self.node.cluster.faults
        peer = self.registry.cluster.node(
            self.descriptor.targets[index].node_id)
        peer_dead = (isinstance(exc, QpFlushedError)
                     or (faults is not None and faults.active
                         and faults.peer_failed(self.node, peer)))
        metrics, tracer = self._metrics, self._tracer
        if metrics is not None:
            metrics.inc("core.target_failures")
        if not peer_dead:
            # A stall without evidence of peer death (backoff budget
            # exhausted against a live but wedged target) surfaces the
            # original error unchanged.
            raise exc
        now = self.node.env.now
        if metrics is not None:
            metrics.inc("core.peer_failures_detected")
        if tracer is not None:
            tracer.emit(now, FAULT_DETECT, self.node.node_id, self._tid,
                        {"target": index, "peer_node": peer.node_id,
                         "cause": type(exc).__name__})
        if (self.descriptor.options.on_target_failure == "reroute"
                and len(self._failed) < len(self._writers)):
            if metrics is not None:
                metrics.inc("core.reroutes")
            if tracer is not None:
                tracer.emit(now, REROUTE, self.node.node_id, self._tid,
                            {"target": index})
            return  # keep replicating to the survivors
        yield from self._abort_survivors()
        raise FlowPeerFailedError(
            f"target {index} of replicate flow {self.descriptor.name!r} "
            f"failed: {exc}") from exc

    def _abort_survivors(self):
        """Generator: best-effort abort markers to the still-live targets
        so they do not hang on a flow that will never close."""
        self._aborting = True
        self.registry.mark_flow_aborted(self.descriptor.name)
        self._staging.take()
        if not self.closed:
            work_requests = yield from self._flush(
                FLAG_CLOSED | FLAG_ABORTED)
            for _index, wr in work_requests:
                try:
                    if not wr.done.triggered:
                        yield wr.done
                except (QpFlushedError, FlowTimeoutError):
                    pass
        self.closed = True

    @property
    def failed_targets(self) -> tuple:
        """Indices of targets declared failed (sorted)."""
        return tuple(sorted(self._failed))

    @property
    def memory_bytes(self) -> int:
        return self._payload_size + FOOTER_SIZE  # one staging slot


class NaiveReplicateTarget(ShuffleTarget):
    """Replicate target over per-source one-sided rings.

    Unordered mode behaves like a shuffle target (arrival order). Globally
    ordered mode feeds polled segments through the reorder buffer so all
    targets observe the same delivery order.
    """

    _allowed_flow_types = (FlowType.REPLICATE,)

    def __init__(self, registry, descriptor, target_index, channels) -> None:
        super().__init__(registry, descriptor, target_index, channels)
        self._ordered = descriptor.ordering is Ordering.GLOBAL
        self._reorder = ReorderBuffer() if self._ordered else None

    def _scan(self, out) -> bool:
        if not self._ordered:
            return super()._scan(out)
        # Ordered mode goes segment-by-segment through ``poll`` (the
        # reorder buffer needs each footer's sequence number) but still
        # rides the doorbell set: only channels whose ring saw a write
        # are polled, and each is drained until empty.
        progressed = False
        dirty = self._dirty
        channels = self._channels
        while dirty:
            index = next(iter(dirty))
            del dirty[index]
            channel = channels[index]
            while True:
                polled = channel.poll()
                if polled is None:
                    break
                footer, tuples = polled
                self._reorder.insert(footer.seq, tuples)
                progressed = True
            if channel.aborted:
                self._abort_seen = True
        while True:
            ready = self._reorder.pop_ready()
            if ready is None:
                break
            _seq, tuples = ready
            out.extend(tuples)
        return progressed

    def consume_bytes(self):
        if self._ordered:
            raise FlowError(
                "consume_bytes is not available on globally ordered "
                "replicate flows: raw segment views cannot pass the "
                "reorder buffer")
        return super().consume_bytes()

    def _finished(self) -> bool:
        done = all(channel.done for channel in self._channels)
        if not self._ordered:
            return done
        return done and self._reorder.pending == 0


class MulticastReplicateSource:
    """Replicate source over switch multicast with credit/NACK back-flow."""

    #: Control-region layout: 16 bytes per target (credit u64, nack u64).
    _CONTROL_STRIDE = 16

    def __init__(self, registry: FlowRegistry, descriptor: FlowDescriptor,
                 source_index: int, control_region, ud_qp,
                 sequencer: "TupleSequencer | None") -> None:
        self.registry = registry
        self.descriptor = descriptor
        self.source_index = source_index
        self.node = registry.cluster.node(
            descriptor.sources[source_index].node_id)
        self.env = self.node.env
        self.profile = self.node.cluster.profile
        self._control = control_region
        self._ud_qp = ud_qp
        self._group = registry.multicast_group(descriptor.name)
        self._sequencer = sequencer
        self._payload_size = _replicate_payload_size(descriptor)
        self._staging = _StagingBuffer(descriptor, self._payload_size)
        self._latency = descriptor.optimization is Optimization.LATENCY
        self._window = descriptor.options.target_segments
        self._retransmit: dict[int, bytes] = {}
        self._retransmit_order: deque[int] = deque()
        self._waiter = _RingWriteWaiter(self.env, [control_region])
        self._cpu_debt = 0.0
        self._local_seq = 0
        self._close_slot: "bytes | None" = None
        #: Target indices declared failed (excluded from flow control).
        self._failed_targets: set[int] = set()
        self._aborting = False
        self.segments_sent = 0
        self.tuples_sent = 0
        self.retransmissions = 0
        self.closed = False
        self._metrics, self._tracer = endpoint_obs(
            self.node, descriptor.name, descriptor.options)
        self._tid = f"src{source_index}"
        self._causal = self.node.causal
        if self._causal is not None:
            self._causal.open(descriptor.name, self.node.node_id)

    def _note_retransmit(self, seq: "int | None") -> None:
        """Count one multicast retransmission (local tally + registry)."""
        self.retransmissions += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("core.retransmits")
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(self.env.now, RETRANSMIT, self.node.node_id,
                            self._tid,
                            None if seq is None else {"seq": seq})

    @classmethod
    def open(cls, registry: FlowRegistry, name: str, source_index: int):
        """Generator: open a multicast replicate source endpoint; blocks
        until every target joined the multicast group."""
        descriptor = registry.descriptor(name)
        _check_replicate(descriptor, source_index, descriptor.source_count,
                         "source")
        node = registry.cluster.node(
            descriptor.sources[source_index].node_id)
        nic = get_nic(node)
        control = nic.register_memory(
            cls._CONTROL_STRIDE * descriptor.target_count)
        for target_index in range(descriptor.target_count):
            registry.publish_backchannel(
                name, source_index, target_index,
                ControlHandle(
                    node_id=node.node_id, rkey=control.rkey,
                    credit_offset=cls._CONTROL_STRIDE * target_index,
                    nack_offset=cls._CONTROL_STRIDE * target_index + 8))
        ud_qp = nic.create_ud_qp()
        sequencer = None
        if descriptor.ordering is Ordering.GLOBAL:
            sequencer = TupleSequencer(registry, name, node)
        yield from registry.wait_all_targets(name)
        return cls(registry, descriptor, source_index, control, ud_qp,
                   sequencer)

    # -- credit / NACK bookkeeping -----------------------------------------
    def _live_targets(self) -> list:
        return [t for t in range(self.descriptor.target_count)
                if t not in self._failed_targets]

    def _target_credit(self, target: int) -> int:
        return self._control.read_u64(self._CONTROL_STRIDE * target)

    def _min_credit(self) -> int:
        live = self._live_targets()
        if not live:
            # Every target failed: nothing constrains the window anymore.
            return self.segments_sent
        return min(self._target_credit(t) for t in live)

    def _service_nacks(self) -> None:
        for target in range(self.descriptor.target_count):
            offset = self._CONTROL_STRIDE * target + 8
            value = self._control.read_u64(offset)
            if not value:
                continue
            seq = value - 1
            slot = self._retransmit.get(seq)
            if slot is not None:
                self._ud_qp.post_send_multicast(self._group, slot)
                self._note_retransmit(seq)
            # Clear the NACK slot directly (our own memory; a hook-free
            # write so we do not wake ourselves).
            self._control.mem[offset:offset + 8] = b"\x00" * 8

    def _remember(self, seq: int, slot: bytes) -> None:
        self._retransmit[seq] = slot
        self._retransmit_order.append(seq)
        while len(self._retransmit_order) > self.descriptor.options.retransmit_buffer:
            evicted = self._retransmit_order.popleft()
            self._retransmit.pop(evicted, None)

    def _wait_credit(self):
        if self.descriptor.options.gap_notify:
            # OUM semantics (NOPaxos): the library gives no delivery
            # guarantee and applies no flow control — a receiver that
            # cannot keep up drops datagrams, which surface as gaps for
            # the application's gap agreement. A lost segment would
            # otherwise hole the credit count forever.
            return
        if self._aborting:
            # Abort markers go out even with the window shut: overwriting
            # a receive ring slot is moot on a flow that is already void.
            return
        limit = self.descriptor.options.max_retransmits
        stalled_rounds = 0
        floor = self._min_credit()
        while self.segments_sent - self._min_credit() >= self._window:
            if self._metrics is not None:
                self._metrics.inc("core.credit_stalls")
            self._service_nacks()
            event = self._waiter.arm()
            if self.segments_sent - self._min_credit() < self._window:
                self._waiter.disarm()
                return
            wait_from = self.env.now
            yield self.env.any_of([
                event,
                self.env.timeout(self.descriptor.options.retransmit_timeout),
            ])
            self._waiter.disarm()
            if self._causal is not None:
                self._causal.edge(self.env.now, wait_from, "credit_stall",
                                  self.node.node_id, self._tid,
                                  self.descriptor.name)
            credit = self._min_credit()
            if credit > floor:
                floor = credit
                stalled_rounds = 0
            elif limit is not None:
                stalled_rounds += 1
                if stalled_rounds >= limit:
                    yield from self._fail_stalled()
                    stalled_rounds = 0
                    floor = self._min_credit()

    def _fail_stalled(self):
        """Generator: the credit window stayed shut through the whole
        retransmit budget — declare the lowest-credit targets failed.
        The reroute policy drops them from flow control and carries on
        with the survivors; the abort policy (default) voids the flow
        and surfaces :class:`FlowPeerFailedError`."""
        live = self._live_targets()
        floor = min(self._target_credit(t) for t in live)
        stalled = [t for t in live if self._target_credit(t) == floor]
        self._failed_targets.update(stalled)
        metrics, tracer = self._metrics, self._tracer
        if metrics is not None:
            metrics.inc("core.target_failures", len(stalled))
            metrics.inc("core.peer_failures_detected", len(stalled))
        if tracer is not None:
            tracer.emit(self.env.now, FAULT_DETECT, self.node.node_id,
                        self._tid, {"targets": stalled,
                                    "cause": "credit_stall"})
        if (self.descriptor.options.on_target_failure == "reroute"
                and len(stalled) < len(live)):
            if metrics is not None:
                metrics.inc("core.reroutes")
            if tracer is not None:
                tracer.emit(self.env.now, REROUTE, self.node.node_id,
                            self._tid, {"targets": stalled})
            return
        yield from self._abort_for_failure()
        raise FlowPeerFailedError(
            f"target(s) {stalled} of replicate flow "
            f"{self.descriptor.name!r} made no progress through "
            f"{self.descriptor.options.max_retransmits} retransmit rounds")

    def _abort_for_failure(self):
        """Generator: best-effort abort multicast before surfacing a
        failure, so surviving targets do not hang on a half-closed flow."""
        self._aborting = True
        self.registry.mark_flow_aborted(self.descriptor.name)
        self._staging.take()
        yield from self._flush(FLAG_CLOSED | FLAG_ABORTED)
        self.closed = True

    # -- push / close --------------------------------------------------------
    def push(self, values: tuple):
        """Generator: replicate one tuple through the switch."""
        if self.closed:
            raise FlowClosedError("push on a closed replicate source")
        self._staging.append(values)
        self.tuples_sent += 1
        if self._metrics is not None:
            self._metrics.inc("core.tuples_pushed")
        self._cpu_debt += (self.profile.cpu_tuple_overhead
                           + self.descriptor.schema.tuple_size
                           * self.profile.cpu_copy_per_byte)
        if self._latency or self._staging.full:
            yield from self._flush(0)

    def push_batch(self, tuples):
        """Generator: replicate a batch of tuples through the switch.

        Same semantics and simulated cost as per-tuple push; whole
        segments are packed with one ``struct`` call.
        """
        if self.closed:
            raise FlowClosedError("push on a closed replicate source")
        if self._latency:
            for values in tuples:
                yield from self.push(values)
            return
        if not isinstance(tuples, (list, tuple)):
            tuples = list(tuples)
        per_tuple = (self.profile.cpu_tuple_overhead
                     + self.descriptor.schema.tuple_size
                     * self.profile.cpu_copy_per_byte)
        total = len(tuples)
        if total and self._metrics is not None:
            self._metrics.inc("core.tuples_pushed", total)
        index = 0
        while index < total:
            take = min(self._staging.room, total - index)
            if take:
                self._staging.append_many(tuples[index:index + take])
                self.tuples_sent += take
                self._cpu_debt += take * per_tuple
                index += take
            if self._staging.full:
                yield from self._flush(0)

    def close(self):
        """Generator: flush, send the close marker, then stay responsive
        (retransmissions) until every target confirmed full consumption."""
        if self.closed:
            return
        yield from self._flush(FLAG_CLOSED)
        if self.descriptor.options.gap_notify:
            # The application owns loss recovery in gap_notify mode, and
            # skipped segments never bump credits — waiting for full
            # consumption could block forever. Re-send the close marker a
            # few times against loss and return.
            for _ in range(3):
                yield self.env.timeout(
                    self.descriptor.options.retransmit_timeout)
                if self._min_credit() >= self.segments_sent:
                    break
                self._ud_qp.post_send_multicast(self._group,
                                                self._close_slot)
                self._note_retransmit(None)
            self.closed = True
            if self._tracer is not None:
                self._tracer.emit(self.env.now, FLOW_CLOSE,
                                  self.node.node_id, self._tid, None)
            if self._causal is not None:
                self._causal.close(self.descriptor.name, self.node.node_id)
            return
        total = self.segments_sent
        limit = self.descriptor.options.max_retransmits
        stalled_rounds = 0
        floor = self._min_credit()
        resend_deadline = (self.env.now
                           + self.descriptor.options.retransmit_timeout)
        while self._min_credit() < total:
            self._service_nacks()
            event = self._waiter.arm()
            if self._min_credit() >= total:
                self._waiter.disarm()
                break
            wait_from = self.env.now
            yield self.env.any_of([
                event,
                self.env.timeout(self.descriptor.options.retransmit_timeout),
            ])
            self._waiter.disarm()
            if self._causal is not None:
                self._causal.edge(self.env.now, wait_from, "credit_stall",
                                  self.node.node_id, self._tid,
                                  self.descriptor.name)
            credit = self._min_credit()
            if credit > floor:
                floor = credit
                stalled_rounds = 0
            elif limit is not None:
                stalled_rounds += 1
                if stalled_rounds >= limit:
                    yield from self._fail_stalled()
                    stalled_rounds = 0
                    floor = self._min_credit()
                    continue
            if (self.env.now >= resend_deadline
                    and self._close_slot is not None):
                # The close marker itself may have been lost; it is the only
                # segment no later traffic can expose, so resend it until
                # every target has caught up.
                self._ud_qp.post_send_multicast(self._group,
                                                self._close_slot)
                self._note_retransmit(None)
                resend_deadline = (self.env.now + self.descriptor.options
                                   .retransmit_timeout)
        self.closed = True
        if self._tracer is not None:
            self._tracer.emit(self.env.now, FLOW_CLOSE,
                              self.node.node_id, self._tid, None)
        if self._causal is not None:
            self._causal.close(self.descriptor.name, self.node.node_id)

    def abort(self):
        """Generator: abort the flow — the marker is re-multicast a few
        times against loss, then the source stops (no delivery guarantee
        survives an abort)."""
        if self.closed:
            return
        self.registry.mark_flow_aborted(self.descriptor.name)
        self._aborting = True
        self._staging.take()  # discard staged tuples
        yield from self._flush(FLAG_CLOSED | FLAG_ABORTED)
        abort_slot = self._retransmit[self.segments_sent - 1]
        for _ in range(3):
            yield self.env.timeout(
                self.descriptor.options.retransmit_timeout)
            self._ud_qp.post_send_multicast(self._group, abort_slot)
            self._note_retransmit(None)
        self.closed = True
        if self._tracer is not None:
            self._tracer.emit(self.env.now, FLOW_CLOSE, self.node.node_id,
                              self._tid, {"aborted": True})
        if self._causal is not None:
            self._causal.close(self.descriptor.name, self.node.node_id)

    def _flush(self, extra_flags: int):
        debt = self._cpu_debt + self.profile.cpu_post_cost
        self._cpu_debt = 0.0
        yield self.node.compute(debt)
        if self._sequencer is not None:
            seq = yield from self._sequencer.next()
        else:
            seq = self._local_seq
            self._local_seq += 1
        # UD datagrams carry their length, so the footer rides directly
        # after the used payload — no padding to the segment size.
        payload = self._staging.take()
        slot = payload + pack_footer(len(payload),
                                     FLAG_CONSUMABLE | extra_flags, seq,
                                     self.source_index)
        yield from self._wait_credit()
        self._remember(seq, slot)
        if extra_flags & FLAG_CLOSED:
            self._close_slot = slot
        self._ud_qp.post_send_multicast(self._group, slot)
        self.segments_sent += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("core.segments_flushed")
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(self.env.now, SEG_WRITE, self.node.node_id,
                            self._tid, {"seq": seq, "bytes": len(payload)})
        self._service_nacks()

    @property
    def failed_targets(self) -> tuple:
        """Indices of targets declared failed (sorted)."""
        return tuple(sorted(self._failed_targets))

    @property
    def memory_bytes(self) -> int:
        return (self._payload_size + FOOTER_SIZE
                + self._control.size)


class MulticastReplicateTarget:
    """Replicate target receiving switch-replicated UD datagrams."""

    def __init__(self, registry: FlowRegistry, descriptor: FlowDescriptor,
                 target_index: int, ud_qp, ring_region, slot_size: int,
                 control_qps: list, control_handles: list) -> None:
        self.registry = registry
        self.descriptor = descriptor
        self.target_index = target_index
        self.node = registry.cluster.node(
            descriptor.targets[target_index].node_id)
        self.env = self.node.env
        self._ud_qp = ud_qp
        self._ring = ring_region
        self._slot_size = slot_size
        self._payload_size = slot_size - FOOTER_SIZE
        self._control_qps = control_qps
        self._control_handles = control_handles
        self._ordered = descriptor.ordering is Ordering.GLOBAL
        self._gap_notify = descriptor.options.gap_notify
        self._reorder = ReorderBuffer() if self._ordered else None
        self._trackers = [SeqTracker()
                          for _ in range(descriptor.source_count)]
        self._consumed = [0] * descriptor.source_count
        self._close_seq: list[int | None] = [None] * descriptor.source_count
        self._closed_delivered = 0
        self._ready: deque = deque()
        self._gap_deadlines: dict = {}
        self._gap_pending: "GapNotification | None" = None
        self._aborted = False
        self._peer_timeout = descriptor.options.peer_timeout
        self._waiter = _RingWriteWaiter(self.env, [ring_region])
        self.tuples_received = 0
        self._metrics, self._tracer = endpoint_obs(
            self.node, descriptor.name, descriptor.options)
        self._tid = f"tgt{target_index}"
        self._causal = self.node.causal
        self._close_recorded = False
        if self._causal is not None:
            self._causal.open(descriptor.name, self.node.node_id)

    @classmethod
    def open(cls, registry: FlowRegistry, name: str, target_index: int):
        """Generator: open a multicast replicate target endpoint — joins
        the group, pre-populates the receive queue, wires the back-flow."""
        descriptor = registry.descriptor(name)
        _check_replicate(descriptor, target_index, descriptor.target_count,
                         "target")
        node = registry.cluster.node(
            descriptor.targets[target_index].node_id)
        nic = get_nic(node)
        payload = _replicate_payload_size(descriptor)
        slot_size = payload + FOOTER_SIZE
        segments = descriptor.options.target_segments
        ring_region = nic.register_memory(segments * slot_size)
        ud_qp = nic.create_ud_qp()
        for slot in range(segments):
            ud_qp.post_recv(ring_region, slot * slot_size, slot_size)
        control_qps = []
        control_handles = []
        for source_index in range(descriptor.source_count):
            handle = yield from registry.wait_backchannel(
                name, source_index, target_index)
            control_qps.append(nic.create_qp(
                registry.cluster.node(handle.node_id)))
            control_handles.append(handle)
        group = registry.multicast_group(name)
        group.join(ud_qp)
        registry.mark_target_ready(name, target_index)
        return cls(registry, descriptor, target_index, ud_qp, ring_region,
                   slot_size, control_qps, control_handles)

    # -- receive processing --------------------------------------------------
    def _pump(self) -> None:
        schema = self.descriptor.schema
        while True:
            completions = self._ud_qp.recv_cq.poll(max_entries=64)
            if not completions:
                break
            for wc in completions:
                region, offset, length = wc.result
                footer = unpack_footer(
                    region.view(offset + length - FOOTER_SIZE, FOOTER_SIZE))
                tuples = (schema.unpack_rows(region.view(offset, footer.used))
                          if footer.used else [])
                # Free the slot for the next datagram right away: the
                # payload has been decoded out of the ring.
                self._ud_qp.post_recv(region, offset, self._slot_size)
                self._accept(footer, tuples)
        if self._ordered:
            self._drain_reorder()
        self._check_gaps()

    def _accept(self, footer, tuples) -> None:
        if footer.aborted:
            # Aborts bypass ordering: the flow is void immediately.
            self._aborted = True
            return
        # Credits are granted at parse time — the moment the receive slot
        # is reposted — so the credit window tracks receive-queue capacity
        # (its purpose) rather than application consumption, which may
        # stall behind a gap in ordered mode.
        source = footer.source_index
        if self._ordered:
            if self._reorder.insert(footer.seq,
                                    (source, footer.closed, tuples)):
                self._bump_credit(source)
            return
        tracker = self._trackers[source]
        if not tracker.add(footer.seq):
            if self._metrics is not None:
                self._metrics.inc("core.duplicates_dropped")
            return  # duplicate (late retransmission)
        self._bump_credit(source)
        if footer.closed:
            self._close_seq[source] = footer.seq
        self._ready.extend(tuples)
        self.tuples_received += len(tuples)
        if self._metrics is not None:
            self._note_delivery(footer.seq, len(tuples))

    def _note_delivery(self, seq: int, tuples: int) -> None:
        """Registry/trace bookkeeping for one delivered segment."""
        metrics = self._metrics
        metrics.inc("core.segments_consumed")
        if tuples:
            metrics.inc("core.tuples_consumed", tuples)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(self.env.now, SEG_CONSUME, self.node.node_id,
                        self._tid, {"seq": seq, "tuples": tuples})

    def _drain_reorder(self) -> None:
        while True:
            ready = self._reorder.pop_ready()
            if ready is None:
                return
            seq, (_source, closed, tuples) = ready
            if closed:
                self._closed_delivered += 1
            self._ready.extend(tuples)
            self.tuples_received += len(tuples)
            if self._metrics is not None:
                self._note_delivery(seq, len(tuples))

    def _bump_credit(self, source: int) -> None:
        self._consumed[source] += 1
        handle = self._control_handles[source]
        self._control_qps[source].post_write(
            self._consumed[source].to_bytes(8, "little"),
            handle.rkey, handle.credit_offset, signaled=False)

    # -- gap detection -------------------------------------------------------
    def _current_gaps(self) -> list[tuple]:
        if self._ordered:
            missing = self._reorder.missing_seq()
            return [("global", missing)] if missing is not None else []
        gaps = []
        for source, tracker in enumerate(self._trackers):
            missing = tracker.missing()
            if missing is not None:
                gaps.append((source, missing))
        return gaps

    def _check_gaps(self) -> None:
        now = self.env.now
        gaps = self._current_gaps()
        live_keys = set()
        for key in gaps:
            live_keys.add(key)
            deadline = self._gap_deadlines.get(key)
            if deadline is None:
                self._gap_deadlines[key] = (
                    now + self.descriptor.options.retransmit_timeout)
            elif now >= deadline:
                self._handle_gap_timeout(key)
                self._gap_deadlines[key] = (
                    now + self.descriptor.options.retransmit_timeout)
        for key in list(self._gap_deadlines):
            if key not in live_keys:
                del self._gap_deadlines[key]

    def _handle_gap_timeout(self, key: tuple) -> None:
        scope, missing = key
        if self._gap_notify:
            source = None if scope == "global" else scope
            self._gap_pending = GapNotification(missing, source)
            if self._metrics is not None:
                self._metrics.inc("core.gap_notifications")
            return
        if self._metrics is not None:
            self._metrics.inc("core.nacks_sent")
        # NACK the missing sequence number into the source's control region
        # (for globally ordered flows the owner is unknown, so every source
        # is notified; non-owners ignore it).
        targets = (range(self.descriptor.source_count)
                   if scope == "global" else [scope])
        for source in targets:
            handle = self._control_handles[source]
            self._control_qps[source].post_write(
                (missing + 1).to_bytes(8, "little"),
                handle.rkey, handle.nack_offset, signaled=False)

    # -- consume ---------------------------------------------------------
    def consume(self):
        """Generator: next tuple, a :class:`GapNotification` (gap_notify
        mode), or :data:`FLOW_END`.

        With ``options.peer_timeout`` set, a wait that sees no receive
        progress at all for that long consults the fault plane and raises
        :class:`FlowPeerFailedError` (a source is known dead) or
        :class:`FlowTimeoutError`; any arriving datagram restarts the
        window."""
        if self._ready:
            return self._ready.popleft()
        deadline = (None if self._peer_timeout is None
                    else self.env.now + self._peer_timeout)
        while True:
            event = self._waiter.arm()
            before = self._progress_mark()
            self._pump()
            if self._aborted:
                self._waiter.disarm()
                raise FlowAbortedError(
                    f"flow {self.descriptor.name!r} was aborted by a "
                    f"source")
            if self._ready:
                self._waiter.disarm()
                return self._ready.popleft()
            if self._gap_pending is not None:
                self._waiter.disarm()
                pending = self._gap_pending
                self._gap_pending = None
                return pending
            if self._finished():
                self._waiter.disarm()
                if self._causal is not None and not self._close_recorded:
                    self._close_recorded = True
                    self._causal.close(self.descriptor.name,
                                       self.node.node_id)
                return FLOW_END
            if deadline is not None:
                if self._progress_mark() != before:
                    deadline = self.env.now + self._peer_timeout
                elif self.env.now >= deadline:
                    from repro.simnet.congestion import stall_is_congestion
                    if stall_is_congestion(self.node):
                        # Silence explained by inbound throttling: grant
                        # a fresh window instead of misreporting
                        # congestion as failure. Throttle state
                        # self-clears, so the grace cannot loop forever.
                        if self._metrics is not None:
                            self._metrics.inc("core.congestion_grace")
                        deadline = self.env.now + self._peer_timeout
                    else:
                        self._waiter.disarm()
                        self._raise_peer_failure()
            waits = [event]
            if self._gap_deadlines:
                waits.append(self.env.timeout(
                    self.descriptor.options.retransmit_timeout))
            if deadline is not None:
                waits.append(self.env.timeout(deadline - self.env.now))
            if len(waits) == 1:
                yield event
            else:
                yield self.env.any_of(waits)
            self._waiter.disarm()
            yield self.node.compute(
                self.node.cluster.profile.cpu_poll_cost)

    def _progress_mark(self) -> tuple:
        """Cheap receive-progress stamp: changes whenever any datagram
        was accepted (tuples, close markers, or credit-only segments)."""
        return (self.tuples_received, self._closed_delivered,
                sum(self._consumed))

    def _raise_peer_failure(self):
        faults = self.node.cluster.faults
        if faults is not None and faults.active:
            dead = [s for s in range(self.descriptor.source_count)
                    if faults.peer_failed(
                        self.node, self.registry.cluster.node(
                            self.descriptor.sources[s].node_id))]
            if dead:
                metrics = self._metrics
                if metrics is not None:
                    metrics.inc("core.peer_failures_detected", len(dead))
                    tracer = self._tracer
                    if tracer is not None:
                        tracer.emit(self.env.now, FAULT_DETECT,
                                    self.node.node_id, self._tid,
                                    {"sources": dead})
                raise FlowPeerFailedError(
                    f"source(s) {dead} of flow {self.descriptor.name!r} "
                    f"failed before closing the multicast stream")
        if self._metrics is not None:
            self._metrics.inc("core.consume_timeouts")
        raise FlowTimeoutError(
            f"no multicast progress on flow {self.descriptor.name!r} "
            f"within {self._peer_timeout} ns")

    def _finished(self) -> bool:
        if self._ready:
            return False
        if self._ordered:
            return (self._closed_delivered == self.descriptor.source_count
                    and self._reorder.pending == 0)
        for source, tracker in enumerate(self._trackers):
            close_seq = self._close_seq[source]
            if close_seq is None or tracker.contiguous <= close_seq:
                return False
        return True

    @property
    def next_expected_seq(self) -> "int | None":
        """Next global sequence number awaited (ordered flows only)."""
        return self._reorder.next_expected if self._ordered else None

    def skip_gap(self, seq: int, source_index: "int | None" = None) -> None:
        """Give up on sequence number ``seq`` after application-level gap
        agreement (``gap_notify`` mode). Unordered flows identify the
        source via ``source_index`` (as carried by the notification)."""
        if self._ordered:
            self._reorder.skip(seq)
            self._gap_deadlines.pop(("global", seq), None)
            return
        if source_index is None:
            raise FlowError(
                "unordered flows need the source_index of the gap")
        self._trackers[source_index].skip(seq)
        self._gap_deadlines.pop((source_index, seq), None)

    @property
    def memory_bytes(self) -> int:
        return self._ring.size


class ReplicateSource:
    """Factory facade: opens the transport matching the flow options."""

    @staticmethod
    def open(registry: FlowRegistry, name: str, source_index: int):
        """Generator: open a replicate source endpoint."""
        descriptor = registry.descriptor(name)
        if descriptor.options.multicast:
            endpoint = yield from MulticastReplicateSource.open(
                registry, name, source_index)
        else:
            endpoint = yield from NaiveReplicateSource.open(
                registry, name, source_index)
        return endpoint


class ReplicateTarget:
    """Factory facade: opens the transport matching the flow options."""

    @staticmethod
    def open(registry: FlowRegistry, name: str, target_index: int):
        """Generator: open a replicate target endpoint."""
        descriptor = registry.descriptor(name)
        if descriptor.options.multicast:
            endpoint = yield from MulticastReplicateTarget.open(
                registry, name, target_index)
        else:
            endpoint = NaiveReplicateTarget.open(registry, name,
                                                 target_index)
        return endpoint
