"""Shuffle flows: DFI's central abstraction (paper Sections 5.1-5.3).

Each (source thread, target thread) pair owns a private channel consisting
of a source-side send ring and a target-side receive ring. Data moves with
one-sided RDMA writes; synchronization is footer-based (bandwidth mode) or
credit-based (latency mode), exactly as in the paper:

*Bandwidth mode* — tuples are batched into 8 KiB segments. Before writing
remote segment *n* the source must know it is writable; it learns this from
a pipelined RDMA read of segment *n+1*'s footer issued together with the
previous write, so the check is off the critical path. If the ring is full
the source polls the footer with a small random backoff. Writes are
signaled only on send-ring wrap-around (selective signaling).

*Latency mode* — segments hold exactly one tuple and are written
immediately. A credit counter on the target (incremented per consume)
bounds in-flight segments; the source refreshes its cached copy with an
asynchronous RDMA read when the local estimate drops below a threshold, so
the common-case push issues exactly one write and nothing else.
"""

from __future__ import annotations

from collections import deque
from struct import Struct as _Struct
from typing import TYPE_CHECKING

from repro.common.errors import (
    FlowAbortedError,
    FlowClosedError,
    FlowError,
    FlowPeerFailedError,
    FlowTimeoutError,
    QpFlushedError,
)
from repro.common import config as _config
from repro.core.backoff import traced_backoff
from repro.core.flowdef import (
    FLOW_END,
    FlowDescriptor,
    FlowType,
    Optimization,
)
from repro.core.registry import FlowRegistry, RingHandle
from repro.core.routing import key_hash_router
from repro.core.segment import (
    BLANK_FOOTER,
    FLAG_ABORTED,
    FLAG_CLOSED,
    FLAG_CONSUMABLE,
    FOOTER_SIZE,
    FOOTER_STRUCT,
    SegmentRing,
    footer_consumable,
    pack_footer,
    pack_footer_into,
)
from repro.obs import (
    BACKOFF,
    CREDIT,
    FAULT_DETECT,
    FLOW_CLOSE,
    FOOTER_POLL,
    PREREAD,
    REROUTE,
    SEG_CONSUME,
    SEG_WRITE,
    endpoint_obs,
)
from repro.core.writers import _congestion_grace
from repro.rdma.completion import Opcode, WorkRequest
from repro.rdma.nic import get_nic
from repro.simnet.congestion import stall_is_congestion

#: C-speed footer "used bytes" parse for the drain hot loop
#: (little-endian u32 at the footer head; see repro.core.segment).
_FOOTER_USED = _Struct("<I").unpack_from

#: Prebound footer encoder for the fused staging hot path, with the
#: flag word of a plain CONSUMABLE footer (source_index 0) computed
#: once through :func:`pack_footer_into` itself so any change to the
#: footer's flag packing stays authoritative.
_FOOTER_PACK_INTO = FOOTER_STRUCT.pack_into


def _consumable_word() -> int:
    scratch = bytearray(FOOTER_SIZE)
    pack_footer_into(scratch, 0, 0, FLAG_CONSUMABLE, 0)
    return FOOTER_STRUCT.unpack_from(scratch)[1]


_CONSUMABLE_WORD = _consumable_word()

if TYPE_CHECKING:
    from repro.simnet.node import Node


def segment_payload_size(descriptor: FlowDescriptor) -> int:
    """Per-segment payload bytes for a flow: the configured segment size in
    bandwidth mode, exactly one tuple in latency mode."""
    if descriptor.optimization is Optimization.LATENCY:
        return descriptor.latency_segment_size()
    size = descriptor.options.segment_size
    if size < descriptor.schema.tuple_size:
        raise FlowError(
            f"segment size {size} smaller than one tuple "
            f"({descriptor.schema.tuple_size} B)")
    return size


class _RingWriteWaiter:
    """Wakes a target thread when any of its receive rings is written.

    Real DFI busy-polls footer flags (a sub-100ns cache load). Simulating
    every load would swamp the event kernel, so we register write hooks on
    the ring regions and charge the profile's poll cost on each wakeup
    instead — same observable timing, constant event count.
    """

    def __init__(self, env, regions) -> None:
        self._env = env
        self._regions = list(regions)
        self._hooks: list = []

    def arm(self):
        event = self._env.event()
        fired = [False]

        def hook(_offset, _length):
            if not fired[0]:
                fired[0] = True
                event.succeed()

        for region in self._regions:
            region.add_write_hook(hook)
            self._hooks.append((region, hook))
        return event

    def disarm(self) -> None:
        for region, hook in self._hooks:
            region.remove_write_hook(hook)
        self._hooks.clear()


class BandwidthSourceChannel:
    """Source half of one bandwidth-optimized channel."""

    def __init__(self, node: "Node", descriptor: FlowDescriptor,
                 handle: RingHandle, channel_tag: tuple) -> None:
        self.node = node
        self.env = node.env
        self.profile = node.cluster.profile
        self.schema = descriptor.schema
        self.segment_payload = segment_payload_size(descriptor)
        nic = get_nic(node)
        self.qp = nic.create_qp(node.cluster.node(handle.node_id))
        # The C++ implementation keeps a full send ring so segment memory
        # stays untouched until the NIC finished its DMA. Writes are posted
        # zero-copy (``assume_stable=True``), so staging slots must stay
        # untouched until the simulated write commits. A 2N-slot staging
        # ring (N = source_segments) guarantees that: the wrap-around wait
        # before flush f with f % N == 0 implies every write up to f-1 has
        # committed, and a slot is only repacked 2N flushes after it was
        # posted — at which point the latest wrap wait already covered it.
        # Memory accounting still reports the N-segment ring the *protocol*
        # requires (the §6.1.4 unit); the extra staging is an emulation
        # artifact of not having real DMA-completion reuse.
        self._ring_segments = descriptor.options.source_segments
        self._pipelined_preread = descriptor.options.pipelined_footer_read
        self._slot_size = self.segment_payload + FOOTER_SIZE
        self._staging_slots = 2 * self._ring_segments
        self._staging = bytearray(self._staging_slots * self._slot_size)
        self._staging_view = memoryview(self._staging)
        self._staging_base = 0
        self._flushes = 0
        self._scratch = nic.register_memory(FOOTER_SIZE)
        self.remote = handle
        self._remote_slot = handle.segment_size + FOOTER_SIZE
        self._rng = node.backoff_rng
        self._max_retries = descriptor.options.max_backoff_retries
        self._local_index = 0
        self._remote_index = 0
        self._used = 0
        self._seq = 0
        self._cpu_debt = 0.0
        self._pending_footer_read = None
        self._wrap_wr = None
        # Doorbell trains: whole-segment batches ride one doorbell ring
        # with a single *windowed* footer read standing in for the
        # per-segment pre-reads. The window is capped at half the target
        # ring so the source and target keep double-buffering (a window
        # spanning the full ring would serialize the pipeline). Trains
        # require tuple-aligned segments (the whole slot goes out as one
        # contiguous payload+footer write).
        self._train_window = max(1, min(self._ring_segments,
                                        handle.segment_count // 2))
        self._train_ok = (self.segment_payload % self.schema.tuple_size == 0)
        #: Remote slots proven writable by the last windowed footer read.
        self._window_left = 0
        #: In-flight windowed footer read (pipelined with the last train).
        self._pending_window_read = None
        self.closed = False
        #: Segments transferred over the wire (stats).
        self.segments_sent = 0
        #: Tuples pushed into this channel (stats).
        self.tuples_sent = 0
        # Observability: cache the registry/tracer at construction so the
        # disabled hot path pays one ``is None`` check (see repro.obs).
        # The push/flush counters mirror the always-on tallies above, so
        # they are harvested at read time instead of bumped per event.
        self._metrics, self._tracer = endpoint_obs(
            node, channel_tag[0], descriptor.options)
        if self._metrics is not None:
            self._metrics.add_collector(self._collect_obs)
        plane = node.cluster.obs
        self._pending_segments = (plane.pending_segments
                                  if plane is not None else None)
        self._tid = f"s{channel_tag[1]}->t{channel_tag[2]}"
        self._flow = channel_tag[0]
        self._causal = node.causal
        if self._causal is not None:
            self._causal.open(self._flow, node.node_id)
        # Steady-state event elision (DESIGN.md, "Steady-state event
        # elision"): route this channel's doorbell trains through the
        # fused macro-event path when nothing can observe the machinery
        # difference — telemetry off and source/target on the same shard
        # lane. The *dynamic* parts of the steady-state predicate (fault
        # plan, congestion plane) are re-checked inside
        # ``post_write_train_fused`` on every flush, so a plane turning
        # active de-elides the very next train.
        target_node = node.cluster.node(handle.node_id)
        self._fused = (_config.FASTPATH_ENABLED
                       and self._metrics is None
                       and self._tracer is None
                       and (node.env.shard_count == 1
                            or node._shard == target_node._shard))
        #: Remote ring region, resolved once on the first fused train (the
        #: rkey registration lives as long as the flow, so the lookup and
        #: the whole-ring range check are loop-invariant).
        self._remote_region = None
        #: Reused entry list for fused trains (cleared per flush; the
        #: macro-event copies nothing out of it after posting returns).
        self._fused_entries = []

    def _collect_obs(self):
        """Read-time counter harvest (see MetricsRegistry.add_collector)."""
        return (("core.tuples_pushed", self.tuples_sent),
                ("core.segments_flushed", self.segments_sent))

    @property
    def memory_bytes(self) -> int:
        return self._ring_segments * (self.segment_payload + FOOTER_SIZE)

    def push(self, values: tuple):
        """Generator: append one tuple; flushes when the segment fills.

        Matches the paper's asynchronous push — it returns right after the
        copy into the send buffer unless the segment is full *and* the
        remote ring has no writable slot.
        """
        if self.closed:
            raise FlowClosedError("push on a closed flow source")
        self.schema.pack_into(self._staging,
                              self._staging_base + self._used, values)
        self._used += self.schema.tuple_size
        self._cpu_debt += (self.profile.cpu_tuple_overhead
                           + self.schema.tuple_size
                           * self.profile.cpu_copy_per_byte)
        self.tuples_sent += 1
        if self._used + self.schema.tuple_size > self.segment_payload:
            yield from self._flush(0)

    def push_batch(self, tuples):
        """Generator: append a batch of tuples, flushing as segments fill.

        The same per-tuple CPU debt accrues as for one-by-one pushes, but
        it is charged as **one coalesced compute timeout per batch** (plus
        the post cost of every flush the batch triggers) instead of one
        kernel event per flush, and each filled segment is packed with a
        single ``struct`` call — that is where the wall-clock win comes
        from. ``tuples`` must be a sequence (it is sliced per segment).
        """
        if self.closed:
            raise FlowClosedError("push on a closed flow source")
        if not isinstance(tuples, (list, tuple)):
            tuples = list(tuples)
        total = len(tuples)
        if not total:
            return
        tuple_size = self.schema.tuple_size
        per_tuple = (self.profile.cpu_tuple_overhead
                     + tuple_size * self.profile.cpu_copy_per_byte)
        capacity = self.segment_payload
        # One coalesced CPU charge: leftover debt from earlier pushes, the
        # batch's per-tuple work, and the post cost of every flush this
        # batch will trigger (a flush fires each time the staged tuple
        # count reaches a full segment).
        seg_tuples = capacity // tuple_size
        flushes = (self._used // tuple_size + total) // seg_tuples
        debt = (self._cpu_debt + total * per_tuple
                + flushes * self.profile.cpu_post_cost)
        self._cpu_debt = 0.0
        yield self.node.compute(debt)
        index = 0
        while index < total:
            if (self._train_ok and self._used == 0
                    and total - index >= seg_tuples):
                # Whole segments remain: assemble a doorbell train. The
                # common case — window in hand, no wrap WQE to reap —
                # skips the _train_begin generator entirely.
                if (self._window_left
                        and (self._local_index or self._wrap_wr is None)):
                    cap = min(self._window_left,
                              self._ring_segments - self._local_index)
                else:
                    cap = yield from self._train_begin()
                cap = min(cap, (total - index) // seg_tuples)
                if self._fused and self.qp.steady_state():
                    entries = self._fused_entries
                    entries.clear()
                    for _ in range(cap):
                        self.schema.pack_many_into(
                            self._staging, self._staging_base,
                            tuples[index:index + seg_tuples])
                        index += seg_tuples
                        self._train_stage_fused(entries)
                    self.tuples_sent += cap * seg_tuples
                    self._train_finish_fused(entries)
                    continue
                for _ in range(cap):
                    self.schema.pack_many_into(
                        self._staging, self._staging_base,
                        tuples[index:index + seg_tuples])
                    index += seg_tuples
                    self._train_stage_full_segment()
                self.tuples_sent += cap * seg_tuples
                self._train_finish()
                continue
            room = (capacity - self._used) // tuple_size
            take = min(room, total - index)
            if take:
                self.schema.pack_many_into(
                    self._staging, self._staging_base + self._used,
                    tuples[index:index + take])
                self._used += take * tuple_size
                self.tuples_sent += take
                index += take
            if self._used + tuple_size > capacity:
                if self._train_ok and self._used == capacity:
                    yield from self._flush_train_single()
                else:
                    yield from self._flush(0, charge_cpu=False)

    def push_bytes(self, data):
        """Generator: append pre-packed tuple bytes — no per-tuple type
        interpretation at all, just slab copies into the staging segment.

        ``data`` must hold a whole number of tuples packed in this flow's
        schema. CPU debt is charged exactly as if the tuples had been
        pushed individually.
        """
        if self.closed:
            raise FlowClosedError("push on a closed flow source")
        tuple_size = self.schema.tuple_size
        size = len(data)
        if size % tuple_size:
            raise FlowError(
                f"push_bytes got {size} bytes, not a multiple of the "
                f"{tuple_size}-byte tuple size")
        if not size:
            return
        per_tuple = (self.profile.cpu_tuple_overhead
                     + tuple_size * self.profile.cpu_copy_per_byte)
        total = size // tuple_size
        capacity = self.segment_payload
        seg_tuples = capacity // tuple_size
        flushes = (self._used // tuple_size + total) // seg_tuples
        debt = (self._cpu_debt + total * per_tuple
                + flushes * self.profile.cpu_post_cost)
        self._cpu_debt = 0.0
        yield self.node.compute(debt)
        view = memoryview(data)
        index = 0
        while index < size:
            if (self._train_ok and self._used == 0
                    and size - index >= capacity):
                if (self._window_left
                        and (self._local_index or self._wrap_wr is None)):
                    cap = min(self._window_left,
                              self._ring_segments - self._local_index)
                else:
                    cap = yield from self._train_begin()
                cap = min(cap, (size - index) // capacity)
                if self._fused and self.qp.steady_state():
                    entries = self._fused_entries
                    entries.clear()
                    for _ in range(cap):
                        base = self._staging_base
                        self._staging[base:base + capacity] = \
                            view[index:index + capacity]
                        index += capacity
                        self._train_stage_fused(entries)
                    self.tuples_sent += cap * seg_tuples
                    self._train_finish_fused(entries)
                    continue
                for _ in range(cap):
                    base = self._staging_base
                    self._staging[base:base + capacity] = \
                        view[index:index + capacity]
                    index += capacity
                    self._train_stage_full_segment()
                self.tuples_sent += cap * seg_tuples
                self._train_finish()
                continue
            room = ((capacity - self._used) // tuple_size) * tuple_size
            take = min(room, size - index)
            if take:
                base = self._staging_base + self._used
                self._staging[base:base + take] = view[index:index + take]
                self._used += take
                self.tuples_sent += take // tuple_size
                index += take
            if self._used + tuple_size > capacity:
                if self._train_ok and self._used == capacity:
                    yield from self._flush_train_single()
                else:
                    yield from self._flush(0, charge_cpu=False)

    def close(self):
        """Generator: flush remaining tuples, send the close marker, and
        wait for it to be acknowledged."""
        wr = yield from self.begin_close()
        if wr is not None and not wr.done.triggered:
            yield wr.done

    def begin_close(self):
        """Generator: post the close marker without waiting for its ack
        (lets a source close many channels concurrently)."""
        if self.closed:
            return None
        wr = yield from self._flush(FLAG_CLOSED)
        self.closed = True
        if self._tracer is not None:
            self._tracer.emit(self.env.now, FLOW_CLOSE,
                              self.node.node_id, self._tid, None)
        if self._causal is not None:
            self._causal.close(self._flow, self.node.node_id)
        return wr

    def abort(self):
        """Generator: abort the channel — staged tuples are dropped and
        the target's consume path raises FlowAbortedError."""
        if self.closed:
            return
        self._used = 0  # discard staged tuples: abort voids delivery
        wr = yield from self._flush(FLAG_CLOSED | FLAG_ABORTED)
        self.closed = True
        if self._tracer is not None:
            self._tracer.emit(self.env.now, FLOW_CLOSE, self.node.node_id,
                              self._tid, {"aborted": True})
        if self._causal is not None:
            self._causal.close(self._flow, self.node.node_id)
        if not wr.done.triggered:
            yield wr.done

    def release(self) -> None:
        """Deregister the footer-read scratch region. Called by the owning
        source once the channel's close/abort marker is acknowledged — a
        closed channel posts no more reads, and a flow-cycling cluster
        must shed every per-channel NIC region (``tests/test_scale_memory``
        pins the steady state). Idempotent."""
        if self._scratch is not None:
            get_nic(self.node).deregister_memory(self._scratch.rkey)
            self._scratch = None

    def _flush(self, extra_flags: int, charge_cpu: bool = True):
        # Charge the CPU work accumulated by pushes plus the post cost
        # (``push_batch`` pre-charges both as one coalesced timeout and
        # passes ``charge_cpu=False``).
        if charge_cpu:
            debt = self._cpu_debt + self.profile.cpu_post_cost
            self._cpu_debt = 0.0
            yield self.node.compute(debt)
        # Selective signaling: on wrap-around ensure the previous cycle's
        # signaled write finished before its slot is reused.
        if self._local_index == 0 and self._wrap_wr is not None:
            if not self._wrap_wr.done.triggered:
                yield self._wrap_wr.done
            self._wrap_wr = None
            self.qp.send_cq.poll(max_entries=64)
        # A windowed proof from a preceding train covers this slot too —
        # and the window read pipelined behind the last train proves slots
        # from the *pre-flush* remote index, so it goes stale here.
        self._pending_window_read = None
        if self._window_left > 0:
            self._window_left -= 1
        else:
            yield from self._ensure_remote_writable()
        flags = FLAG_CONSUMABLE | extra_flags
        signaled = self._local_index == self._ring_segments - 1
        if extra_flags & FLAG_CLOSED:
            signaled = True
        remote_offset = self._remote_index * self._remote_slot
        base = self._staging_base
        if self._used == self.segment_payload:
            # Full segment: the footer is packed in place right after the
            # payload, and the whole slot goes out as one zero-copy write
            # (the staging ring keeps the slot stable until it commits).
            pack_footer_into(self._staging, base + self._used,
                             self._used, flags, self._seq)
            wr = self.qp.post_write(
                self._staging_view[base:base + self._used + FOOTER_SIZE],
                self.remote.rkey, remote_offset, signaled=signaled,
                assume_stable=True)
        else:
            # Partial segment (final flush): write only the used payload,
            # then the footer at its fixed end-of-segment position. RC
            # guarantees per-QP write ordering, so the footer still lands
            # strictly after the payload.
            if self._used:
                self.qp.post_write(
                    self._staging_view[base:base + self._used],
                    self.remote.rkey, remote_offset, signaled=False,
                    assume_stable=True)
            wr = self.qp.post_write(
                pack_footer(self._used, flags, self._seq), self.remote.rkey,
                remote_offset + self.remote.segment_size,
                signaled=signaled)
        if signaled:
            self._wrap_wr = wr
        self.segments_sent += 1
        metrics = self._metrics
        if metrics is not None:
            now = self.env.now
            self._pending_segments[
                (self.remote.node_id, self.remote.rkey, self._seq)] = now
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(now, SEG_WRITE, self.node.node_id, self._tid,
                            {"seq": self._seq, "bytes": self._used})
        self._seq += 1
        # Pipeline the footer pre-read of the *next* remote segment with
        # this write (paper Section 5.2).
        next_remote = (self._remote_index + 1) % self.remote.segment_count
        if self._pipelined_preread:
            self._pending_footer_read = self.qp.post_read(
                self._scratch, 0, self.remote.rkey,
                next_remote * self._remote_slot + self.remote.segment_size,
                FOOTER_SIZE, signaled=False)
        self._remote_index = next_remote
        self._local_index = (self._local_index + 1) % self._ring_segments
        self._used = 0
        self._flushes += 1
        self._staging_base = (self._flushes % self._staging_slots
                              ) * self._slot_size
        return wr

    # -- doorbell trains --------------------------------------------------
    def _train_begin(self):
        """Generator: establish the right to write a train of remote
        slots. Returns the train cap: remote slots proven writable,
        bounded by the send ring's wrap-around point (the signaled
        wrap WQE must be the last of its train)."""
        if self._local_index == 0 and self._wrap_wr is not None:
            if not self._wrap_wr.done.triggered:
                yield self._wrap_wr.done
            self._wrap_wr = None
            self.qp.send_cq.poll(max_entries=64)
        if not self._window_left:
            yield from self._acquire_train_window()
        return min(self._window_left,
                   self._ring_segments - self._local_index)

    def _acquire_train_window(self):
        """Generator: make ``_window_left`` positive with one footer read.

        Reading the footer ``W - 1`` slots ahead of the current remote
        index proves the whole ``W``-slot window: the target consumes in
        ring order and blanks each footer as it drains, so a
        non-consumable footer at slot ``r + W - 1`` implies every slot in
        ``r .. r + W - 1`` has been drained (or never written).
        """
        if self._window_left:
            return
        window = self._train_window
        wr = self._pending_window_read
        self._pending_window_read = None
        if wr is None:
            # A leftover per-segment pre-read proves exactly one slot —
            # the current one (window of 1).
            wr = self._pending_footer_read
            self._pending_footer_read = None
            if wr is not None:
                window = 1
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("core.preread_hits" if wr is not None
                        else "core.preread_misses")
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(self.env.now, PREREAD, self.node.node_id,
                            self._tid, {"hit": wr is not None})
        if wr is None:
            wr = self._read_footer_ahead(window)
        attempt = 0
        while True:
            if wr.done.triggered:
                data = wr.done.value
            else:
                wait_from = self.env.now
                data = yield wr.done
                if self._causal is not None:
                    self._causal.edge(self.env.now, wait_from, "credit_stall",
                                      self.node.node_id, self._tid,
                                      self._flow)
            if not footer_consumable(data):
                self._window_left = window
                return
            if (self._max_retries is not None
                    and attempt >= self._max_retries
                    and not _congestion_grace(self.node,
                                              self.remote.node_id, metrics)):
                raise FlowTimeoutError(
                    f"remote ring on node {self.remote.node_id} still "
                    f"full after {attempt} backoff rounds")
            if metrics is not None:
                metrics.inc("core.backoff_rounds")
                tracer = self._tracer
                if tracer is not None:
                    tracer.emit(self.env.now, BACKOFF, self.node.node_id,
                                self._tid, {"attempt": attempt})
            yield self.env.timeout(traced_backoff(
                self._rng, attempt, self._causal, self.node.node_id,
                self._tid, self._flow))
            attempt += 1
            window = self._train_window
            wr = self._read_footer_ahead(window)
            if metrics is not None:
                tracer = self._tracer
                if tracer is not None:
                    tracer.emit(self.env.now, FOOTER_POLL,
                                self.node.node_id, self._tid,
                                {"attempt": attempt})

    def _train_stage_full_segment(self):
        """Stage one full staging slot as a doorbell-deferred WQE (payload
        and footer as one contiguous zero-copy write) and advance the ring
        state. ``ring_doorbell`` submits the whole train later."""
        base = self._staging_base
        pack_footer_into(self._staging, base + self.segment_payload,
                         self.segment_payload, FLAG_CONSUMABLE, self._seq)
        signaled = self._local_index == self._ring_segments - 1
        wr = self.qp.post_write(
            self._staging_view[base:base + self._slot_size],
            self.remote.rkey, self._remote_index * self._remote_slot,
            signaled=signaled, assume_stable=True, doorbell=False)
        if signaled:
            self._wrap_wr = wr
        self.segments_sent += 1
        metrics = self._metrics
        if metrics is not None:
            now = self.env.now
            self._pending_segments[
                (self.remote.node_id, self.remote.rkey, self._seq)] = now
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(now, SEG_WRITE, self.node.node_id, self._tid,
                            {"seq": self._seq, "train": True})
        self._seq += 1
        self._remote_index = (self._remote_index + 1
                              ) % self.remote.segment_count
        self._local_index = (self._local_index + 1) % self._ring_segments
        self._flushes += 1
        self._staging_base = (self._flushes % self._staging_slots
                              ) * self._slot_size
        self._window_left -= 1

    def _train_stage_fused(self, entries) -> None:
        """Stage one full staging slot directly as a fused train entry,
        skipping ``post_write``'s staging machinery: the steady-state
        predicate holds (caller checked ``qp.steady_state()``), so no
        telemetry block runs, the remote region is the cached
        loop-invariant one, and unsignaled WQEs — which the ring protocol
        drops without ever observing — get no WorkRequest at all. Ring
        state advances exactly as in :meth:`_train_stage_full_segment`."""
        base = self._staging_base
        _FOOTER_PACK_INTO(self._staging, base + self.segment_payload,
                          self.segment_payload, _CONSUMABLE_WORD, self._seq)
        if self._local_index == self._ring_segments - 1:
            wr = WorkRequest(self.env, None, Opcode.WRITE, True)
            self._wrap_wr = wr
        else:
            wr = None
        entries.append((wr, self._slot_size,
                        ((0, self._staging_view[base:base + self._slot_size]),),
                        self._remote_index * self._remote_slot))
        self.segments_sent += 1
        self._seq += 1
        self._remote_index = (self._remote_index + 1
                              ) % self.remote.segment_count
        self._local_index = (self._local_index + 1) % self._ring_segments
        self._flushes += 1
        self._staging_base = (self._flushes % self._staging_slots
                              ) * self._slot_size
        self._window_left -= 1

    def _train_finish_fused(self, entries) -> None:
        """Fused counterpart of :meth:`_train_finish`: post the directly
        built entries through ``post_ring_train_fused`` (one macro-event
        arm), then pipeline the next window read as usual."""
        region = self._remote_region
        if region is None:
            region = self._resolve_remote_region()
        self.qp.post_ring_train_fused(entries, region)
        self._pending_footer_read = None
        if self._window_left == 0 and self._pipelined_preread:
            self._pending_window_read = self._read_footer_ahead(
                self._train_window)

    def _resolve_remote_region(self):
        """One-time lookup + whole-ring range check for the fused path
        (``post_write`` re-checks per WQE; fused trains only ever target
        ring slots, so one bound proof covers every offset)."""
        region = self.qp._get_remote_nic().region(self.remote.rkey)
        region.check_range(0, self.remote.segment_count * self._remote_slot)
        self._remote_region = region
        return region

    def _flush_train_single(self):
        """Generator: flush the (full) current staging slot as a train of
        one. Even a one-WQE train wins over the eager ``_flush``: the
        windowed proof replaces the per-segment footer pre-read (one READ
        round-trip per window instead of per segment) and the write
        expands lazily instead of arming three timers."""
        if self._local_index == 0 and self._wrap_wr is not None:
            if not self._wrap_wr.done.triggered:
                yield self._wrap_wr.done
            self._wrap_wr = None
            self.qp.send_cq.poll(max_entries=64)
        if not self._window_left:
            yield from self._acquire_train_window()
        if self._fused and self.qp.steady_state():
            entries = self._fused_entries
            entries.clear()
            self._train_stage_fused(entries)
            self._used = 0
            self._train_finish_fused(entries)
            return
        self._train_stage_full_segment()
        self._used = 0
        self._train_finish()

    def _train_finish(self) -> None:
        """Ring the doorbell for the staged train. When the train used up
        the window, pipeline the next window's footer read behind it —
        the train analogue of the paper's per-segment footer pre-read."""
        self.qp.ring_doorbell(fused=self._fused)
        # Any per-segment pre-read refers to a slot the train wrote over.
        self._pending_footer_read = None
        if self._window_left == 0 and self._pipelined_preread:
            self._pending_window_read = self._read_footer_ahead(
                self._train_window)

    def _read_footer_ahead(self, window: int):
        """Unsignaled read of the footer ``window - 1`` slots ahead of the
        current remote index (see :meth:`_acquire_train_window`)."""
        slot = (self._remote_index + window - 1) % self.remote.segment_count
        return self.qp.post_read(
            self._scratch, 0, self.remote.rkey,
            slot * self._remote_slot + self.remote.segment_size,
            FOOTER_SIZE, signaled=False)

    def _ensure_remote_writable(self):
        wr = self._pending_footer_read
        self._pending_footer_read = None
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("core.preread_hits" if wr is not None
                        else "core.preread_misses")
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(self.env.now, PREREAD, self.node.node_id,
                            self._tid, {"hit": wr is not None})
        if wr is None:
            wr = self._read_current_remote_footer()
        attempt = 0
        while True:
            if wr.done.triggered:
                data = wr.done.value
            else:
                wait_from = self.env.now
                data = yield wr.done
                if self._causal is not None:
                    self._causal.edge(self.env.now, wait_from, "credit_stall",
                                      self.node.node_id, self._tid,
                                      self._flow)
            if not footer_consumable(data):
                return
            # Remote ring full: back off (exponential + jitter), then
            # re-poll the footer.
            if (self._max_retries is not None
                    and attempt >= self._max_retries
                    and not _congestion_grace(self.node,
                                              self.remote.node_id, metrics)):
                raise FlowTimeoutError(
                    f"remote ring on node {self.remote.node_id} still "
                    f"full after {attempt} backoff rounds")
            if metrics is not None:
                metrics.inc("core.backoff_rounds")
                tracer = self._tracer
                if tracer is not None:
                    tracer.emit(self.env.now, BACKOFF, self.node.node_id,
                                self._tid, {"attempt": attempt})
            yield self.env.timeout(traced_backoff(
                self._rng, attempt, self._causal, self.node.node_id,
                self._tid, self._flow))
            attempt += 1
            wr = self._read_current_remote_footer()

    def _read_current_remote_footer(self):
        footer_offset = (self._remote_index * self._remote_slot
                         + self.remote.segment_size)
        return self.qp.post_read(self._scratch, 0, self.remote.rkey,
                                 footer_offset, FOOTER_SIZE, signaled=False)


class LatencySourceChannel:
    """Source half of one latency-optimized channel (credit-based)."""

    def __init__(self, node: "Node", descriptor: FlowDescriptor,
                 handle: RingHandle, channel_tag: tuple) -> None:
        if handle.credit_rkey is None:
            raise FlowError("latency channels need a credit counter handle")
        self.node = node
        self.env = node.env
        self.profile = node.cluster.profile
        self.schema = descriptor.schema
        self.segment_payload = segment_payload_size(descriptor)
        nic = get_nic(node)
        self.qp = nic.create_qp(node.cluster.node(handle.node_id))
        self._scratch = nic.register_memory(8)
        self.remote = handle
        self._remote_slot = handle.segment_size + FOOTER_SIZE
        # Zero-copy staging: one slot per remote segment. A slot posted at
        # send s is only repacked at send s + segment_count, and holding a
        # credit then implies the target consumed segment s — which in turn
        # implies the write had committed. So the slot is stable for the
        # write's whole lifetime.
        self._slot_size = self.segment_payload + FOOTER_SIZE
        self._staging = bytearray(handle.segment_count * self._slot_size)
        self._staging_view = memoryview(self._staging)
        self._rng = node.backoff_rng
        self._max_retries = descriptor.options.max_backoff_retries
        self._threshold = descriptor.options.credit_threshold
        self._sent = 0
        self._cached_consumed = 0
        self._pending_credit_read = None
        self._credit_read_issued = 0.0
        self.closed = False
        self.segments_sent = 0
        self.tuples_sent = 0
        self._metrics, self._tracer = endpoint_obs(
            node, channel_tag[0], descriptor.options)
        if self._metrics is not None:
            self._metrics.add_collector(self._collect_obs)
        plane = node.cluster.obs
        self._pending_segments = (plane.pending_segments
                                  if plane is not None else None)
        self._tid = f"s{channel_tag[1]}->t{channel_tag[2]}"
        self._flow = channel_tag[0]
        self._causal = node.causal
        if self._causal is not None:
            self._causal.open(self._flow, node.node_id)

    def _collect_obs(self):
        """Read-time counter harvest (see MetricsRegistry.add_collector)."""
        return (("core.tuples_pushed", self.tuples_sent),
                ("core.segments_flushed", self.segments_sent))

    @property
    def memory_bytes(self) -> int:
        return 8  # only the credit-read scratch; no local ring is needed

    @property
    def _available_credits(self) -> int:
        return self.remote.segment_count - (self._sent
                                            - self._cached_consumed)

    def push(self, values: tuple):
        """Generator: transfer one tuple immediately (one RDMA write)."""
        if self.closed:
            raise FlowClosedError("push on a closed flow source")
        cost = (self.profile.cpu_tuple_overhead
                + self.schema.tuple_size * self.profile.cpu_copy_per_byte
                + self.profile.cpu_post_cost)
        yield self.node.compute(cost)
        yield from self._acquire_credit()
        # Pack straight into the staging slot — no intermediate bytes.
        base = self._slot_base()
        self.schema.pack_into(self._staging, base, values)
        self._finish_slot(base, self.schema.tuple_size, FLAG_CONSUMABLE)
        self.tuples_sent += 1
        if (self._available_credits <= self._threshold
                and self._pending_credit_read is None):
            self._refresh_credit_async()

    def push_batch(self, tuples):
        """Generator: push a batch of tuples. Latency mode is inherently
        per-tuple (one segment each, credits acquired per write), so this
        is a loop over :meth:`push` with identical simulated timing."""
        for values in tuples:
            yield from self.push(values)

    def push_bytes(self, data):
        """Generator: push pre-packed tuple bytes, one segment per tuple."""
        if self.closed:
            raise FlowClosedError("push on a closed flow source")
        tuple_size = self.schema.tuple_size
        size = len(data)
        if size % tuple_size:
            raise FlowError(
                f"push_bytes got {size} bytes, not a multiple of the "
                f"{tuple_size}-byte tuple size")
        cost = (self.profile.cpu_tuple_overhead
                + tuple_size * self.profile.cpu_copy_per_byte
                + self.profile.cpu_post_cost)
        view = memoryview(data)
        for start in range(0, size, tuple_size):
            yield self.node.compute(cost)
            yield from self._acquire_credit()
            base = self._slot_base()
            self._staging[base:base + tuple_size] = (
                view[start:start + tuple_size])
            self._finish_slot(base, tuple_size, FLAG_CONSUMABLE)
            self.tuples_sent += 1
            if (self._available_credits <= self._threshold
                    and self._pending_credit_read is None):
                self._refresh_credit_async()

    def close(self):
        """Generator: send the close marker and wait for its ack."""
        wr = yield from self.begin_close()
        if wr is not None and not wr.done.triggered:
            yield wr.done

    def begin_close(self):
        """Generator: post the close marker without waiting for its ack."""
        if self.closed:
            return None
        yield self.node.compute(self.profile.cpu_post_cost)
        yield from self._acquire_credit()
        wr = self._write_slot(b"", FLAG_CONSUMABLE | FLAG_CLOSED,
                              signaled=True)
        self.closed = True
        if self._tracer is not None:
            self._tracer.emit(self.env.now, FLOW_CLOSE,
                              self.node.node_id, self._tid, None)
        if self._causal is not None:
            self._causal.close(self._flow, self.node.node_id)
        return wr

    def abort(self):
        """Generator: abort the channel (targets raise
        FlowAbortedError)."""
        if self.closed:
            return
        yield self.node.compute(self.profile.cpu_post_cost)
        yield from self._acquire_credit()
        wr = self._write_slot(
            b"", FLAG_CONSUMABLE | FLAG_CLOSED | FLAG_ABORTED,
            signaled=True)
        self.closed = True
        if self._tracer is not None:
            self._tracer.emit(self.env.now, FLOW_CLOSE, self.node.node_id,
                              self._tid, {"aborted": True})
        if self._causal is not None:
            self._causal.close(self._flow, self.node.node_id)
        if not wr.done.triggered:
            yield wr.done

    def release(self) -> None:
        """Deregister the credit-read scratch region once the channel is
        closed (see ``BandwidthSourceChannel.release``). An in-flight
        asynchronous credit read holds the region object itself, not the
        rkey, so dropping the NIC table entry is safe. Idempotent."""
        if self._scratch is not None:
            get_nic(self.node).deregister_memory(self._scratch.rkey)
            self._scratch = None

    def _slot_base(self) -> int:
        """Staging-buffer offset of the slot for the next send."""
        return (self._sent % self.remote.segment_count) * self._slot_size

    def _finish_slot(self, base: int, used: int, flags: int,
                     signaled: bool = False):
        """Pad + footer the staged slot at ``base`` and post it zero-copy."""
        if used < self.segment_payload:
            # Close/abort markers: zero the unused payload so the wire
            # bytes match the padded form the protocol defines.
            self._staging[base + used:base + self.segment_payload] = (
                bytes(self.segment_payload - used))
        pack_footer_into(self._staging, base + self.segment_payload,
                         used, flags, self._sent)
        wr = self.qp.post_write(
            self._staging_view[base:base + self._slot_size],
            self.remote.rkey,
            (self._sent % self.remote.segment_count) * self._remote_slot,
            signaled=signaled, assume_stable=True)
        metrics = self._metrics
        if metrics is not None:
            now = self.env.now
            self._pending_segments[
                (self.remote.node_id, self.remote.rkey, self._sent)] = now
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(now, SEG_WRITE, self.node.node_id, self._tid,
                            {"seq": self._sent, "bytes": used})
        self._sent += 1
        self.segments_sent += 1
        return wr

    def _write_slot(self, payload: bytes, flags: int, signaled: bool = False):
        base = self._slot_base()
        used = len(payload)
        if used:
            self._staging[base:base + used] = payload
        return self._finish_slot(base, used, flags, signaled)

    def _refresh_credit_async(self) -> None:
        if self._metrics is not None:
            self._credit_read_issued = self.env.now
        self._pending_credit_read = self.qp.post_read(
            self._scratch, 0, self.remote.credit_rkey,
            self.remote.credit_offset, 8, signaled=False)

    def _acquire_credit(self):
        metrics = self._metrics
        # Harvest a finished asynchronous refresh first.
        pending = self._pending_credit_read
        if pending is not None and pending.done.triggered:
            self._apply_credit(pending.done.value)
            self._pending_credit_read = None
            if metrics is not None:
                metrics.observe("core.credit_rtt",
                                self.env.now - self._credit_read_issued)
        attempt = 0
        while self._available_credits <= 0:
            if metrics is not None:
                metrics.inc("core.credit_stalls")
            if self._pending_credit_read is None:
                self._refresh_credit_async()
            wait_from = self.env.now
            data = yield self._pending_credit_read.done
            if self._causal is not None and self.env.now > wait_from:
                self._causal.edge(self.env.now, wait_from, "credit_stall",
                                  self.node.node_id, self._tid, self._flow)
            self._pending_credit_read = None
            self._apply_credit(data)
            if metrics is not None:
                metrics.observe("core.credit_rtt",
                                self.env.now - self._credit_read_issued)
                tracer = self._tracer
                if tracer is not None:
                    tracer.emit(self.env.now, CREDIT, self.node.node_id,
                                self._tid,
                                {"credits": self._available_credits})
            if self._available_credits <= 0:
                if (self._max_retries is not None
                        and attempt >= self._max_retries
                        and not _congestion_grace(
                            self.node, self.remote.node_id, metrics)):
                    raise FlowTimeoutError(
                        f"no credit from node {self.remote.node_id} "
                        f"after {attempt} backoff rounds")
                if metrics is not None:
                    metrics.inc("core.backoff_rounds")
                    tracer = self._tracer
                    if tracer is not None:
                        tracer.emit(self.env.now, BACKOFF,
                                    self.node.node_id, self._tid,
                                    {"attempt": attempt})
                yield self.env.timeout(traced_backoff(
                    self._rng, attempt, self._causal, self.node.node_id,
                    self._tid, self._flow))
                attempt += 1

    def _apply_credit(self, data: bytes) -> None:
        consumed = int.from_bytes(data, "little")
        if consumed > self._cached_consumed:
            self._cached_consumed = consumed


class TargetChannel:
    """Target half of one channel: a receive ring drained in ring order."""

    def __init__(self, node: "Node", descriptor: FlowDescriptor,
                 ring: SegmentRing, credit_region, credit_offset: int) -> None:
        self.node = node
        self.schema = descriptor.schema
        self.ring = ring
        self._credit_region = credit_region
        self._credit_offset = credit_offset
        self._track_credits = (descriptor.optimization
                               is Optimization.LATENCY)
        #: Publish the consumed counter once per :meth:`drain` (latency
        #: mode) instead of once per segment. Both placements are
        #: observationally identical — a drain runs inside one event
        #: continuation, so no remote credit read can sample between the
        #: per-segment writes — but the toggle lets tests prove that.
        self.credit_coalescing = True
        self._footer_offsets = tuple(ring.footer_offset(index)
                                     for index in range(ring.segment_count))
        self._index = 0
        self._consumed = 0
        self.done = False
        self.aborted = False
        self.tuples_received = 0
        self._metrics, self._tracer = endpoint_obs(
            node, descriptor.name, descriptor.options)
        if self._metrics is not None:
            self._metrics.add_collector(self._collect_obs)
        plane = node.cluster.obs
        self._pending_segments = (plane.pending_segments
                                  if plane is not None else None)
        # Histograms cached lazily on first sample (per-segment sites are
        # hot enough for the observe() name lookup to show in the bench).
        self._seg_latency_hist = None
        self._drain_hist = None
        self._tid = f"t<-s{credit_offset // 8}"
        self._flow = descriptor.name
        self._causal = node.causal
        if self._causal is not None:
            self._causal.open(self._flow, node.node_id)

    def _collect_obs(self):
        """Read-time counter harvest (see MetricsRegistry.add_collector)."""
        return (("core.tuples_consumed", self.tuples_received),
                ("core.segments_consumed", self._consumed))

    @property
    def memory_bytes(self) -> int:
        return self.ring.total_bytes

    def _note_segment(self, seq: int, tuples: int, now: float) -> None:
        """Per-segment metrics bookkeeping (called only with metrics on):
        the write->consume latency pop and the SEG_CONSUME trace event
        (the consume counters are harvested at read time from the
        always-on ``tuples_received``/``_consumed`` tallies)."""
        metrics = self._metrics
        stamp = self._pending_segments.pop(
            (self.node.node_id, self.ring.region.rkey, seq), None)
        if stamp is not None:
            hist = self._seg_latency_hist
            if hist is None:
                hist = self._seg_latency_hist = metrics.histogram(
                    "core.seg_latency")
            hist.record(now - stamp)
            if self._causal is not None:
                # Segment-span context edge: write stamp -> consume time.
                # Non-walkable ("seg" is not in WALK_CATEGORIES) — it feeds
                # the straggler ranking, not the blame decomposition.
                self._causal.edge(now, stamp, "seg", self.node.node_id,
                                  self._tid, self._flow)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(now, SEG_CONSUME, self.node.node_id, self._tid,
                        {"seq": seq, "tuples": tuples})

    def poll(self):
        """Check the current segment; return ``(footer, tuples)`` (tuples
        may be empty for a bare close marker) or ``None`` if nothing
        arrived. Per-segment granularity — kept for consumers that need
        the decoded footer (ordered replicate); bulk paths use
        :meth:`drain`."""
        if self.done:
            return None
        mem = self.ring.region.mem
        footer_offset = self._footer_offsets[self._index]
        if not (mem[footer_offset + 4] & FLAG_CONSUMABLE):
            return None
        footer = self.ring.read_footer(self._index)
        count = footer.used // self.schema.tuple_size
        if count:
            payload = self.ring.payload_view(self._index, footer.used)
            tuples = self.schema.unpack_many(payload, count)
        else:
            tuples = []
        if footer.closed:
            self.done = True
            if self._causal is not None:
                self._causal.close(self._flow, self.node.node_id)
        if footer.aborted:
            self.aborted = True
            tuples = []  # abort voids any delivery guarantee
        # Release the segment: reset the footer locally (writable again).
        # Direct memory write — no write hooks should fire for local resets.
        mem[footer_offset:footer_offset + FOOTER_SIZE] = BLANK_FOOTER
        self._index = self.ring.next_index(self._index)
        self._consumed += 1
        self.tuples_received += len(tuples)
        if self._metrics is not None:
            self._note_segment(footer.seq, len(tuples), self.node.env.now)
        if self._track_credits:
            self._credit_region.write_u64(self._credit_offset,
                                          self._consumed)
        return footer, tuples

    def drain(self, out) -> int:
        """Consume every consecutive consumable segment in one pass.

        Unpacked tuples are appended to ``out`` (list or deque); footers
        are released with direct hook-free memory writes as the pass
        walks the ring, and in latency mode the consumed-credit counter
        is published with **one** ``write_u64`` per drain instead of one
        per segment (unless :attr:`credit_coalescing` is off). Returns
        the number of segments drained.
        """
        if self.done:
            return 0
        mem = self.ring.region.mem
        offsets = self._footer_offsets
        segment_count = len(offsets)
        payload_view = self.ring.payload_view
        unpack_rows = self.schema.unpack_rows
        extend = out.extend
        index = self._index
        consumed = self._consumed
        per_segment_credits = (self._track_credits
                               and not self.credit_coalescing)
        metrics = self._metrics
        # A drain pass runs inside one event continuation, so sim time is
        # constant across it — read the clock once, not per segment.
        now = self.node.env.now if metrics is not None else 0.0
        tuple_size = self.schema.tuple_size
        drained = 0
        received = 0
        while True:
            footer_offset = offsets[index]
            flags = mem[footer_offset + 4]
            if not (flags & FLAG_CONSUMABLE):
                break
            used = _FOOTER_USED(mem, footer_offset)[0]
            if flags & (FLAG_CLOSED | FLAG_ABORTED):
                if flags & FLAG_ABORTED:
                    self.aborted = True
                    used = 0  # abort voids its own segment's delivery
                if flags & FLAG_CLOSED:
                    self.done = True
                    if self._causal is not None:
                        self._causal.close(self._flow, self.node.node_id)
            if used:
                tuples = unpack_rows(payload_view(index, used))
                extend(tuples)
                received += len(tuples)
            if metrics is not None:
                # Read the sequence number before the release blanks it.
                self._note_segment(
                    int.from_bytes(
                        mem[footer_offset + 8:footer_offset + 16],
                        "little"),
                    used // tuple_size, now)
            mem[footer_offset:footer_offset + FOOTER_SIZE] = BLANK_FOOTER
            index += 1
            if index == segment_count:
                index = 0
            drained += 1
            if per_segment_credits:
                self._credit_region.write_u64(self._credit_offset,
                                              consumed + drained)
            if self.done:
                break
        if drained:
            self._index = index
            self._consumed = consumed + drained
            self.tuples_received += received
            if metrics is not None:
                hist = self._drain_hist
                if hist is None:
                    hist = self._drain_hist = metrics.histogram(
                        "core.drain_segments")
                hist.record(drained)
            if self._track_credits and not per_segment_credits:
                self._credit_region.write_u64(self._credit_offset,
                                              self._consumed)
        return drained

    def drain_bytes(self, out) -> int:
        """Like :meth:`drain` but appends one zero-copy payload
        ``memoryview`` per data segment (each a whole number of packed
        tuples) instead of unpacking. The views alias ring memory that
        this call already released for overwrite — they are valid only
        until the consuming process yields back to the simulator."""
        if self.done:
            return 0
        mem = self.ring.region.mem
        offsets = self._footer_offsets
        segment_count = len(offsets)
        payload_rows_view = self.ring.payload_rows_view
        append = out.append
        tuple_size = self.schema.tuple_size
        index = self._index
        consumed = self._consumed
        per_segment_credits = (self._track_credits
                               and not self.credit_coalescing)
        metrics = self._metrics
        # Constant sim time across the pass — see :meth:`drain`.
        now = self.node.env.now if metrics is not None else 0.0
        drained = 0
        received = 0
        while True:
            footer_offset = offsets[index]
            flags = mem[footer_offset + 4]
            if not (flags & FLAG_CONSUMABLE):
                break
            used = _FOOTER_USED(mem, footer_offset)[0]
            if flags & (FLAG_CLOSED | FLAG_ABORTED):
                if flags & FLAG_ABORTED:
                    self.aborted = True
                    used = 0
                if flags & FLAG_CLOSED:
                    self.done = True
                    if self._causal is not None:
                        self._causal.close(self._flow, self.node.node_id)
            if used:
                # Whole-row contract checked at the segment layer: the
                # chunks feed columnar fold/unpack kernels downstream.
                append(payload_rows_view(index, used, tuple_size))
                received += used // tuple_size
            if metrics is not None:
                self._note_segment(
                    int.from_bytes(
                        mem[footer_offset + 8:footer_offset + 16],
                        "little"),
                    used // tuple_size, now)
            mem[footer_offset:footer_offset + FOOTER_SIZE] = BLANK_FOOTER
            index += 1
            if index == segment_count:
                index = 0
            drained += 1
            if per_segment_credits:
                self._credit_region.write_u64(self._credit_offset,
                                              consumed + drained)
            if self.done:
                break
        if drained:
            self._index = index
            self._consumed = consumed + drained
            self.tuples_received += received
            if metrics is not None:
                hist = self._drain_hist
                if hist is None:
                    hist = self._drain_hist = metrics.histogram(
                        "core.drain_segments")
                hist.record(drained)
            if self._track_credits and not per_segment_credits:
                self._credit_region.write_u64(self._credit_offset,
                                              self._consumed)
        return drained


class ShuffleSource:
    """The per-thread source endpoint of a shuffle flow."""

    def __init__(self, registry: FlowRegistry, descriptor: FlowDescriptor,
                 source_index: int, channels: list) -> None:
        self.registry = registry
        self.descriptor = descriptor
        self.source_index = source_index
        self.node = registry.cluster.node(
            descriptor.sources[source_index].node_id)
        self._channels = channels
        schema = descriptor.schema
        if descriptor.routing is not None:
            self._router = descriptor.routing
        elif descriptor.shuffle_key is not None:
            self._router = key_hash_router(schema, descriptor.shuffle_key)
        elif len(channels) == 1:
            self._router = lambda _values, _count: 0
        else:
            self._router = None  # direct routing only
        self.closed = False
        #: Failure policy (``FlowOptions.on_target_failure``).
        self._policy = descriptor.options.on_target_failure
        #: Channel indices still routable (failed targets drop out).
        self._live = list(range(len(channels)))
        #: Channel indices declared failed.
        self._failed: set[int] = set()

    @classmethod
    def open(cls, registry: FlowRegistry, name: str, source_index: int):
        """Generator: open source endpoint ``source_index`` of flow
        ``name``, waiting for the targets to publish their rings."""
        descriptor = registry.descriptor(name)
        if descriptor.flow_type not in (FlowType.SHUFFLE, FlowType.COMBINER):
            raise FlowError(
                f"flow {name!r} is a {descriptor.flow_type.value} flow")
        if not 0 <= source_index < descriptor.source_count:
            raise FlowError(
                f"source index {source_index} out of range "
                f"[0, {descriptor.source_count})")
        node = registry.cluster.node(
            descriptor.sources[source_index].node_id)
        latency = descriptor.optimization is Optimization.LATENCY
        channel_cls = (LatencySourceChannel if latency
                       else BandwidthSourceChannel)
        channels = []
        for target_index in range(descriptor.target_count):
            handle = yield from registry.wait_ring(name, source_index,
                                                   target_index)
            tag = (name, source_index, target_index)
            channels.append(channel_cls(node, descriptor, handle, tag))
        return cls(registry, descriptor, source_index, channels)

    # -- the push primitive ----------------------------------------------
    def push(self, values: tuple, target: "int | None" = None):
        """Generator: push one tuple into the flow.

        Routing follows the descriptor (shuffle key or routing function)
        unless ``target`` names a target index directly (the paper's third
        routing option).
        """
        if self.closed:
            raise FlowClosedError("push on a closed flow source")
        explicit = target is not None
        if explicit:
            if not 0 <= target < len(self._channels):
                raise FlowError(
                    f"routed to target {target}, valid range "
                    f"[0, {len(self._channels)})")
            if target in self._failed:
                raise FlowPeerFailedError(
                    f"target {target} of flow {self.descriptor.name!r} "
                    f"has failed")
        else:
            if self._router is None:
                raise FlowError(
                    "flow has no shuffle key or routing function; pass "
                    "target= explicitly")
            live = self._live
            if not live:
                raise FlowPeerFailedError(
                    f"every target of flow {self.descriptor.name!r} has "
                    f"failed")
            target = live[self._router(values, len(live))]
        try:
            yield from self._channels[target].push(values)
        except (QpFlushedError, FlowTimeoutError) as exc:
            yield from self._handle_channel_failure(target, exc)
            if explicit:
                raise FlowPeerFailedError(
                    f"target {target} of flow {self.descriptor.name!r} "
                    f"failed ({exc})") from exc
            # Reroute policy: the survivors absorb the key space — resend
            # this tuple through the shrunken live set.
            yield from self.push(values)

    def push_many(self, tuples, target: "int | None" = None):
        """Generator: push a batch of tuples (convenience wrapper).

        Per-tuple semantics and event patterns — kept for callers that
        depend on the exact interleaving of per-tuple pushes. New code
        wanting wall-clock throughput should use :meth:`push_batch`.
        """
        for values in tuples:
            yield from self.push(values, target=target)

    def push_batch(self, tuples, target: "int | None" = None):
        """Generator: push a batch of tuples through the batched channel
        path — whole segments are packed with one ``struct`` call instead
        of one per tuple.

        Without an explicit ``target`` the batch is partitioned by the
        flow's router first and each per-channel group is pushed as its
        own batch; tuple order is preserved *within* each channel (the
        only ordering a multi-channel shuffle ever guarantees).
        """
        if self.closed:
            raise FlowClosedError("push on a closed flow source")
        channels = self._channels
        if target is not None:
            if not 0 <= target < len(channels):
                raise FlowError(
                    f"routed to target {target}, valid range "
                    f"[0, {len(channels)})")
            if target in self._failed:
                raise FlowPeerFailedError(
                    f"target {target} of flow {self.descriptor.name!r} "
                    f"has failed")
            try:
                yield from channels[target].push_batch(tuples)
            except (QpFlushedError, FlowTimeoutError) as exc:
                yield from self._handle_channel_failure(target, exc)
                raise FlowPeerFailedError(
                    f"target {target} of flow {self.descriptor.name!r} "
                    f"failed ({exc})") from exc
            return
        live = self._live
        if not live:
            raise FlowPeerFailedError(
                f"every target of flow {self.descriptor.name!r} has failed")
        if len(live) == 1:
            index = live[0]
            try:
                yield from channels[index].push_batch(tuples)
            except (QpFlushedError, FlowTimeoutError) as exc:
                yield from self._handle_channel_failure(index, exc)
                yield from self.push_batch(tuples)
            return
        if self._router is None:
            raise FlowError(
                "flow has no shuffle key or routing function; pass "
                "target= explicitly")
        router = self._router
        count = len(live)
        route_many = getattr(router, "route_many", None)
        if route_many is not None:
            groups = route_many(tuples, count)
        else:
            groups = [[] for _ in range(count)]
            appends = [group.append for group in groups]
            for values in tuples:
                appends[router(values, count)](values)
        for slot, group in enumerate(groups):
            if group:
                index = live[slot]
                try:
                    yield from channels[index].push_batch(group)
                except (QpFlushedError, FlowTimeoutError) as exc:
                    yield from self._handle_channel_failure(index, exc)
                    # The live set just shrank, so the remaining groups'
                    # slots no longer line up — re-partition the failed
                    # group plus everything not yet pushed over the
                    # survivors. Tuples the dead target already consumed
                    # may recur on a survivor: reroute is at-least-once
                    # across a failure.
                    remaining = [values for rest in groups[slot:]
                                 for values in rest]
                    yield from self.push_batch(remaining)
                    return

    def push_bytes(self, data, target: "int | None" = None):
        """Generator: push pre-packed tuple bytes (zero per-tuple packing).

        Raw bytes carry no routable key, so a multi-target flow needs an
        explicit ``target``.
        """
        if self.closed:
            raise FlowClosedError("push on a closed flow source")
        if target is None:
            if len(self._channels) != 1:
                raise FlowError(
                    "push_bytes cannot route packed tuples; pass target= "
                    "explicitly")
            target = 0
        if not 0 <= target < len(self._channels):
            raise FlowError(
                f"routed to target {target}, valid range "
                f"[0, {len(self._channels)})")
        if target in self._failed:
            raise FlowPeerFailedError(
                f"target {target} of flow {self.descriptor.name!r} has "
                f"failed")
        try:
            yield from self._channels[target].push_bytes(data)
        except (QpFlushedError, FlowTimeoutError) as exc:
            yield from self._handle_channel_failure(target, exc)
            # Packed bytes carry no routable key, so there is no reroute:
            # the failure always surfaces.
            raise FlowPeerFailedError(
                f"target {target} of flow {self.descriptor.name!r} "
                f"failed ({exc})") from exc

    def close(self):
        """Generator: close every live channel (targets see FLOW_END once
        all sources have closed). Close markers are posted to all channels
        first, then acknowledged in parallel. A target failing during
        close follows the flow's failure policy: under ``"reroute"`` the
        close still succeeds on the survivors, under ``"abort"`` the
        survivors are aborted and FlowPeerFailedError is raised."""
        work_requests = []
        failures = []
        for index, channel in enumerate(self._channels):
            try:
                wr = yield from channel.begin_close()
            except (QpFlushedError, FlowTimeoutError) as exc:
                failures.append((index, exc))
                continue
            if wr is not None:
                work_requests.append((index, wr))
        for index, wr in work_requests:
            try:
                if not wr.done.triggered:
                    yield wr.done
                elif wr.error is not None:
                    raise wr.error
            except (QpFlushedError, FlowTimeoutError) as exc:
                failures.append((index, exc))
        self.closed = True
        for index, exc in failures:
            yield from self._handle_channel_failure(index, exc)
        for channel in self._channels:
            if channel.closed:
                channel.release()

    def abort(self):
        """Generator: abort the flow — staged data is dropped and every
        target's consume raises FlowAbortedError (the fault-tolerance
        extension; paper Section 7 lists flow fault tolerance as future
        work).

        The abort is recorded in the registry *before* any marker goes
        out: a target opening afterwards (e.g. one racing
        ``extend_targets``) sees the flag instead of waiting for ring
        traffic that will never come. Published-but-unadopted rings of
        such targets get the abort marker here too."""
        name = self.descriptor.name
        self.registry.mark_flow_aborted(name)
        descriptor = self.registry.descriptor(name)
        channels = list(self._channels)
        latency = descriptor.optimization is Optimization.LATENCY
        channel_cls = (LatencySourceChannel if latency
                       else BandwidthSourceChannel)
        for target_index in range(len(self._channels),
                                  descriptor.target_count):
            handle = self.registry.published_ring(name, self.source_index,
                                                  target_index)
            if handle is not None:
                tag = (name, self.source_index, target_index)
                channels.append(
                    channel_cls(self.node, descriptor, handle, tag))
        for channel in channels:
            try:
                yield from channel.abort()
            except (QpFlushedError, FlowTimeoutError):
                pass  # aborting toward a dead peer: nothing left to void
            channel.release()
        self.closed = True

    def adopt_new_targets(self):
        """Generator: pick up targets added to the flow at runtime
        (elasticity — paper Section 7 future work). New channels are
        opened for every target index beyond the currently known set;
        the router immediately includes them in its fan-out."""
        if self.registry.flow_aborted(self.descriptor.name):
            raise FlowAbortedError(
                f"flow {self.descriptor.name!r} was aborted")
        descriptor = self.registry.descriptor(self.descriptor.name)
        latency = descriptor.optimization is Optimization.LATENCY
        channel_cls = (LatencySourceChannel if latency
                       else BandwidthSourceChannel)
        for target_index in range(len(self._channels),
                                  descriptor.target_count):
            handle = yield from self.registry.wait_ring(
                descriptor.name, self.source_index, target_index)
            tag = (descriptor.name, self.source_index, target_index)
            self._channels.append(
                channel_cls(self.node, descriptor, handle, tag))
            self._live.append(len(self._channels) - 1)
        self.descriptor = descriptor

    def retire_target(self, target_index: int):
        """Generator: stop sending to the *last* target (scale-in). The
        target observes this source's close marker; once every source
        retired it, the target drains to FLOW_END."""
        if target_index != len(self._channels) - 1:
            raise FlowError(
                "only the last target can be retired (index "
                f"{len(self._channels) - 1}, got {target_index})")
        if len(self._channels) == 1:
            raise FlowError("cannot retire the only target; close the "
                            "flow instead")
        channel = self._channels.pop()
        index = len(self._channels)
        if index in self._live:
            self._live.remove(index)
        self._failed.discard(index)
        try:
            yield from channel.close()
        except (QpFlushedError, FlowTimeoutError):
            pass  # the retired target is already gone; nothing to close

    # -- failure policy ----------------------------------------------------
    def _handle_channel_failure(self, index: int, exc: Exception):
        """Generator: apply the flow's failure policy after channel
        ``index`` hit a transport flush or exhausted its retry budget.

        Returns normally only when the reroute policy can absorb the
        failure; otherwise raises (FlowTimeoutError for a stall whose
        peer is not known dead, FlowPeerFailedError after aborting the
        survivors under the abort policy)."""
        channel = self._channels[index]
        channel.closed = True  # no further traffic toward the dead ring
        if index not in self._failed:
            self._failed.add(index)
            if index in self._live:
                self._live.remove(index)
        faults = self.node.cluster.faults
        peer = self.registry.cluster.node(
            self.descriptor.targets[index].node_id)
        peer_dead = (isinstance(exc, QpFlushedError)
                     or (faults is not None and faults.active
                         and faults.peer_failed(self.node, peer)))
        metrics, tracer = endpoint_obs(self.node, self.descriptor.name,
                                       self.descriptor.options)
        if metrics is not None:
            metrics.inc("core.target_failures")
        if not peer_dead:
            # A stall, not a detected failure (e.g. a slow consumer ran
            # the retry budget out): surface the timeout unchanged.
            raise exc
        now = self.node.env.now
        if metrics is not None:
            metrics.inc("core.peer_failures_detected")
        if tracer is not None:
            tracer.emit(now, FAULT_DETECT, self.node.node_id,
                        f"src{self.source_index}",
                        {"target": index, "peer_node": peer.node_id,
                         "cause": type(exc).__name__})
        if (self._policy == "reroute" and self._router is not None
                and self._live):
            if metrics is not None:
                metrics.inc("core.reroutes")
            if tracer is not None:
                tracer.emit(now, REROUTE, self.node.node_id,
                            f"src{self.source_index}",
                            {"target": index,
                             "survivors": len(self._live)})
            return  # the survivors absorb the failed target's share
        yield from self._abort_survivors()
        raise FlowPeerFailedError(
            f"target {index} of flow {self.descriptor.name!r} failed "
            f"({exc})") from exc

    def _abort_survivors(self):
        """Generator: best-effort abort of every remaining live channel
        (the abort-policy teardown — some survivors may be dead too)."""
        self.registry.mark_flow_aborted(self.descriptor.name)
        for index in list(self._live):
            channel = self._channels[index]
            try:
                yield from channel.abort()
            except (QpFlushedError, FlowTimeoutError):
                pass  # that target is gone as well
        self._live.clear()
        self.closed = True

    @property
    def failed_targets(self) -> tuple:
        """Indices of targets this source has declared failed."""
        return tuple(sorted(self._failed))

    # -- introspection -----------------------------------------------------
    @property
    def tuples_sent(self) -> int:
        return sum(channel.tuples_sent for channel in self._channels)

    @property
    def memory_bytes(self) -> int:
        """Send-side buffer memory of this endpoint (§6.1.4 accounting)."""
        return sum(channel.memory_bytes for channel in self._channels)


class ShuffleTarget:
    """The per-thread target endpoint of a shuffle flow."""

    #: Flow types this endpoint class may open (subclasses override).
    _allowed_flow_types = (FlowType.SHUFFLE, FlowType.COMBINER)

    def __init__(self, registry: FlowRegistry, descriptor: FlowDescriptor,
                 target_index: int, channels: list[TargetChannel]) -> None:
        self.registry = registry
        self.descriptor = descriptor
        self.target_index = target_index
        self.node = registry.cluster.node(
            descriptor.targets[target_index].node_id)
        self._channels = channels
        self._buffer: deque = deque()
        # Doorbell set: channel indices whose ring saw a write since the
        # channel was last drained. A persistent write hook per ring feeds
        # it, so a scan touches only channels that actually received data
        # instead of round-robin-polling every idle ring (O(dirty), not
        # O(channels), on N:1 flows). An insertion-ordered dict keeps the
        # drain order deterministic (write-arrival order). All channels
        # start dirty; hooks are registered here — synchronously with ring
        # allocation, before any simulated write can land — so no doorbell
        # ring is ever missed. The same hook doubles as the consume
        # wake-up (succeeding ``_wake_event`` when one is armed),
        # replacing the per-wakeup transient hooks of ``_RingWriteWaiter``
        # — rings keep exactly one hook, so every RDMA write stays on the
        # region's single-hook fast path. Bounded: keys are channel
        # indices, so the set never exceeds the flow's source count and
        # dies with the target (scale audit: no per-message growth).
        self._dirty: dict = dict.fromkeys(range(len(channels)))
        self._wake_event = None
        # A flow aborted before this target opened (abort racing
        # extend_targets): surface the abort instead of waiting for ring
        # traffic that will never come.
        self._abort_seen = registry.flow_aborted(descriptor.name)
        self._peer_timeout = descriptor.options.peer_timeout
        self._env = self.node.env
        # Merged wake+poll (the target half of steady-state event
        # elision): with no peer-timeout bound, the post-wake poll charge
        # is an unconditional constant, so the doorbell hook can schedule
        # the armed wake event directly at ``commit + cpu_poll_cost``
        # instead of a zero-delay wake whose resume immediately arms a
        # poll timeout for that same instant. The consuming process
        # resumes at the identical simulated time (a zero-delay wake
        # never advances the clock, and ``_poll_delay`` is the exact
        # float ``node.compute(cpu_poll_cost)`` would charge —
        # ``_cpu_scale`` is construction-constant); one kernel event and
        # one generator round-trip per wakeup are elided. With a
        # peer-timeout bound the wake outcome feeds a deadline decision,
        # so those flows keep the event-by-event wait verbatim.
        if _config.FASTPATH_ENABLED and self._peer_timeout is None:
            self._poll_delay = (self.node.cluster.profile.cpu_poll_cost
                                / self.node._cpu_scale)
        else:
            self._poll_delay = None
        for index, channel in enumerate(channels):
            channel.ring.region.add_write_hook(
                self._make_doorbell(index))

    def _make_doorbell(self, index: int):
        dirty = self._dirty
        poll_delay = self._poll_delay
        if poll_delay is not None:
            env = self._env

            def ring_doorbell(_offset, _length):
                dirty[index] = None
                event = self._wake_event
                if event is not None:
                    self._wake_event = None
                    # Fused wake: trigger the armed event at the exact
                    # instant the event path's post-wake poll timeout
                    # would fire (mirrors Timeout construction).
                    event._value = None
                    env._schedule(event, poll_delay)
            return ring_doorbell

        def ring_doorbell(_offset, _length):
            dirty[index] = None
            event = self._wake_event
            if event is not None:
                self._wake_event = None
                event.succeed()
        return ring_doorbell

    def _arm(self):
        """Arm the doorbell wake-up: returns a fresh event the next ring
        write will succeed. Timing-identical to the transient-hook waiter
        it replaces (one event per arm, fired by the first write that
        lands while armed)."""
        event = self._env.event()
        self._wake_event = event
        return event

    def _disarm(self) -> None:
        self._wake_event = None

    def _bounded_wait(self, wait_event):
        """Generator: block on the armed doorbell. With ``peer_timeout``
        unset this is a plain wait (the pre-fault-plane event pattern,
        bit-for-bit). With it set, the wait is bounded: a doorbell that
        stays silent past the bound raises FlowPeerFailedError (a pending
        peer is known dead) or FlowTimeoutError (pure stall). Progress
        resets the bound naturally — every wait starts a fresh window."""
        if self._peer_timeout is None:
            yield wait_event
            return
        while True:
            timer = self._env.timeout(self._peer_timeout)
            yield self._env.any_of([wait_event, timer])
            if wait_event.triggered:
                return
            if stall_is_congestion(self.node):
                # The silence is explained by active throttling on an
                # inbound path — congestion, not peer death. Re-arm the
                # deadline instead of misfiring; throttle state
                # self-clears, so the grace loop cannot spin forever.
                metrics, _tracer = endpoint_obs(self.node,
                                                self.descriptor.name,
                                                self.descriptor.options)
                if metrics is not None:
                    metrics.inc("core.congestion_grace")
                continue
            self._disarm()
            self._raise_peer_failure()

    def _raise_peer_failure(self):
        """No progress within the detection bound: classify and raise."""
        pending = [index for index, channel in enumerate(self._channels)
                   if not channel.done]
        faults = self.node.cluster.faults
        metrics, tracer = endpoint_obs(self.node, self.descriptor.name,
                                       self.descriptor.options)
        if faults is not None and faults.active:
            dead = []
            for index in pending:
                peer = self.registry.cluster.node(
                    self.descriptor.sources[index].node_id)
                if faults.peer_failed(self.node, peer):
                    dead.append(index)
            if dead:
                if metrics is not None:
                    metrics.inc("core.peer_failures_detected")
                if tracer is not None:
                    tracer.emit(self._env.now, FAULT_DETECT,
                                self.node.node_id,
                                f"tgt{self.target_index}",
                                {"sources": dead})
                raise FlowPeerFailedError(
                    f"flow {self.descriptor.name!r}: source(s) {dead} "
                    f"failed before closing their channels")
        if metrics is not None:
            metrics.inc("core.consume_timeouts")
        raise FlowTimeoutError(
            f"flow {self.descriptor.name!r}: no segment arrived within "
            f"{self._peer_timeout:.0f} ns; channels {pending} still open")

    @classmethod
    def open(cls, registry: FlowRegistry, name: str,
             target_index: int) -> "ShuffleTarget":
        """Open target endpoint ``target_index`` of flow ``name``:
        allocates the receive rings and publishes them for the sources."""
        descriptor = registry.descriptor(name)
        if descriptor.flow_type not in cls._allowed_flow_types:
            raise FlowError(
                f"flow {name!r} is a {descriptor.flow_type.value} flow")
        if not 0 <= target_index < descriptor.target_count:
            raise FlowError(
                f"target index {target_index} out of range "
                f"[0, {descriptor.target_count})")
        node = registry.cluster.node(
            descriptor.targets[target_index].node_id)
        nic = get_nic(node)
        payload = segment_payload_size(descriptor)
        credit_region = nic.register_memory(8 * descriptor.source_count)
        channels = []
        for source_index in range(descriptor.source_count):
            ring = SegmentRing.allocate(
                nic, descriptor.options.target_segments, payload)
            credit_offset = 8 * source_index
            channels.append(TargetChannel(node, descriptor, ring,
                                          credit_region, credit_offset))
            registry.publish_ring(name, source_index, target_index,
                                  RingHandle(
                                      node_id=node.node_id,
                                      rkey=ring.region.rkey,
                                      segment_count=ring.segment_count,
                                      segment_size=ring.segment_size,
                                      credit_rkey=credit_region.rkey,
                                      credit_offset=credit_offset))
        return cls(registry, descriptor, target_index, channels)

    # -- the consume primitive ----------------------------------------------
    def consume(self):
        """Generator: return the next tuple, or :data:`FLOW_END` once every
        source has closed and all data has been drained.

        Buffered tuples are always delivered before an abort surfaces: a
        single drain pass can pick up data segments *and* an abort marker,
        and per-channel FIFO delivery holds up to the abort point —
        :class:`FlowAbortedError` is raised once the buffer is empty.
        """
        buffer = self._buffer
        if buffer:
            return buffer.popleft()
        while True:
            wait_event = self._arm()
            progressed = self._scan(buffer)
            if buffer:
                self._disarm()
                return buffer.popleft()
            if self._abort_seen:
                self._disarm()
                raise FlowAbortedError(
                    f"flow {self.descriptor.name!r} was aborted by a "
                    f"source")
            if self._finished():
                self._disarm()
                return FLOW_END
            if progressed:
                # Close markers or empty segments arrived; rescan.
                self._disarm()
                continue
            yield from self._bounded_wait(wait_event)
            self._disarm()
            if self._poll_delay is None:
                # Event path: charge the poll separately. (The fused
                # wake above already fired at wake + poll cost.)
                yield self.node.compute(
                    self.node.cluster.profile.cpu_poll_cost)

    def consume_batch(self):
        """Generator: return every tuple available right now as one list,
        or :data:`FLOW_END` once all sources closed and data drained.

        Batch-size contract: the list holds **all** tuples buffered at
        return time — every ready channel is drained first (all of its
        consecutive consumable segments), so a batch spans segments and
        channels; the flow never returns after just the first buffered
        segment. Its length is bounded by what the receive rings can hold
        (``source_count * target_segments`` segments) plus whatever an
        earlier per-tuple ``consume`` left buffered, and is at least 1 —
        an exhausted flow returns :data:`FLOW_END`, never ``[]``. As with
        :meth:`consume`, buffered tuples are delivered before an abort is
        raised.
        """
        buffer = self._buffer
        if buffer:
            # Leftovers from per-tuple consumes: drain into the deque so
            # FIFO order holds across the mix, then hand over everything.
            if self._dirty:
                self._scan(buffer)
            batch = list(buffer)
            buffer.clear()
            return batch
        if self._dirty:
            # Hot path: drain straight into the batch list — no deque
            # round-trip per tuple.
            batch: list = []
            self._scan(batch)
            if batch:
                return batch
        while True:
            wait_event = self._arm()
            batch = []
            progressed = self._scan(batch)
            if batch:
                self._disarm()
                return batch
            if self._abort_seen:
                self._disarm()
                raise FlowAbortedError(
                    f"flow {self.descriptor.name!r} was aborted by a "
                    f"source")
            if self._finished():
                self._disarm()
                return FLOW_END
            if progressed:
                self._disarm()
                continue
            yield from self._bounded_wait(wait_event)
            self._disarm()
            if self._poll_delay is None:
                # Event path: charge the poll separately. (The fused
                # wake above already fired at wake + poll cost.)
                yield self.node.compute(
                    self.node.cluster.profile.cpu_poll_cost)

    def consume_bytes(self):
        """Generator: return a list of zero-copy payload ``memoryview``
        chunks — one per drained segment, each a whole number of tuples
        packed in the flow's schema — or :data:`FLOW_END`. The mirror of
        ``push_bytes``: tuples cross the consume boundary without ever
        being unpacked (``Schema.unpack_rows``/``row_views`` decode on
        demand).

        Lifetime rule: the views alias receive-ring memory whose segments
        this call already released for reuse. They stay valid only until
        the consuming process next yields to the simulator (its next
        ``yield``/``yield from`` — another consume, a push, a compute);
        after that a source may overwrite them. Copy with ``bytes(view)``
        to keep data longer.

        Cannot be mixed with tuple-returning consumes while unpacked
        tuples are buffered (raises :class:`FlowError`).
        """
        if self._buffer:
            raise FlowError(
                "consume_bytes with unpacked tuples buffered; drain them "
                "with consume/consume_batch first")
        chunks: list = []
        if self._dirty:
            self._scan_bytes(chunks)
        if chunks:
            return chunks
        while True:
            wait_event = self._arm()
            progressed = self._scan_bytes(chunks)
            if chunks:
                self._disarm()
                return chunks
            if self._abort_seen:
                self._disarm()
                raise FlowAbortedError(
                    f"flow {self.descriptor.name!r} was aborted by a "
                    f"source")
            if self._finished():
                self._disarm()
                return FLOW_END
            if progressed:
                self._disarm()
                continue
            yield from self._bounded_wait(wait_event)
            self._disarm()
            if self._poll_delay is None:
                # Event path: charge the poll separately. (The fused
                # wake above already fired at wake + poll cost.)
                yield self.node.compute(
                    self.node.cluster.profile.cpu_poll_cost)

    def _finished(self) -> bool:
        """True once the flow is fully drained (hook for subclasses)."""
        return all(channel.done for channel in self._channels)

    def _scan(self, out) -> bool:
        """Drain every doorbell'd channel into ``out`` (any container
        with ``extend`` — the tuple buffer deque, or a batch list that
        goes straight to the caller without a deque round-trip).

        Each dirty channel is drained of all its consecutive consumable
        segments; a channel leaves the dirty set only here, immediately
        before the drain, so a write landing later re-marks it via the
        hook and nothing is ever missed. Drains fire no write hooks
        themselves (footer releases are direct memory stores), so the
        set cannot grow while it is walked by our own doing.
        """
        progressed = False
        dirty = self._dirty
        channels = self._channels
        while dirty:
            index = next(iter(dirty))
            del dirty[index]
            channel = channels[index]
            if channel.drain(out):
                progressed = True
                if channel.aborted:
                    self._abort_seen = True
        return progressed

    def _scan_bytes(self, out: list) -> bool:
        """Doorbell-set scan for the zero-copy path: chunks, not tuples."""
        progressed = False
        dirty = self._dirty
        channels = self._channels
        while dirty:
            index = next(iter(dirty))
            del dirty[index]
            channel = channels[index]
            if channel.drain_bytes(out):
                progressed = True
                if channel.aborted:
                    self._abort_seen = True
        return progressed

    # -- introspection -----------------------------------------------------
    @property
    def tuples_received(self) -> int:
        return sum(channel.tuples_received for channel in self._channels)

    @property
    def memory_bytes(self) -> int:
        """Receive-side buffer memory of this endpoint."""
        return sum(channel.memory_bytes for channel in self._channels)
