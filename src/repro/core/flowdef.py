"""Flow definitions: types, options and descriptors (paper Table 1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import ConfigurationError, FlowError
from repro.core.nodes import Endpoint
from repro.core.schema import Schema


class FlowType(enum.Enum):
    """The three DFI flow types."""

    SHUFFLE = "shuffle"
    REPLICATE = "replicate"
    COMBINER = "combiner"


class Optimization(enum.Enum):
    """Declarative optimization goal of a flow (bandwidth vs. latency)."""

    BANDWIDTH = "bandwidth"
    LATENCY = "latency"


class Ordering(enum.Enum):
    """Ordering guarantee for replicate flows."""

    NONE = "none"
    #: Globally-ordered delivery via the tuple sequencer (OUM semantics).
    GLOBAL = "global"


@dataclass(frozen=True)
class FlowOptions:
    """Tuning knobs of a flow.

    Defaults reproduce the paper's configuration: 8 KiB segments, 32
    segments per ring on both sides (which yields exactly the memory
    footprint reported in Section 6.1.4).
    """

    #: Payload bytes per segment (bandwidth-optimized flows batch tuples
    #: up to this size; latency-optimized flows size segments per tuple).
    segment_size: int = 8192
    #: Segments in each target-side receive ring.
    target_segments: int = 32
    #: Segments in each source-side send ring.
    source_segments: int = 32
    #: Latency flows: refresh the cached remote credit when the local
    #: credit estimate drops to this many segments.
    credit_threshold: int = 8
    #: Replicate flows: replicate in the switch via RDMA multicast instead
    #: of one one-sided write per target.
    multicast: bool = False
    #: Replicate flows: timeout (ns) before a missing segment is NACKed.
    retransmit_timeout: float = 50_000.0
    #: Replicate flows: surface gaps to the application instead of
    #: transparently retransmitting (used by NOPaxos' gap agreement).
    gap_notify: bool = False
    #: Segments a replicate source retains for retransmission.
    retransmit_buffer: int = 4096
    #: Bandwidth flows: pre-read the *next* remote footer together with
    #: each write (paper Section 5.2). Disabling moves the writability
    #: check onto the critical path — kept as an ablation knob.
    pipelined_footer_read: bool = True
    #: Combiner flows: reduce inside the switch (SHARP-style) instead of
    #: at the target — the future-work extension of paper Sections 4.2.3
    #: and 6.1.3, lifting the target-in-link bandwidth cap of Fig. 9.
    in_network_aggregation: bool = False
    #: Failure detection bound (ns): a push or consume that makes no
    #: progress for this long consults the fault plane and raises
    #: :class:`~repro.common.errors.FlowPeerFailedError` (peer known dead)
    #: or :class:`~repro.common.errors.FlowTimeoutError`. ``None`` (the
    #: default) waits forever — the pre-fault-plane behaviour.
    peer_timeout: "float | None" = None
    #: Ring-full backoff rounds before a writer gives up with
    #: :class:`~repro.common.errors.FlowTimeoutError`. ``None`` retries
    #: forever.
    max_backoff_retries: "int | None" = None
    #: Multicast replicate: consecutive credit-stalled retransmission
    #: rounds tolerated before the stalled target counts as failed.
    #: ``None`` retries forever.
    max_retransmits: "int | None" = None
    #: Shuffle sources, when a target fails mid-flow: ``"abort"`` tears
    #: the whole flow down (surviving targets see an abort marker, the
    #: push raises FlowPeerFailedError); ``"reroute"`` re-hashes the
    #: failed target's share onto the survivors (requires a hash/routing
    #: key — round-robin and key-routed flows only).
    on_target_failure: str = "abort"
    #: Event tracing for this flow (see ``repro.obs``): ``None``/``False``
    #: off, ``True`` on with the default ring capacity, an ``int`` on
    #: with that many retained events. Opening a traced endpoint enables
    #: the cluster's observability plane if it is not already on; tracing
    #: never perturbs the simulated timeline.
    trace: "bool | int | None" = None
    #: Fabric congestion policy (see
    #: :class:`~repro.simnet.congestion.CongestionConfig`): bounded egress
    #: queues, ECN marking, and DCQCN-flavoured rate control. Initializing
    #: a flow with this set installs the policy cluster-wide (one fabric,
    #: one queueing discipline — a different config on a second flow
    #: raises). ``None`` (the default) keeps the ideal-pipe fabric with a
    #: bit-identical timeline.
    congestion: "object | None" = None

    def __post_init__(self) -> None:
        if self.segment_size <= 0:
            raise ConfigurationError("segment_size must be positive")
        if self.target_segments < 2 or self.source_segments < 2:
            raise ConfigurationError("rings need at least 2 segments")
        if not 0 < self.credit_threshold <= self.target_segments:
            raise ConfigurationError(
                "credit_threshold must be in (0, target_segments]")
        if self.retransmit_timeout <= 0:
            raise ConfigurationError("retransmit_timeout must be positive")
        if self.peer_timeout is not None and self.peer_timeout <= 0:
            raise ConfigurationError("peer_timeout must be positive")
        if (self.max_backoff_retries is not None
                and self.max_backoff_retries < 1):
            raise ConfigurationError("max_backoff_retries must be >= 1")
        if self.max_retransmits is not None and self.max_retransmits < 1:
            raise ConfigurationError("max_retransmits must be >= 1")
        if self.on_target_failure not in ("abort", "reroute"):
            raise ConfigurationError(
                "on_target_failure must be 'abort' or 'reroute'")
        if (self.trace is not None and not isinstance(self.trace, bool)
                and (not isinstance(self.trace, int) or self.trace < 1)):
            raise ConfigurationError(
                "trace must be None, a bool, or a positive ring capacity")
        if self.congestion is not None:
            from repro.simnet.congestion import CongestionConfig
            if not isinstance(self.congestion, CongestionConfig):
                raise ConfigurationError(
                    "congestion must be None or a CongestionConfig")


@dataclass(frozen=True)
class AggregationSpec:
    """Combiner-flow aggregation: ``op`` over ``value`` grouped by
    ``group_by`` (both schema field references)."""

    op: str
    group_by: "str | int"
    value: "str | int"

    _OPS = ("sum", "count", "min", "max")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ConfigurationError(
                f"unknown aggregation op {self.op!r}; supported: {self._OPS}")


@dataclass(frozen=True)
class FlowDescriptor:
    """Published metadata of an initialized flow."""

    name: str
    flow_type: FlowType
    sources: tuple[Endpoint, ...]
    targets: tuple[Endpoint, ...]
    schema: Schema
    optimization: Optimization = Optimization.BANDWIDTH
    ordering: Ordering = Ordering.NONE
    shuffle_key: "str | int | None" = None
    routing: "Callable[[tuple, int], int] | None" = None
    aggregation: "AggregationSpec | None" = None
    options: FlowOptions = field(default_factory=FlowOptions)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("flow name must not be empty")
        if not self.sources or not self.targets:
            raise ConfigurationError(
                f"flow {self.name!r} needs at least one source and one "
                f"target")
        if self.flow_type is FlowType.COMBINER and len(self.targets) != 1:
            raise ConfigurationError(
                "combiner flows are N:1 — exactly one target required")
        if self.flow_type is FlowType.COMBINER and self.aggregation is None:
            raise ConfigurationError(
                "combiner flows require an AggregationSpec")
        if self.flow_type is not FlowType.COMBINER and self.aggregation:
            raise ConfigurationError(
                "aggregation is only valid on combiner flows")
        if self.ordering is Ordering.GLOBAL:
            if self.flow_type is not FlowType.REPLICATE:
                raise ConfigurationError(
                    "global ordering is only available on replicate flows")
        if self.flow_type is FlowType.REPLICATE:
            if self.shuffle_key is not None or self.routing is not None:
                raise ConfigurationError(
                    "replicate flows deliver to all targets; routing/key "
                    "make no sense")

    @property
    def source_count(self) -> int:
        return len(self.sources)

    @property
    def target_count(self) -> int:
        return len(self.targets)

    @property
    def topology(self) -> str:
        """Human-readable topology tag, e.g. ``'N:M'`` or ``'1:1'``."""
        n = "1" if len(self.sources) == 1 else "N"
        m = "1" if len(self.targets) == 1 else ("N" if n == "1" else "M")
        return f"{n}:{m}"

    def latency_segment_size(self) -> int:
        """Per-segment payload for latency-optimized execution: exactly one
        tuple per segment (paper Section 5.3)."""
        return self.schema.tuple_size


#: Sentinel returned by ``consume`` once a flow has fully drained.
class _FlowEnd:
    __slots__ = ()

    def __repr__(self) -> str:
        return "FLOW_END"

    def __bool__(self) -> bool:
        return False


FLOW_END = _FlowEnd()


class GapNotification:
    """Returned by replicate targets in ``gap_notify`` mode when a sequence
    gap timed out: the application decides how to recover (NOPaxos' gap
    agreement protocol does exactly this).

    ``source_index`` identifies the sending source for unordered flows;
    globally-ordered flows use a shared sequence space, so it is ``None``.
    """

    __slots__ = ("missing_seq", "source_index")

    def __init__(self, missing_seq: int,
                 source_index: "int | None" = None) -> None:
        self.missing_seq = missing_seq
        self.source_index = source_index

    def __repr__(self) -> str:
        return (f"GapNotification(seq={self.missing_seq}, "
                f"source={self.source_index})")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, GapNotification)
                and other.missing_seq == self.missing_seq
                and other.source_index == self.source_index)

    def __hash__(self) -> int:
        return hash(("gap", self.missing_seq, self.source_index))
