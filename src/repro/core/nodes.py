"""Flow endpoint descriptors.

The paper identifies source/target threads as ``"<address>|<thread id>"``
strings (``DFI_Nodes n({"192.168.0.1|0", ...})``). We keep that notation but
resolve addresses to simulator node ids: ``"node3|1"`` or ``"3|1"`` both
mean thread 1 on cluster node 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class Endpoint:
    """One flow endpoint: a (node, thread) pair."""

    node_id: int
    thread_id: int

    def __post_init__(self) -> None:
        if self.node_id < 0 or self.thread_id < 0:
            raise ConfigurationError(
                f"endpoint ids must be non-negative: {self}")

    @classmethod
    def parse(cls, spec: "Endpoint | str | tuple[int, int]") -> "Endpoint":
        """Parse an endpoint from ``'node3|1'``, ``'3|1'``, ``(3, 1)`` or an
        existing :class:`Endpoint`."""
        if isinstance(spec, Endpoint):
            return spec
        if isinstance(spec, tuple) and len(spec) == 2:
            return cls(int(spec[0]), int(spec[1]))
        if isinstance(spec, str):
            address, sep, thread = spec.partition("|")
            if not sep:
                raise ConfigurationError(
                    f"endpoint spec {spec!r} must look like 'node3|1'")
            address = address.strip()
            if address.startswith("node"):
                address = address[len("node"):]
            try:
                return cls(int(address), int(thread))
            except ValueError:
                raise ConfigurationError(
                    f"cannot parse endpoint spec {spec!r}") from None
        raise ConfigurationError(f"cannot parse endpoint spec {spec!r}")

    def __str__(self) -> str:
        return f"node{self.node_id}|{self.thread_id}"


def parse_endpoints(specs) -> tuple[Endpoint, ...]:
    """Parse a sequence of endpoint specs, rejecting duplicates."""
    endpoints = tuple(Endpoint.parse(spec) for spec in specs)
    if len(set(endpoints)) != len(endpoints):
        raise ConfigurationError(f"duplicate endpoints in {list(specs)!r}")
    return endpoints


def endpoints_on(node_count: int, threads_per_node: int,
                 nodes: "list[int] | None" = None) -> list[Endpoint]:
    """Convenience builder: ``threads_per_node`` endpoints on each node.

    ``nodes`` restricts to a subset of node ids (defaults to all).
    """
    node_ids = list(range(node_count)) if nodes is None else nodes
    return [Endpoint(node_id, thread_id)
            for node_id in node_ids
            for thread_id in range(threads_per_node)]
