"""Combiner flows (paper Sections 4.2.3 and 5.4).

A combiner flow is an N:1 shuffle whose target aggregates incoming tuples
with a declared aggregate function (SUM, COUNT, MIN, MAX) and group-by
column. The network transport is exactly the shuffle flow's; the
aggregation happens in the target buffer as segments drain.

The paper points to SHARP-style in-network aggregation as future work; we
model the end-host variant it evaluates (Fig. 9), where the target's
in-going link is the natural bottleneck.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import FlowError
from repro.core.flowdef import FLOW_END, AggregationSpec, FlowType
from repro.core.registry import FlowRegistry
from repro.core.shuffle import ShuffleSource, ShuffleTarget


def _aggregator(op: str) -> Callable:
    if op == "sum":
        return lambda current, value: current + value
    if op == "count":
        return lambda current, _value: current + 1
    if op == "min":
        return min
    if op == "max":
        return max
    raise FlowError(f"unknown aggregation op {op!r}")


def _initial(op: str, value):
    if op == "sum":
        return value
    if op == "count":
        return 1
    return value  # min / max start at the first observed value


class CombinerSource(ShuffleSource):
    """Source endpoint of a combiner flow (an N:1 shuffle source)."""

    @classmethod
    def open(cls, registry: FlowRegistry, name: str, source_index: int):
        descriptor = registry.descriptor(name)
        if descriptor.flow_type is not FlowType.COMBINER:
            raise FlowError(f"flow {name!r} is not a combiner flow")
        endpoint = yield from super().open(registry, name, source_index)
        return endpoint


class CombinerTarget:
    """Target endpoint of a combiner flow: consumes segments and folds
    them into a group-by aggregate table."""

    def __init__(self, registry: FlowRegistry, name: str) -> None:
        descriptor = registry.descriptor(name)
        if descriptor.flow_type is not FlowType.COMBINER:
            raise FlowError(f"flow {name!r} is not a combiner flow")
        spec: AggregationSpec = descriptor.aggregation
        schema = descriptor.schema
        self.descriptor = descriptor
        self._inner = ShuffleTarget.open(registry, name, 0)
        self.node = self._inner.node
        self._group_index = schema.field_index(spec.group_by)
        self._value_index = schema.field_index(spec.value)
        self._fold = _aggregator(spec.op)
        self._op = spec.op
        self._aggregates: dict = {}
        self._fold_batch = self._build_batch_fold()
        #: Columnar fold over packed segment bytes (the codegen hot
        #: path), or ``None`` on the generic tuple-batch path. Decodes
        #: only the group/value columns via a selective pad-byte struct
        #: — the other fields are never materialized.
        factory = schema.fold_kernel(self._group_index, self._value_index,
                                     spec.op)
        self._fold_chunks = (factory(self._aggregates.get,
                                     self._aggregates.__setitem__)
                             if factory is not None else None)
        self.tuples_aggregated = 0
        #: Observability registry of the target node (``None`` when off).
        self._metrics = self.node.metrics

    @classmethod
    def open(cls, registry: FlowRegistry, name: str) -> "CombinerTarget":
        """Open the (single) target endpoint of combiner flow ``name``."""
        return cls(registry, name)

    @property
    def aggregates(self) -> dict:
        """Current group -> aggregate value table (grows as data arrives)."""
        return self._aggregates

    def _fold_in(self, values: tuple) -> None:
        """Fold one tuple (reference semantics; batches go through the
        specialized :meth:`_fold_batch`)."""
        group = values[self._group_index]
        value = values[self._value_index]
        if group in self._aggregates:
            self._aggregates[group] = self._fold(self._aggregates[group],
                                                 value)
        else:
            self._aggregates[group] = _initial(self._op, value)
        self.tuples_aggregated += 1

    def _build_batch_fold(self):
        """Compile the operator-specialized batch fold loop.

        One closure per aggregate op with everything the inner loop
        touches pre-bound to locals — ``dict.get``/``dict.__setitem__``
        of the aggregate table and the hoisted group/value column
        indices — so folding a batch costs one Python-level loop with no
        attribute lookups, no method call and no lambda dispatch per
        tuple. Aggregate values come from ``struct`` unpacking and are
        never ``None``, which lets ``get``'s default double as the
        first-observation test.
        """
        aggregates = self._aggregates
        get = aggregates.get
        put = aggregates.__setitem__
        group_index = self._group_index
        value_index = self._value_index
        op = self._op
        if op == "sum":
            def fold_batch(batch):
                for values in batch:
                    group = values[group_index]
                    value = values[value_index]
                    current = get(group)
                    put(group, value if current is None else current + value)
        elif op == "count":
            def fold_batch(batch):
                for values in batch:
                    group = values[group_index]
                    current = get(group)
                    put(group, 1 if current is None else current + 1)
        elif op == "min":
            def fold_batch(batch):
                for values in batch:
                    group = values[group_index]
                    value = values[value_index]
                    current = get(group)
                    if current is None or value < current:
                        put(group, value)
        else:  # "max" — _aggregator already rejected unknown ops
            def fold_batch(batch):
                for values in batch:
                    group = values[group_index]
                    value = values[value_index]
                    current = get(group)
                    if current is None or value > current:
                        put(group, value)
        return fold_batch

    def consume_all(self):
        """Generator: drain the flow to completion and return the final
        group -> aggregate dictionary.

        With codegen active the fold runs columnar: segments arrive as
        packed byte chunks (``consume_bytes``) and the generated kernel
        decodes only the group/value columns. ``consume_bytes`` and
        ``consume_batch`` yield the identical event sequence (same polls,
        same CPU charges, same drain metrics), so the choice of path is
        invisible to simulated time.
        """
        fold_chunks = self._fold_chunks
        if fold_chunks is not None:
            while True:
                chunks = yield from self._inner.consume_bytes()
                if chunks is FLOW_END:
                    return self._aggregates
                folded = fold_chunks(chunks)
                self.tuples_aggregated += folded
                if self._metrics is not None:
                    self._metrics.inc("core.tuples_aggregated", folded)
        fold_batch = self._fold_batch
        while True:
            batch = yield from self._inner.consume_batch()
            if batch is FLOW_END:
                return self._aggregates
            fold_batch(batch)
            self.tuples_aggregated += len(batch)
            if self._metrics is not None:
                self._metrics.inc("core.tuples_aggregated", len(batch))

    def consume_step(self):
        """Generator: fold in the next available batch of tuples.

        Returns the number of tuples aggregated, or :data:`FLOW_END` once
        the flow has drained — useful for interleaving aggregation with
        other work.
        """
        fold_chunks = self._fold_chunks
        if fold_chunks is not None:
            chunks = yield from self._inner.consume_bytes()
            if chunks is FLOW_END:
                return FLOW_END
            folded = fold_chunks(chunks)
            self.tuples_aggregated += folded
            if self._metrics is not None:
                self._metrics.inc("core.tuples_aggregated", folded)
            return folded
        batch = yield from self._inner.consume_batch()
        if batch is FLOW_END:
            return FLOW_END
        self._fold_batch(batch)
        self.tuples_aggregated += len(batch)
        if self._metrics is not None:
            self._metrics.inc("core.tuples_aggregated", len(batch))
        return len(batch)

    @property
    def memory_bytes(self) -> int:
        return self._inner.memory_bytes
