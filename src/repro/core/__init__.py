"""DFI core: the paper's primary contribution — flow-based communication."""

from repro.core.combiner import CombinerSource, CombinerTarget
from repro.core.flow import DfiRuntime
from repro.core.flowdef import (
    FLOW_END,
    AggregationSpec,
    FlowDescriptor,
    FlowOptions,
    FlowType,
    GapNotification,
    Optimization,
    Ordering,
)
from repro.core.nodes import Endpoint, endpoints_on, parse_endpoints
from repro.core.ordering import ReorderBuffer
from repro.core.registry import FlowRegistry, RingHandle, SequencerHandle
from repro.core.replicate import (
    MulticastReplicateSource,
    MulticastReplicateTarget,
    NaiveReplicateSource,
    NaiveReplicateTarget,
    ReplicateSource,
    ReplicateTarget,
    SeqTracker,
)
from repro.core.routing import (
    key_hash_router,
    radix_router,
    range_router,
    round_robin_router,
)
from repro.core.schema import Field, Schema
from repro.core.sharp import (
    SharpCombinerSource,
    SharpCombinerTarget,
    SwitchAggregator,
)
from repro.core.segment import FLAG_CLOSED, FLAG_CONSUMABLE, FOOTER_SIZE, SegmentRing
from repro.core.shuffle import ShuffleSource, ShuffleTarget
from repro.core.types import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    DataType,
    fixed_bytes,
)

__all__ = [
    "DfiRuntime",
    "FlowRegistry",
    "FlowDescriptor",
    "FlowOptions",
    "FlowType",
    "Optimization",
    "Ordering",
    "AggregationSpec",
    "FLOW_END",
    "GapNotification",
    "Schema",
    "Field",
    "DataType",
    "fixed_bytes",
    "INT8", "UINT8", "INT16", "UINT16", "INT32", "UINT32",
    "INT64", "UINT64", "FLOAT", "DOUBLE", "CHAR",
    "Endpoint",
    "parse_endpoints",
    "endpoints_on",
    "ShuffleSource",
    "ShuffleTarget",
    "ReplicateSource",
    "ReplicateTarget",
    "NaiveReplicateSource",
    "NaiveReplicateTarget",
    "MulticastReplicateSource",
    "MulticastReplicateTarget",
    "CombinerSource",
    "CombinerTarget",
    "SharpCombinerSource",
    "SharpCombinerTarget",
    "SwitchAggregator",
    "SeqTracker",
    "ReorderBuffer",
    "RingHandle",
    "SequencerHandle",
    "SegmentRing",
    "FOOTER_SIZE",
    "FLAG_CONSUMABLE",
    "FLAG_CLOSED",
    "key_hash_router",
    "radix_router",
    "range_router",
    "round_robin_router",
]
