"""Target-side reordering for globally-ordered replicate flows.

Implements the receive-list / next-list scheme of the paper's Figure 6:
segments arrive in any order (UD multicast is unordered and unreliable);
the *receive list* holds them in arrival order, consume calls move segments
into the *next list* kept sorted by sequence number, and segments are
returned strictly in sequence. Gaps (missing sequence numbers) are exposed
so the flow can either request a retransmission or notify the application
(NOPaxos' gap agreement).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.common.errors import FlowError


class ReorderBuffer:
    """In-order delivery over an out-of-order arrival stream.

    ``insert`` corresponds to a segment landing in the receive list;
    ``pop_ready`` performs the consume-call logic of Figure 6: drain the
    receive list into the sorted next list, then return the head if its
    sequence number is the next expected one.
    """

    def __init__(self) -> None:
        self._receive_list: deque[tuple[int, Any]] = deque()
        self._next_list: list[tuple[int, Any]] = []
        self._next_expected = 0
        #: Duplicate segments discarded (late retransmissions).
        self.duplicates_dropped = 0

    @property
    def next_expected(self) -> int:
        """The sequence number the next in-order delivery must carry."""
        return self._next_expected

    @property
    def pending(self) -> int:
        """Segments held out-of-order (both lists)."""
        return len(self._receive_list) + len(self._next_list)

    def insert(self, seq: int, payload: Any) -> bool:
        """Record an arrived segment. Returns False for duplicates."""
        if seq < self._next_expected or any(
                s == seq for s, _p in self._receive_list) or any(
                s == seq for s, _p in self._next_list):
            self.duplicates_dropped += 1
            return False
        self._receive_list.append((seq, payload))
        return True

    def pop_ready(self) -> "tuple[int, Any] | None":
        """Return the next in-sequence ``(seq, payload)`` or ``None``."""
        # Move arrivals into the next list, keeping it sorted (Figure 6's
        # pointer moves; no payload copies happen here either).
        while self._receive_list:
            entry = self._receive_list.popleft()
            self._insert_sorted(entry)
        if self._next_list and self._next_list[0][0] == self._next_expected:
            self._next_expected += 1
            return self._next_list.pop(0)
        return None

    def _insert_sorted(self, entry: tuple[int, Any]) -> None:
        seq = entry[0]
        position = len(self._next_list)
        for i, (existing, _p) in enumerate(self._next_list):
            if seq < existing:
                position = i
                break
        self._next_list.insert(position, entry)

    def missing_seq(self) -> "int | None":
        """The lowest missing sequence number blocking delivery, if any
        segment beyond it has already arrived."""
        if self._receive_list:
            # Not yet sorted; drain first for an accurate answer.
            while self._receive_list:
                self._insert_sorted(self._receive_list.popleft())
        if self._next_list and self._next_list[0][0] > self._next_expected:
            return self._next_expected
        return None

    def skip(self, seq: int) -> None:
        """Give up on sequence number ``seq`` (application-level gap
        handling): delivery continues after it."""
        if seq != self._next_expected:
            raise FlowError(
                f"can only skip the next expected sequence number "
                f"({self._next_expected}), not {seq}")
        self._next_expected += 1
