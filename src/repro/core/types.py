"""DFI's tuple type system (paper Section 4.1).

Types mirror the LP64 data model of the paper's C++ implementation. A type
is defined once per flow (inside a schema), so there is *no* per-tuple type
interpretation during flow execution: attribute access compiles down to
fixed offsets inside a packed binary tuple.

Applications can extend the system with :func:`fixed_bytes` (opaque
user-defined payloads of a fixed width) — the extension hook the paper
mentions for user-defined types.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SchemaError


@dataclass(frozen=True)
class DataType:
    """A fixed-width field type with its ``struct`` format code."""

    name: str
    code: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SchemaError(f"type {self.name!r} must have positive size")


INT8 = DataType("int8", "b", 1)
UINT8 = DataType("uint8", "B", 1)
INT16 = DataType("int16", "h", 2)
UINT16 = DataType("uint16", "H", 2)
INT32 = DataType("int32", "i", 4)
UINT32 = DataType("uint32", "I", 4)
INT64 = DataType("int64", "q", 8)
UINT64 = DataType("uint64", "Q", 8)
FLOAT = DataType("float", "f", 4)
DOUBLE = DataType("double", "d", 8)
CHAR = DataType("char", "c", 1)

#: The built-in types, by name (used by schema parsing helpers).
BUILTIN_TYPES = {
    dtype.name: dtype
    for dtype in (INT8, UINT8, INT16, UINT16, INT32, UINT32,
                  INT64, UINT64, FLOAT, DOUBLE, CHAR)
}


def fixed_bytes(size: int) -> DataType:
    """A user-defined opaque type of exactly ``size`` bytes.

    Values are ``bytes`` objects of that exact length.
    """
    if size <= 0:
        raise SchemaError("fixed_bytes size must be positive")
    return DataType(f"bytes[{size}]", f"{size}s", size)


def resolve_type(spec: "DataType | str | int") -> DataType:
    """Resolve a type spec: a :class:`DataType`, a builtin name like
    ``'uint64'``, or an int meaning ``fixed_bytes(n)``."""
    if isinstance(spec, DataType):
        return spec
    if isinstance(spec, str):
        try:
            return BUILTIN_TYPES[spec]
        except KeyError:
            raise SchemaError(f"unknown type name {spec!r}; known: "
                              f"{sorted(BUILTIN_TYPES)}") from None
    if isinstance(spec, int):
        return fixed_bytes(spec)
    raise SchemaError(f"cannot resolve type spec {spec!r}")
