"""The DFI runtime facade: the public API of the library.

Mirrors the paper's programming model (Figure 1)::

    dfi = DfiRuntime(cluster)
    schema = Schema(("key", "uint64"), ("value", "uint64"))
    dfi.init_shuffle_flow("shuffle", sources=["node0|0"],
                          targets=["node1|0", "node2|0"],
                          schema=schema, shuffle_key="key")

    # inside a source thread (a simulated process):
    source = yield from dfi.open_source("shuffle", 0)
    yield from source.push((7, 40))
    yield from source.close()

    # inside a target thread:
    target = yield from dfi.open_target("shuffle", 0)
    while (item := (yield from target.consume())) is not FLOW_END:
        ...
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import FlowError
from repro.core.combiner import CombinerSource, CombinerTarget
from repro.core.flowdef import (
    AggregationSpec,
    FlowDescriptor,
    FlowOptions,
    FlowType,
    Optimization,
    Ordering,
)
from repro.core.nodes import parse_endpoints
from repro.core.registry import FlowRegistry
from repro.core.replicate import ReplicateSource, ReplicateTarget
from repro.core.schema import Schema
from repro.core.shuffle import ShuffleSource, ShuffleTarget
from repro.simnet.cluster import Cluster


class DfiRuntime:
    """Per-cluster entry point for initializing and opening flows."""

    def __init__(self, cluster: Cluster, registry: FlowRegistry | None = None,
                 master_node_id: int = 0) -> None:
        self.cluster = cluster
        self.registry = registry or FlowRegistry(cluster, master_node_id)

    # -- flow initialization ------------------------------------------------
    def init_flow(self, descriptor: FlowDescriptor) -> FlowDescriptor:
        """Publish a fully specified flow descriptor."""
        return self.registry.initialize_flow(descriptor)

    def init_shuffle_flow(self, name: str, sources, targets, schema: Schema,
                          shuffle_key: "str | int | None" = None,
                          routing: "Callable | None" = None,
                          optimization: Optimization = Optimization.BANDWIDTH,
                          options: FlowOptions = FlowOptions(),
                          ) -> FlowDescriptor:
        """Initialize a shuffle flow (1:1, N:1, 1:N or N:M).

        Routing uses ``shuffle_key`` (hash partitioning) or ``routing`` (an
        application partition function); with neither, pushes must name
        their target explicitly.
        """
        return self.init_flow(FlowDescriptor(
            name=name, flow_type=FlowType.SHUFFLE,
            sources=parse_endpoints(sources),
            targets=parse_endpoints(targets),
            schema=schema, shuffle_key=shuffle_key, routing=routing,
            optimization=optimization, options=options))

    def init_replicate_flow(self, name: str, sources, targets,
                            schema: Schema,
                            optimization: Optimization = Optimization.BANDWIDTH,
                            ordering: Ordering = Ordering.NONE,
                            options: FlowOptions = FlowOptions(),
                            ) -> FlowDescriptor:
        """Initialize a replicate flow (1:N or N:M), optionally with global
        ordering and/or switch multicast (``options.multicast``)."""
        return self.init_flow(FlowDescriptor(
            name=name, flow_type=FlowType.REPLICATE,
            sources=parse_endpoints(sources),
            targets=parse_endpoints(targets),
            schema=schema, optimization=optimization, ordering=ordering,
            options=options))

    def init_combiner_flow(self, name: str, sources, target, schema: Schema,
                           aggregation: AggregationSpec,
                           optimization: Optimization = Optimization.BANDWIDTH,
                           options: FlowOptions = FlowOptions(),
                           ) -> FlowDescriptor:
        """Initialize an N:1 combiner flow with the given aggregation."""
        return self.init_flow(FlowDescriptor(
            name=name, flow_type=FlowType.COMBINER,
            sources=parse_endpoints(sources),
            targets=parse_endpoints([target]),
            schema=schema, aggregation=aggregation,
            optimization=optimization, options=options))

    # -- endpoint opening ----------------------------------------------------
    def open_source(self, name: str, source_index: int):
        """Generator: open source endpoint ``source_index`` of ``name``.

        Blocks (in simulated time) until the matching targets have
        published their receive buffers.
        """
        descriptor = self.registry.descriptor(name)
        if descriptor.flow_type is FlowType.SHUFFLE:
            opener = ShuffleSource.open
        elif descriptor.flow_type is FlowType.REPLICATE:
            opener = ReplicateSource.open
        elif descriptor.flow_type is FlowType.COMBINER:
            if descriptor.options.in_network_aggregation:
                from repro.core.sharp import SharpCombinerSource
                opener = SharpCombinerSource.open
            else:
                opener = CombinerSource.open
        else:  # pragma: no cover - enum is exhaustive
            raise FlowError(f"unknown flow type {descriptor.flow_type}")
        endpoint = yield from opener(self.registry, name, source_index)
        return endpoint

    def open_target(self, name: str, target_index: int = 0):
        """Generator: open target endpoint ``target_index`` of ``name``."""
        descriptor = self.registry.descriptor(name)
        if descriptor.flow_type is FlowType.SHUFFLE:
            return ShuffleTarget.open(self.registry, name, target_index)
        if descriptor.flow_type is FlowType.REPLICATE:
            endpoint = yield from ReplicateTarget.open(self.registry, name,
                                                       target_index)
            return endpoint
        if descriptor.flow_type is FlowType.COMBINER:
            if target_index != 0:
                raise FlowError("combiner flows have a single target (0)")
            if descriptor.options.in_network_aggregation:
                from repro.core.sharp import SharpCombinerTarget
                return SharpCombinerTarget.open(self.registry, name)
            return CombinerTarget.open(self.registry, name)
        raise FlowError(  # pragma: no cover - enum is exhaustive
            f"unknown flow type {descriptor.flow_type}")

    # -- introspection -----------------------------------------------------
    @property
    def fastpath_enabled(self) -> bool:
        """True when steady-state event elision is available to this
        runtime's flows (``REPRO_NO_FASTPATH`` kill switch off).

        Availability, not activity: each endpoint additionally requires
        telemetry off and a same-shard-lane peer at open time, and every
        flush re-checks the fault/congestion planes — an active plane
        de-elides the train instantly. The toggle is wall-clock only;
        simulated metrics are bit-identical either way (the fingerprint
        gate in CI).
        """
        from repro.common.config import fastpath_enabled

        return fastpath_enabled()

    def registered_memory_by_node(self) -> dict[int, int]:
        """Bytes of NIC-registered memory per node — the measurement behind
        the paper's Section 6.1.4 memory-consumption discussion."""
        from repro.rdma.nic import get_nic

        return {node.node_id: get_nic(node).registered_bytes()
                for node in self.cluster.nodes}
