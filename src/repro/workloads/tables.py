"""Synthetic relation generators for the join experiments.

The paper's join workload (Section 6.3.1) follows Barthels et al.: two
relations of 16-byte ``(key, payload)`` tuples, keys of the outer relation
drawn from the inner relation's key domain so every outer tuple has exactly
one join partner (a primary-key / foreign-key join).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError


def generate_relation(size: int, key_range: "int | None" = None,
                      seed: int = 0, unique: bool = False) -> np.ndarray:
    """Generate a relation as an ``(size, 2)`` uint64 array of
    ``(key, payload)`` rows.

    ``unique=True`` produces a primary-key relation (keys are a random
    permutation of ``range(size)``); otherwise keys are drawn uniformly
    from ``[0, key_range)`` (foreign keys).
    """
    if size <= 0:
        raise ConfigurationError("relation size must be positive")
    rng = np.random.default_rng(seed)
    if unique:
        keys = rng.permutation(size).astype(np.uint64)
    else:
        if key_range is None or key_range <= 0:
            raise ConfigurationError(
                "non-unique relations need a positive key_range")
        keys = rng.integers(0, key_range, size=size, dtype=np.uint64)
    payloads = rng.integers(0, 2 ** 32, size=size, dtype=np.uint64)
    return np.column_stack([keys, payloads])


def zipf_relation(size: int, key_range: int, theta: float = 1.2,
                  seed: int = 0) -> np.ndarray:
    """Foreign-key relation with zipf-skewed keys (for skew experiments)."""
    if not theta > 1.0:
        raise ConfigurationError("numpy zipf needs theta > 1")
    rng = np.random.default_rng(seed)
    keys = (rng.zipf(theta, size=size) - 1) % key_range
    payloads = rng.integers(0, 2 ** 32, size=size, dtype=np.uint64)
    return np.column_stack([keys.astype(np.uint64), payloads])


def partition_chunks(relation: np.ndarray, parts: int) -> list[np.ndarray]:
    """Split a relation into ``parts`` nearly equal contiguous chunks
    (the per-worker input assignment)."""
    if parts <= 0:
        raise ConfigurationError("parts must be positive")
    return [chunk for chunk in np.array_split(relation, parts)]
