"""YCSB workload generator (Cooper et al., SoCC '10).

The consensus experiment (paper Fig. 15) uses YCSB's read-dominated
workload B: 95% reads, 5% writes, zipfian key popularity, 64-byte
requests. This module reimplements the generator: deterministic per seed.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rand import ZipfGenerator


class YcsbOperation(enum.Enum):
    READ = "read"
    UPDATE = "update"


@dataclass(frozen=True)
class YcsbConfig:
    """Parameters of a YCSB workload."""

    record_count: int = 10_000
    read_proportion: float = 0.95
    value_size: int = 56  # 8-byte key + 56-byte value = 64 B requests
    distribution: str = "zipfian"  # or "uniform"
    zipf_theta: float = 0.99

    def __post_init__(self) -> None:
        if self.record_count <= 0:
            raise ConfigurationError("record_count must be positive")
        if not 0.0 <= self.read_proportion <= 1.0:
            raise ConfigurationError("read_proportion must be in [0, 1]")
        if self.distribution not in ("zipfian", "uniform"):
            raise ConfigurationError(
                f"unknown distribution {self.distribution!r}")


@dataclass(frozen=True)
class YcsbRequest:
    """One generated operation."""

    op: YcsbOperation
    key: int
    value: bytes  # empty for reads


class YcsbWorkload:
    """Deterministic request stream for one client."""

    def __init__(self, config: YcsbConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = random.Random(f"ycsb:{seed}")
        self._zipf = ZipfGenerator(config.record_count,
                                   theta=config.zipf_theta, rng=self._rng)
        self.generated = 0

    def next_key(self) -> int:
        if self.config.distribution == "uniform":
            return self._rng.randrange(self.config.record_count)
        return min(self._zipf.next(), self.config.record_count - 1)

    def next_request(self) -> YcsbRequest:
        """Draw the next operation from the configured mix."""
        self.generated += 1
        key = self.next_key()
        if self._rng.random() < self.config.read_proportion:
            return YcsbRequest(YcsbOperation.READ, key, b"")
        value = self._rng.randbytes(self.config.value_size)
        return YcsbRequest(YcsbOperation.UPDATE, key, value)

    def requests(self, count: int):
        """Yield ``count`` requests."""
        for _ in range(count):
            yield self.next_request()
