"""Workload generators: YCSB and synthetic join relations."""

from repro.workloads.tables import (
    generate_relation,
    partition_chunks,
    zipf_relation,
)
from repro.workloads.ycsb import YcsbConfig, YcsbOperation, YcsbWorkload

__all__ = [
    "YcsbWorkload",
    "YcsbConfig",
    "YcsbOperation",
    "generate_relation",
    "zipf_relation",
    "partition_chunks",
]
