"""Queue pairs: reliable connection (RC) and unreliable datagram (UD).

The RC queue pair offers the verbs DFI builds on:

* one-sided ``WRITE`` with the increasing-address DMA commit order (payload
  bytes land strictly before the trailing footer bytes — the property that
  lets DFI use a footer flag instead of checksums, paper Section 5.2);
* one-sided ``READ`` (used to poll remote footers);
* atomics ``FETCH_ADD`` / ``COMPARE_SWAP`` (the tuple sequencer);
* two-sided ``SEND``/``RECV`` with eager buffering;
* selective signaling: only signaled requests produce CQ entries, all
  requests expose a ``done`` event.

The UD queue pair carries multicast: unreliable (fabric loss + drops when no
receive request is posted) and MTU-limited, matching InfiniBand UD.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.common.errors import QpFlushedError, RdmaError
from repro.rdma.completion import Completion, CompletionQueue, Opcode, WcStatus, WorkRequest
from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import RNic, get_nic
from repro.simnet.node import Node

if TYPE_CHECKING:
    pass

#: Wire size of a one-sided READ / atomic request packet.
_REQUEST_PACKET_SIZE = 16
#: Trailing bytes of a WRITE that commit last (covers DFI's 16-byte footer).
_ORDERED_TAIL = 64
#: InfiniBand UD MTU: the largest datagram an unreliable QP can carry.
UD_MTU = 4096


def _as_bytes(payload: bytes | bytearray | memoryview) -> bytes:
    if isinstance(payload, bytes):
        return payload
    return bytes(payload)


def _action_when(action) -> float:
    """Sort key for (when, fn, arg) train actions (stable on equal
    times)."""
    return action[0]


def _commit_write(args) -> None:
    """Shared train action: commit one write's payload pieces to remote
    memory. ``args`` is a ``(region, base, parts)`` record — one shared
    function plus a tuple per WQE replaces a closure per WQE on the
    fault-free train path."""
    region, base, parts = args
    write = region.write
    for piece_offset, chunk in parts:
        write(base + piece_offset, chunk)


#: A scatter-gather payload: one buffer or a sequence of buffers that are
#: written contiguously (e.g. ``[payload_view, footer]``).
Gather = "bytes | bytearray | memoryview | list | tuple"


def _gather_chunks(payload, assume_stable: bool) -> list:
    """Normalize a payload (single buffer or gather list) into chunks.

    Without ``assume_stable`` every mutable buffer is snapshotted at post
    time (the classical verbs-emulation behaviour). With it, bytearray /
    memoryview chunks are wrapped zero-copy; the caller guarantees the
    bytes stay unchanged until the write has committed remotely.
    """
    chunks = (list(payload) if isinstance(payload, (list, tuple))
              else [payload])
    if assume_stable:
        return [chunk if isinstance(chunk, (bytes, memoryview))
                else memoryview(chunk) for chunk in chunks]
    return [_as_bytes(chunk) for chunk in chunks]


class QueuePair:
    """A reliable-connection queue pair bound to one remote node."""

    __slots__ = ("nic", "env", "qpn", "node", "remote_node", "send_cq",
                 "recv_cq", "_peer", "_recv_queue", "_pending_rx",
                 "_staged", "_metrics", "_causal", "_obs_wqes_posted",
                 "_obs_wqes_signaled", "_obs_trains", "_obs_train_hist",
                 "_ack_delta", "_inline_max", "_remote_nic")

    def __init__(self, nic: RNic, qpn: int, remote_node: Node,
                 send_cq: CompletionQueue, recv_cq: CompletionQueue) -> None:
        self.nic = nic
        self.env = nic.env
        self.qpn = qpn
        self.node = nic.node
        self.remote_node = remote_node
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self._peer: "QueuePair | None" = None
        self._recv_queue: deque[tuple[MemoryRegion, int, int, Any]] = deque()
        self._pending_rx: deque[tuple[bytes, int | None]] = deque()
        #: WQEs staged by ``post_write(doorbell=False)`` awaiting the
        #: explicit ``ring_doorbell()``.
        self._staged: list = []
        #: Path constants precomputed once per QP: the profile is frozen
        #: and the endpoints never change, so the per-train code reads
        #: attributes instead of re-deriving them per WQE.
        profile = nic.profile
        self._ack_delta = (profile.loopback_latency
                           if remote_node is nic.node
                           else profile.wire_latency)
        self._inline_max = profile.max_inline_size
        #: Remote NIC, resolved lazily (the peer NIC may not exist yet at
        #: QP construction time).
        self._remote_nic: "RNic | None" = None
        #: Cached per-node metrics registry (``None`` while observability
        #: is off — enable it before creating queue pairs). The WQE/train
        #: tallies below are plain attribute adds on the hot path; the
        #: registry harvests them at read time via the collector.
        self._metrics = nic.node.metrics
        #: Cached causal recorder (``None`` unless
        #: ``enable_observability(causal=True)`` ran first) — same
        #: hot-path contract as ``_metrics``. Edge recording reads
        #: ``env.now``-derived floats only: zero kernel events, zero RNG.
        self._causal = nic.node.causal
        self._obs_wqes_posted = 0
        self._obs_wqes_signaled = 0
        self._obs_trains = 0
        self._obs_train_hist = None
        if self._metrics is not None:
            self._metrics.add_collector(self._collect_obs)

    def _collect_obs(self):
        """Read-time counter harvest (see MetricsRegistry.add_collector)."""
        posted = self._obs_wqes_posted
        signaled = self._obs_wqes_signaled
        return (("rdma.wqes_posted", posted),
                ("rdma.wqes_signaled", signaled),
                ("rdma.wqes_unsignaled", posted - signaled),
                ("rdma.doorbell_trains", self._obs_trains))

    # -- connection handling (two-sided only) ------------------------------
    def connect(self, peer: "QueuePair") -> None:
        """Pair this QP with ``peer`` for two-sided SEND/RECV traffic."""
        if peer.node is not self.remote_node or peer.remote_node is not self.node:
            raise RdmaError(
                f"QP pair mismatch: {self.node.name}->{self.remote_node.name} "
                f"vs {peer.node.name}->{peer.remote_node.name}")
        self._peer = peer
        peer._peer = self

    # -- helpers -----------------------------------------------------------
    def _fabric(self):
        return self.node.cluster.fabric

    def _faults(self):
        """The installed fault plane, or ``None`` when absent/empty (the
        empty-plane case short-circuits here so fault-free runs keep the
        exact event pattern of a build without the fault plane)."""
        faults = self.node.cluster.faults
        if faults is None or not faults.active:
            return None
        return faults

    def _congestion(self):
        """The installed congestion plane, or ``None`` when absent — the
        ``congestion=None`` default short-circuits here, keeping the
        exact event pattern (and bit-identical timeline) of a build
        without the congestion subsystem."""
        plane = self.node.cluster.congestion
        if plane is None or not plane.active:
            return None
        return plane

    def _flush_after(self, wr: WorkRequest, delay: float,
                     status: WcStatus) -> None:
        """Fail ``wr`` after ``delay`` ns with ``status``. The error
        completion is pushed regardless of ``signaled`` — real verbs
        report failed work requests even when unsignaled."""
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("rdma.wqe_flushes")
            if status is WcStatus.RETRY_EXC_ERR:
                metrics.inc("rdma.retry_exc_err")
        if self._causal is not None:
            self._causal.sleep_edge(delay, "fault_backoff",
                                    self.node.node_id, f"qp{self.qpn}")
        timer = self.env.pooled_timeout(delay)

        def on_timeout(_event, wr=wr, status=status):
            wr._fail(QpFlushedError(
                f"{wr.opcode.value} {self.node.name} -> "
                f"{self.remote_node.name} flushed: {status.value}"))
            self.send_cq.push(Completion(
                wr_id=wr.wr_id, opcode=wr.opcode, status=status))

        timer.callbacks.append(on_timeout)

    def _flush_wr(self, opcode: Opcode, wr_id: Any, signaled: bool,
                  faults, status: WcStatus = WcStatus.RETRY_EXC_ERR) -> WorkRequest:
        """Create a work request destined to complete in error after the
        transport's retry window: the peer is unreachable at post time."""
        wr = WorkRequest(self.env, wr_id, opcode, signaled)
        self._flush_after(wr, faults.detection_timeout, status)
        return wr

    def _ack_latency(self) -> float:
        return self._ack_delta

    def _get_remote_nic(self) -> "RNic":
        remote_nic = self._remote_nic
        if remote_nic is None:
            remote_nic = self._remote_nic = get_nic(self.remote_node)
        return remote_nic

    def _finish_signaled(self, args) -> None:
        """Shared train action: complete a signaled WQE and push its CQ
        entry. ``args`` is a ``(wr, size)`` record (see
        :func:`_commit_write` for the record rationale)."""
        wr, size = args
        wr._complete(None)
        self.send_cq.push(Completion(
            wr_id=wr.wr_id, opcode=wr.opcode,
            status=WcStatus.SUCCESS, byte_len=size))

    def _finish(self, wr: WorkRequest, delay: float, byte_len: int,
                result: Any = None) -> None:
        """Complete ``wr`` after ``delay`` ns: trigger ``done`` and push a
        CQ entry if the request was signaled."""
        done_timer = self.env.pooled_timeout(delay)

        def on_done(_event, wr=wr, result=result, byte_len=byte_len):
            faults = self._faults()
            if faults is not None and not faults.node_alive(self.remote_node):
                # The peer died while the operation was in flight: no ACK
                # ever comes back, the QP enters the error state.
                wr._fail(QpFlushedError(
                    f"{wr.opcode.value} {self.node.name} -> "
                    f"{self.remote_node.name} flushed: peer failed in "
                    f"flight"))
                self.send_cq.push(Completion(
                    wr_id=wr.wr_id, opcode=wr.opcode,
                    status=WcStatus.WR_FLUSH_ERR, byte_len=byte_len))
                return
            wr._complete(result)
            if wr.signaled:
                self.send_cq.push(Completion(
                    wr_id=wr.wr_id, opcode=wr.opcode, status=WcStatus.SUCCESS,
                    byte_len=byte_len, result=result))

        done_timer.callbacks.append(on_done)

    # -- one-sided WRITE -----------------------------------------------------
    def post_write(self, payload,
                   remote_rkey: int, remote_offset: int,
                   signaled: bool = False, wr_id: Any = None,
                   assume_stable: bool = False,
                   doorbell: bool = True) -> WorkRequest:
        """Post a one-sided RDMA WRITE of ``payload`` into the remote region.

        ``payload`` is one buffer or a gather list of buffers (written
        contiguously — DFI posts ``[payload_view, footer]`` so a full
        segment goes out without an intermediate concatenation).

        With ``assume_stable`` mutable buffers are *not* snapshotted at
        post time: the commit into remote memory reads the live buffer, so
        the caller must not touch the bytes until the write completed —
        exactly the send-ring contract real verbs impose (DFI reuses a
        ring slot only after the wrap-around completion drained).

        With ``doorbell=False`` the WQE is only staged on the send queue:
        no NIC arbitration, no wire reservation, no timers. A later
        :meth:`ring_doorbell` submits every staged WQE as one doorbell
        train. Mutable buffers are still snapshotted (or wrapped, under
        ``assume_stable``) at *staging* time.

        Returns the work request; its ``done`` event triggers when the RC
        acknowledgment returns to this sender. The remote CPU is never
        involved. The payload bytes are committed to remote memory in
        increasing address order: everything before the trailing
        ``_ORDERED_TAIL`` bytes lands strictly earlier, so a footer flag at
        the end of a segment proves the whole segment arrived.
        """
        if isinstance(payload, (list, tuple)):
            chunks = _gather_chunks(payload, assume_stable)
            size = 0
            pieces = []  # (offset within the write, chunk)
            for chunk in chunks:
                if len(chunk):
                    pieces.append((size, chunk))
                    size += len(chunk)
        else:
            # Fast path for the dominant case: one buffer, no gather list.
            chunk = payload
            if not isinstance(chunk, bytes):
                chunk = (memoryview(chunk) if assume_stable
                         else bytes(chunk))
            size = len(chunk)
            pieces = [(0, chunk)]
        if not size:
            raise RdmaError("cannot post a zero-length write")
        if not doorbell:
            wr = WorkRequest(self.env, wr_id, Opcode.WRITE, signaled)
            self._staged.append((wr, size, pieces, remote_rkey,
                                 remote_offset))
            return wr
        if self._metrics is not None:
            self._obs_wqes_posted += 1
            if signaled:
                self._obs_wqes_signaled += 1
        faults = self._faults()
        if faults is not None:
            admit = faults.rc_admission(self.node, self.remote_node)
            if admit is None:
                return self._flush_wr(Opcode.WRITE, wr_id, signaled, faults)
            fault_delay = admit
        else:
            fault_delay = 0.0
        congestion = self._congestion()
        if congestion is not None:
            fault_delay += congestion.rc_admit(self, size)
        remote_region = self._get_remote_nic().region(remote_rkey)
        remote_region.check_range(remote_offset, size)
        inline = size <= self._inline_max
        offset_delay = self.nic.engine_delay(inline) + fault_delay
        self.nic.bytes_posted += size
        arrival = self._fabric().unicast(self.node, self.remote_node, size,
                                         delay=offset_delay)
        if congestion is not None:
            congestion.rc_sent(self, size, arrival.delay)
        causal = self._causal
        if causal is not None:
            # Per-WQE chain: post -> [admission edges recorded by the
            # fault/congestion planes] -> nic_arb -> wire -> ack. The
            # admission planes anchor their edges on [now, now+fault_delay]
            # themselves, so the NIC edge starts where admission ended.
            now = self.env.now
            tid = f"qp{self.qpn}"
            causal.edge(now + offset_delay, now + fault_delay, "nic_arb",
                        self.node.node_id, tid)
            arrival_at = now + arrival.delay
            causal.edge(arrival_at, now + offset_delay, "wire",
                        self.remote_node.node_id, tid,
                        src_node_id=self.node.node_id)
            causal.edge(arrival_at + self._ack_delta, arrival_at, "wire",
                        self.node.node_id, tid,
                        src_node_id=self.remote_node.node_id)
        tail_len = min(size, _ORDERED_TAIL)
        split = size - tail_len
        prefix_pieces = []
        tail_pieces = []
        for offset, chunk in pieces:
            end = offset + len(chunk)
            if end <= split:
                prefix_pieces.append((offset, chunk))
            elif offset >= split:
                tail_pieces.append((offset, chunk))
            else:
                view = (chunk if isinstance(chunk, memoryview)
                        else memoryview(chunk))
                cut = split - offset
                prefix_pieces.append((offset, view[:cut]))
                tail_pieces.append((split, view[cut:]))
        if prefix_pieces:
            bandwidth = self.nic.profile.link_bandwidth
            prefix_delay = max(0.0, arrival.delay - tail_len / bandwidth)
            prefix_timer = self.env.pooled_timeout(prefix_delay)

            def commit_prefix(_event, region=remote_region,
                              base=remote_offset, parts=prefix_pieces):
                faults = self._faults()
                if (faults is not None
                        and not faults.node_alive(self.remote_node)):
                    return  # crashed memory accepts no more commits
                for offset, chunk in parts:
                    region.write(base + offset, chunk)

            prefix_timer.callbacks.append(commit_prefix)

        def commit_tail(_event, region=remote_region,
                        base=remote_offset, parts=tail_pieces):
            faults = self._faults()
            if faults is not None and not faults.node_alive(self.remote_node):
                return  # crashed memory accepts no more commits
            for offset, chunk in parts:
                region.write(base + offset, chunk)

        arrival.callbacks.append(commit_tail)
        wr = WorkRequest(self.env, wr_id, Opcode.WRITE, signaled)
        self._finish(wr, arrival.delay + self._ack_latency(), size)
        return wr

    # -- doorbell trains ----------------------------------------------------
    def ring_doorbell(self, fused: bool = False) -> list[WorkRequest]:
        """Submit every WQE staged with ``post_write(doorbell=False)`` as
        one doorbell train and return their work requests (in posting
        order). A no-op returning ``[]`` when nothing is staged.

        ``fused=True`` requests the steady-state macro-event path
        (:meth:`post_write_train_fused`); the request is advisory — the
        train de-elides back to the event-by-event path the moment a
        fault plan or congestion plane is active, or telemetry is on.
        """
        staged = self._staged
        if not staged:
            return []
        self._staged = []
        if fused:
            return self.post_write_train_fused(staged)
        return self._post_train(staged)

    def steady_state(self) -> bool:
        """True when no plane could observe per-WQE event machinery:
        telemetry off, no active fault plan, no active congestion plane.
        The dynamic half of the steady-state predicate — callers on the
        fused path re-check it on every flush (de-elision)."""
        return (self._metrics is None and self._faults() is None
                and self._congestion() is None)

    def post_ring_train_fused(self, entries, region) -> None:
        """Slimmed fused posting for ring channels that pre-resolve their
        remote region: ``entries`` is a list of ``(wr, size, pieces,
        offset)`` where ``wr`` is ``None`` for unsignaled fire-and-forget
        WQEs (the ring protocols drop them unobserved, so no WorkRequest
        needs to exist) and ``region`` is the channel's pre-validated
        remote ring region. Callers must hold :meth:`steady_state` —
        this method performs no de-elision checks of its own.

        Timing-identical to staging each entry through ``post_write``
        and ringing the doorbell: same ``engine_delay_train`` /
        ``unicast_train`` bookings, same commit/ack instants, and one
        ``schedule_macro`` arm exactly like ``_post_train``'s single
        ``schedule_train`` arm.
        """
        nic = self.nic
        env = self.env
        ack_latency = self._ack_delta
        inline_max = self._inline_max
        if len(entries) == 1:
            wr, size, pieces, offset = entries[0]
            delay = nic.engine_delay_train_one(size <= inline_max)
            nic.bytes_posted += size
            arrival = self._fabric().unicast_train_one(
                self.node, self.remote_node, size, delay)
            commit = (arrival, _commit_write, (region, offset, pieces))
            if wr is not None:
                env.schedule_macro(
                    [commit, (arrival + ack_latency,
                              self._finish_signaled, (wr, size))])
            else:
                env.schedule_macro([commit])
            return
        sizes = []
        inlines = []
        total = 0
        for entry in entries:
            size = entry[1]
            sizes.append(size)
            inlines.append(size <= inline_max)
            total += size
        delays = nic.engine_delay_train(inlines)
        nic.bytes_posted += total
        arrivals = self._fabric().unicast_train(self.node, self.remote_node,
                                                sizes, delays)
        actions = []
        finish_signaled = self._finish_signaled
        last = len(entries) - 1
        needs_sort = False
        for position, ((wr, size, pieces, offset),
                       arrival) in enumerate(zip(entries, arrivals)):
            actions.append((arrival, _commit_write,
                            (region, offset, pieces)))
            if wr is not None:
                actions.append((arrival + ack_latency, finish_signaled,
                                (wr, size)))
                if position != last:
                    needs_sort = True
        if needs_sort:
            actions.sort(key=_action_when)
        env.schedule_macro(actions)

    def post_write_train_fused(self, entries) -> list[WorkRequest]:
        """Steady-state twin of :meth:`_post_train`: book the whole
        segment-train lifecycle (NIC arbitration → wire reservation →
        remote commit → acknowledgment) analytically and walk it with a
        single pooled :class:`~repro.simnet.kernel.MacroEvent` instead
        of the closure-based timer train.

        Bit-identical to :meth:`_post_train` by construction — same
        ``engine_delay_train`` / ``unicast_train`` bookings, same commit
        and ack timestamps, and ``schedule_macro`` advances kernel
        sequence numbers in lockstep with ``schedule_train`` (one
        ``_schedule_abs`` per arm and per hop). **De-elides instantly**:
        any active fault plan or congestion plane, or telemetry being
        on, routes the train through :meth:`_post_train` unchanged —
        the fused path never owns a decision those planes could see.
        """
        if not entries:
            return []
        if (self._metrics is not None or self._faults() is not None
                or self._congestion() is not None):
            # De-elision: a plane (or the telemetry counters) is awake —
            # fall back to the event-by-event machinery verbatim.
            return self._post_train(entries)
        nic = self.nic
        remote_nic = self._get_remote_nic()
        inline_max = self._inline_max
        ack_latency = self._ack_delta
        env = self.env
        if len(entries) == 1:
            wr, size, pieces, rkey, offset = entries[0]
            region = remote_nic.region(rkey)
            region.check_range(offset, size)
            delay = nic.engine_delay_train_one(size <= inline_max)
            nic.bytes_posted += size
            arrival = self._fabric().unicast_train_one(
                self.node, self.remote_node, size, delay)
            ack_at = arrival + ack_latency
            commit = (arrival, _commit_write, (region, offset, pieces))
            if wr.signaled:
                env.schedule_macro(
                    [commit, (ack_at, self._finish_signaled, (wr, size))])
            else:
                wr._complete_at(ack_at)
                env.schedule_macro([commit])
            return [wr]
        sizes = []
        inlines = []
        regions = []
        total = 0
        for _wr, size, pieces, rkey, offset in entries:
            region = remote_nic.region(rkey)
            region.check_range(offset, size)
            regions.append(region)
            sizes.append(size)
            inlines.append(size <= inline_max)
            total += size
        delays = nic.engine_delay_train(inlines)
        nic.bytes_posted += total
        arrivals = self._fabric().unicast_train(self.node, self.remote_node,
                                                sizes, delays)
        actions = []
        finish_signaled = self._finish_signaled
        last = len(entries) - 1
        needs_sort = False
        for position, ((wr, size, pieces, rkey, offset), region,
                       arrival) in enumerate(zip(entries, regions,
                                                 arrivals)):
            actions.append((arrival, _commit_write,
                            (region, offset, pieces)))
            ack_at = arrival + ack_latency
            if wr.signaled:
                actions.append((ack_at, finish_signaled, (wr, size)))
                if position != last:
                    needs_sort = True
            else:
                wr._complete_at(ack_at)
        if needs_sort:
            actions.sort(key=_action_when)
        env.schedule_macro(actions)
        return [entry[0] for entry in entries]

    def post_write_batch(self, writes,
                         assume_stable: bool = False) -> list[WorkRequest]:
        """Post a train of one-sided WRITEs as one scheduling unit.

        ``writes`` is a sequence of ``(payload, remote_rkey,
        remote_offset, signaled)`` tuples (``signaled`` may be omitted and
        defaults to False; a fifth element is taken as ``wr_id``). The
        train is equivalent to posting each write back-to-back at the
        current instant — identical NIC arbitration, wire occupancy,
        commit and acknowledgment times — but is driven by O(1) in-flight
        kernel events instead of O(writes): one chained timer walks the
        commit train and unsignaled acknowledgments expand lazily (see
        ``WorkRequest._complete_at``).
        """
        entries = []
        for write in writes:
            payload, rkey, offset = write[0], write[1], write[2]
            signaled = write[3] if len(write) > 3 else False
            wr_id = write[4] if len(write) > 4 else None
            if isinstance(payload, (list, tuple)):
                chunks = _gather_chunks(payload, assume_stable)
                size = 0
                pieces = []
                for chunk in chunks:
                    if len(chunk):
                        pieces.append((size, chunk))
                        size += len(chunk)
            else:
                chunk = payload
                if not isinstance(chunk, bytes):
                    chunk = (memoryview(chunk) if assume_stable
                             else bytes(chunk))
                size = len(chunk)
                pieces = [(0, chunk)]
            if not size:
                raise RdmaError("cannot post a zero-length write")
            entries.append((WorkRequest(self.env, wr_id, Opcode.WRITE,
                                        signaled),
                            size, pieces, rkey, offset))
        return self._post_train(entries)

    def _post_train(self, entries) -> list[WorkRequest]:
        """Fast path for a doorbell train: reserve the NIC pipeline and the
        wire for the whole train at once, then schedule one event train
        that commits each write's payload at its exact arrival time.

        Every timestamp matches the unbatched path bit-for-bit — the only
        behavioural difference is that a write's *prefix* bytes commit
        together with its tail at arrival instead of one tail-serialization
        earlier (the coalescing is protocol-invisible: DFI only ever acts
        on the footer, which commits at arrival either way).
        """
        if not entries:
            return []
        metrics = self._metrics
        if metrics is not None:
            count = len(entries)
            self._obs_wqes_posted += count
            signaled = 0
            for entry in entries:
                if entry[0].signaled:
                    signaled += 1
            self._obs_wqes_signaled += signaled
            self._obs_trains += 1
            hist = self._obs_train_hist
            if hist is None:
                hist = self._obs_train_hist = metrics.histogram(
                    "rdma.train_len")
            hist.record(count)
        faults = self._faults()
        congestion = self._congestion()
        if faults is not None or congestion is not None:
            return self._post_train_sequential(entries, faults, congestion)
        nic = self.nic
        remote_nic = self._get_remote_nic()
        inline_max = self._inline_max
        ack_latency = self._ack_delta
        if len(entries) == 1:
            # Trains of one are the common shape on hash-routed shuffles
            # (each channel's share of a batch is about one segment);
            # skip the multi-entry list/zip machinery. Same arbitration
            # and wire calls, so timestamps stay bit-identical.
            wr, size, pieces, rkey, offset = entries[0]
            region = remote_nic.region(rkey)
            region.check_range(offset, size)
            delays = nic.engine_delay_train([size <= inline_max])
            nic.bytes_posted += size
            arrival = self._fabric().unicast_train(
                self.node, self.remote_node, [size], delays)[0]
            ack_at = arrival + ack_latency
            causal = self._causal
            if causal is not None:
                now = self.env.now
                tid = f"qp{self.qpn}"
                causal.edge(now + delays[0], now, "nic_arb",
                            self.node.node_id, tid)
                causal.edge(arrival, now + delays[0], "wire",
                            self.remote_node.node_id, tid,
                            src_node_id=self.node.node_id)
                causal.edge(ack_at, arrival, "wire", self.node.node_id,
                            tid, src_node_id=self.remote_node.node_id)
            commit = (arrival, _commit_write, (region, offset, pieces))
            if wr.signaled:
                self.env.schedule_train(
                    [commit, (ack_at, self._finish_signaled, (wr, size))])
            else:
                wr._complete_at(ack_at)
                self.env.schedule_train([commit])
            return [wr]
        sizes = []
        inlines = []
        regions = []
        total = 0
        for _wr, size, pieces, rkey, offset in entries:
            region = remote_nic.region(rkey)
            region.check_range(offset, size)
            regions.append(region)
            sizes.append(size)
            inlines.append(size <= inline_max)
            total += size
        delays = nic.engine_delay_train(inlines)
        nic.bytes_posted += total
        arrivals = self._fabric().unicast_train(self.node, self.remote_node,
                                                sizes, delays)
        actions = []
        finish_signaled = self._finish_signaled
        last = len(entries) - 1
        needs_sort = False
        causal = self._causal
        if causal is not None:
            train_now = self.env.now
            train_tid = f"qp{self.qpn}"
        for position, ((wr, size, pieces, rkey, offset), region,
                       arrival) in enumerate(zip(entries, regions,
                                                 arrivals)):
            actions.append((arrival, _commit_write,
                            (region, offset, pieces)))
            ack_at = arrival + ack_latency
            if causal is not None:
                # Chain the train's NIC arbitration: each WQE's engine
                # slot follows the previous WQE's wire handoff.
                arb_parent = (train_now if position == 0
                              else train_now + delays[position - 1])
                causal.edge(train_now + delays[position], arb_parent,
                            "nic_arb", self.node.node_id, train_tid)
                causal.edge(arrival, train_now + delays[position], "wire",
                            self.remote_node.node_id, train_tid,
                            src_node_id=self.node.node_id)
                causal.edge(ack_at, arrival, "wire", self.node.node_id,
                            train_tid,
                            src_node_id=self.remote_node.node_id)
            if wr.signaled:
                actions.append((ack_at, finish_signaled, (wr, size)))
                # A mid-train ack interleaves with later arrivals; a
                # trailing ack (the selective-signaling shape) lands at or
                # after the last arrival, so order is already correct.
                if position != last:
                    needs_sort = True
            else:
                wr._complete_at(ack_at)
        if needs_sort:
            actions.sort(key=_action_when)
        self.env.schedule_train(actions)
        return [entry[0] for entry in entries]

    def _post_train_sequential(self, entries, faults,
                               congestion=None) -> list[WorkRequest]:
        """Train posting under an active fault and/or congestion plane.

        The NIC drains a doorbell train sequentially, so each WQE is
        admitted against the path state at its own wire-serialization start
        time (NIC issue or the uplink busy horizon, whichever is later):
        an outage that begins mid-train delivers the prefix of the train
        and flushes the failing WQE *and every later one* with
        ``RETRY_EXC_ERR`` (the QP enters the error state; real RC flushes
        the rest of the send queue). Under congestion each WQE is rate-
        paced and marked individually — a train is not exempt from the
        egress queue bound. Admitted WQEs take the eager per-write
        machinery — chaos/congestion runs trade the O(1)-event fast path
        for exact per-WQE observability (arrival and ack timestamps stay
        bit-identical to the fast path when both planes add zero delay:
        the PR 4 train-equivalence contract).
        """
        env = self.env
        nic = self.nic
        inline_max = nic.profile.max_inline_size
        remote_nic = self._get_remote_nic()
        fabric = self._fabric()
        loopback = self.remote_node is self.node
        uplink = None if loopback else self.node.uplink
        results = []
        flush_rest = False
        for wr, size, pieces, rkey, offset in entries:
            results.append(wr)
            if flush_rest:
                self._flush_after(wr, faults.detection_timeout,
                                  WcStatus.RETRY_EXC_ERR)
                continue
            inline = size <= inline_max
            offset_delay = nic.engine_delay(inline)
            admit = 0.0
            if faults is not None:
                wire_at = env.now + offset_delay
                if uplink is not None and uplink.busy_until > wire_at:
                    wire_at = uplink.busy_until
                admit = faults.rc_admission(self.node, self.remote_node,
                                            at=wire_at)
                if admit is None:
                    flush_rest = True
                    self._flush_after(wr, faults.detection_timeout,
                                      WcStatus.RETRY_EXC_ERR)
                    continue
            if congestion is not None:
                admit += congestion.rc_admit(self, size)
            region = remote_nic.region(rkey)
            region.check_range(offset, size)
            nic.bytes_posted += size
            arrival = fabric.unicast(self.node, self.remote_node, size,
                                     delay=offset_delay + admit)
            if congestion is not None:
                congestion.rc_sent(self, size, arrival.delay)
            causal = self._causal
            if causal is not None:
                now = env.now
                tid = f"qp{self.qpn}"
                causal.edge(now + offset_delay, now, "nic_arb",
                            self.node.node_id, tid)
                arrival_at = now + arrival.delay
                causal.edge(arrival_at, now + offset_delay + admit, "wire",
                            self.remote_node.node_id, tid,
                            src_node_id=self.node.node_id)
                causal.edge(arrival_at + self._ack_delta, arrival_at,
                            "wire", self.node.node_id, tid,
                            src_node_id=self.remote_node.node_id)

            def commit(_event, region=region, base=offset, parts=pieces):
                plane = self._faults()
                if (plane is not None
                        and not plane.node_alive(self.remote_node)):
                    return  # crashed memory accepts no more commits
                for piece_offset, chunk in parts:
                    region.write(base + piece_offset, chunk)

            arrival.callbacks.append(commit)
            self._finish(wr, arrival.delay + self._ack_latency(), size)
        return results

    # -- one-sided READ ----------------------------------------------------
    def post_read(self, local_region: MemoryRegion, local_offset: int,
                  remote_rkey: int, remote_offset: int, length: int,
                  signaled: bool = True, wr_id: Any = None) -> WorkRequest:
        """Post a one-sided RDMA READ of ``length`` remote bytes into
        ``local_region`` at ``local_offset``.

        The remote memory is snapshotted when the request packet reaches
        the remote NIC; ``done`` triggers (with the bytes as its value)
        when the response lands locally.
        """
        if length <= 0:
            raise RdmaError("read length must be positive")
        if self._metrics is not None:
            self._metrics.inc("rdma.reads_posted")
        faults = self._faults()
        fault_delay = 0.0
        if faults is not None:
            admit = faults.rc_admission(self.node, self.remote_node)
            if admit is None:
                return self._flush_wr(Opcode.READ, wr_id, signaled, faults)
            fault_delay = admit
        remote_region = self._get_remote_nic().region(remote_rkey)
        remote_region.check_range(remote_offset, length)
        local_region.check_range(local_offset, length)
        offset_delay = self.nic.engine_delay(inline=True) + fault_delay
        wr = WorkRequest(self.env, wr_id, Opcode.READ, signaled)
        request = self._fabric().unicast(self.node, self.remote_node,
                                         _REQUEST_PACKET_SIZE,
                                         delay=offset_delay, control=True)

        def on_request_arrival(_event):
            faults = self._faults()
            if faults is not None and not faults.node_alive(self.remote_node):
                # Peer crashed while the request packet was in flight: no
                # response ever comes; the transport gives up after the
                # detection bound.
                self._flush_after(wr, faults.detection_timeout,
                                  WcStatus.WR_FLUSH_ERR)
                return
            data = remote_region.read(remote_offset, length)
            response = self._fabric().unicast(self.remote_node, self.node,
                                              length, control=True)

            def on_response(_event2, data=data):
                local_region.write(local_offset, data)
                wr._complete(data)
                if wr.signaled:
                    self.send_cq.push(Completion(
                        wr_id=wr.wr_id, opcode=Opcode.READ,
                        status=WcStatus.SUCCESS, byte_len=length,
                        result=data))

            response.callbacks.append(on_response)

        request.callbacks.append(on_request_arrival)
        return wr

    # -- atomics ------------------------------------------------------------
    def _post_atomic(self, opcode: Opcode, remote_rkey: int,
                     remote_offset: int, apply, signaled: bool,
                     wr_id: Any) -> WorkRequest:
        remote_region = self._get_remote_nic().region(remote_rkey)
        remote_region.check_range(remote_offset, 8)
        if self._metrics is not None:
            self._metrics.inc("rdma.atomics_posted")
        faults = self._faults()
        fault_delay = 0.0
        if faults is not None:
            admit = faults.rc_admission(self.node, self.remote_node)
            if admit is None:
                return self._flush_wr(opcode, wr_id, signaled, faults)
            fault_delay = admit
        offset_delay = self.nic.engine_delay(inline=True) + fault_delay
        wr = WorkRequest(self.env, wr_id, opcode, signaled)
        request = self._fabric().unicast(self.node, self.remote_node,
                                         _REQUEST_PACKET_SIZE,
                                         delay=offset_delay, control=True)

        def on_request_arrival(_event):
            faults = self._faults()
            if faults is not None and not faults.node_alive(self.remote_node):
                self._flush_after(wr, faults.detection_timeout,
                                  WcStatus.WR_FLUSH_ERR)
                return
            old_value = apply(remote_region, remote_offset)
            response = self._fabric().unicast(self.remote_node, self.node, 8,
                                              control=True)

            def on_response(_event2, old_value=old_value):
                wr._complete(old_value)
                if wr.signaled:
                    self.send_cq.push(Completion(
                        wr_id=wr.wr_id, opcode=opcode,
                        status=WcStatus.SUCCESS, byte_len=8,
                        result=old_value))

            response.callbacks.append(on_response)

        request.callbacks.append(on_request_arrival)
        return wr

    def post_fetch_add(self, remote_rkey: int, remote_offset: int,
                       addend: int, signaled: bool = True,
                       wr_id: Any = None) -> WorkRequest:
        """Atomic fetch-and-add on a remote u64; ``done`` yields the old
        value. This is the primitive behind DFI's tuple sequencer."""
        return self._post_atomic(
            Opcode.FETCH_ADD, remote_rkey, remote_offset,
            lambda region, offset: region.fetch_add_u64(offset, addend),
            signaled, wr_id)

    def post_compare_swap(self, remote_rkey: int, remote_offset: int,
                          expected: int, swap: int, signaled: bool = True,
                          wr_id: Any = None) -> WorkRequest:
        """Atomic compare-and-swap on a remote u64; ``done`` yields the old
        value (swap succeeded iff it equals ``expected``)."""
        return self._post_atomic(
            Opcode.COMPARE_SWAP, remote_rkey, remote_offset,
            lambda region, offset: region.compare_swap_u64(offset, expected,
                                                           swap),
            signaled, wr_id)

    # -- two-sided SEND/RECV -------------------------------------------------
    def post_recv(self, region: MemoryRegion, offset: int, length: int,
                  wr_id: Any = None) -> None:
        """Post a receive buffer; completions appear on ``recv_cq``."""
        region.check_range(offset, length)
        self._recv_queue.append((region, offset, length, wr_id))
        self._match_pending()

    def post_send(self, payload: bytes | bytearray | memoryview,
                  signaled: bool = True, wr_id: Any = None,
                  imm: int | None = None) -> WorkRequest:
        """Post a two-sided SEND to the connected peer QP."""
        if self._peer is None:
            raise RdmaError("post_send on an unconnected RC queue pair")
        data = _as_bytes(payload)
        if not data:
            raise RdmaError("cannot send an empty message")
        size = len(data)
        if self._metrics is not None:
            self._metrics.inc("rdma.sends_posted")
        faults = self._faults()
        if faults is not None:
            admit = faults.rc_admission(self.node, self.remote_node)
            if admit is None:
                return self._flush_wr(Opcode.SEND, wr_id, signaled, faults)
            fault_delay = admit
        else:
            fault_delay = 0.0
        congestion = self._congestion()
        if congestion is not None:
            fault_delay += congestion.rc_admit(self, size)
        inline = size <= self._inline_max
        offset_delay = self.nic.engine_delay(inline) + fault_delay
        self.nic.bytes_posted += size
        arrival = self._fabric().unicast(self.node, self.remote_node, size,
                                         delay=offset_delay)
        if congestion is not None:
            congestion.rc_sent(self, size, arrival.delay)
        peer = self._peer

        def on_arrival(_event, data=data, imm=imm):
            faults = self._faults()
            if faults is not None and not faults.node_alive(self.remote_node):
                return  # the receiving QP died with its node
            peer._deliver(data, imm)

        arrival.callbacks.append(on_arrival)
        wr = WorkRequest(self.env, wr_id, Opcode.SEND, signaled)
        self._finish(wr, arrival.delay + self._ack_latency(), size)
        return wr

    def _deliver(self, data: bytes, imm: int | None) -> None:
        self._pending_rx.append((data, imm))
        self._match_pending()

    def _match_pending(self) -> None:
        while self._pending_rx and self._recv_queue:
            data, imm = self._pending_rx.popleft()
            region, offset, length, wr_id = self._recv_queue.popleft()
            if len(data) > length:
                raise RdmaError(
                    f"received {len(data)} bytes into a {length}-byte "
                    f"receive buffer on {self.node.name}")
            region.write(offset, data)
            self.recv_cq.push(Completion(
                wr_id=wr_id, opcode=Opcode.RECV, status=WcStatus.SUCCESS,
                byte_len=len(data), imm=imm,
                result=(region, offset, len(data))))

    @property
    def posted_recv_count(self) -> int:
        return len(self._recv_queue)

    def __repr__(self) -> str:
        return (f"<QueuePair {self.node.name}:{self.qpn} -> "
                f"{self.remote_node.name}>")


class MulticastGroup:
    """A hardware multicast group: UD QPs attach to receive replicated
    datagrams. Replication happens in the switch (see Fabric.multicast)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._members: dict[int, list["UdQueuePair"]] = {}
        self._nodes: dict[int, Node] = {}

    def join(self, qp: "UdQueuePair") -> None:
        """Attach a UD queue pair to the group."""
        node = qp.node
        self._members.setdefault(node.node_id, [])
        if qp in self._members[node.node_id]:
            raise RdmaError(f"{qp!r} already joined group {self.name!r}")
        self._members[node.node_id].append(qp)
        self._nodes[node.node_id] = node

    def leave(self, qp: "UdQueuePair") -> None:
        """Detach a UD queue pair from the group."""
        members = self._members.get(qp.node.node_id, [])
        try:
            members.remove(qp)
        except ValueError:
            raise RdmaError(f"{qp!r} is not in group {self.name!r}") from None
        if not members:
            del self._members[qp.node.node_id]
            del self._nodes[qp.node.node_id]

    @property
    def member_nodes(self) -> list[Node]:
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    def members_on(self, node: Node) -> list["UdQueuePair"]:
        return list(self._members.get(node.node_id, []))

    def __len__(self) -> int:
        return sum(len(qps) for qps in self._members.values())


class UdQueuePair:
    """Unreliable-datagram queue pair (multicast capable).

    Delivery is best-effort: datagrams are dropped by fabric loss injection
    or when the receiver has no receive request posted — the condition DFI's
    credit-based receive-queue pre-population exists to avoid.
    """

    __slots__ = ("nic", "env", "qpn", "node", "recv_cq", "_recv_queue")

    def __init__(self, nic: RNic, qpn: int, recv_cq: CompletionQueue) -> None:
        self.nic = nic
        self.env = nic.env
        self.qpn = qpn
        self.node = nic.node
        self.recv_cq = recv_cq
        self._recv_queue: deque[tuple[MemoryRegion, int, int, Any]] = deque()

    def post_recv(self, region: MemoryRegion, offset: int, length: int,
                  wr_id: Any = None) -> None:
        """Post a receive buffer for incoming datagrams."""
        region.check_range(offset, length)
        self._recv_queue.append((region, offset, length, wr_id))

    @property
    def posted_recv_count(self) -> int:
        return len(self._recv_queue)

    def post_send_multicast(self, group: MulticastGroup,
                            payload: bytes | bytearray | memoryview,
                            wr_id: Any = None) -> WorkRequest:
        """Send one datagram to every QP attached to ``group``.

        Returns a work request whose ``done`` event triggers when the local
        NIC has finished transmitting (UD has no acknowledgments).
        """
        data = _as_bytes(payload)
        if not data:
            raise RdmaError("cannot send an empty datagram")
        if len(data) > UD_MTU:
            raise RdmaError(
                f"datagram of {len(data)} bytes exceeds the UD MTU "
                f"({UD_MTU} bytes)")
        members = group.member_nodes
        if not members:
            raise RdmaError(f"multicast group {group.name!r} has no members")
        congestion = self.node.cluster.congestion
        if congestion is not None and not congestion.active:
            congestion = None
        inline = len(data) <= self.nic.profile.max_inline_size
        offset_delay = self.nic.engine_delay(inline)
        if congestion is not None:
            offset_delay += congestion.ud_admit(self.node, len(data))
        self.nic.bytes_posted += len(data)
        arrivals = self.node.cluster.fabric.multicast(
            self.node, members, len(data), delay=offset_delay)
        if congestion is not None:
            congestion.ud_sent(self.node, members, len(data))
        for member, arrival in arrivals.items():
            if arrival is None:
                continue  # lost in the fabric

            def on_arrival(_event, member=member, data=data):
                for qp in group.members_on(member):
                    qp._deliver_datagram(data)

            arrival.callbacks.append(on_arrival)
        wr = WorkRequest(self.env, wr_id, Opcode.SEND, False)
        send_done = offset_delay + len(data) / self.nic.profile.link_bandwidth
        timer = self.env.pooled_timeout(send_done)
        timer.callbacks.append(lambda _event: wr._complete())
        return wr

    def _deliver_datagram(self, data: bytes) -> None:
        if not self._recv_queue:
            self.nic.rx_dropped_no_recv += 1
            return
        region, offset, length, wr_id = self._recv_queue.popleft()
        if len(data) > length:
            self.nic.rx_dropped_no_recv += 1
            return
        region.write(offset, data)
        self.recv_cq.push(Completion(
            wr_id=wr_id, opcode=Opcode.RECV, status=WcStatus.SUCCESS,
            byte_len=len(data), result=(region, offset, len(data))))

    def __repr__(self) -> str:
        return f"<UdQueuePair {self.node.name}:{self.qpn}>"
