"""Completion queues and work-request bookkeeping."""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.simnet.kernel import Environment, Event


class Opcode(enum.Enum):
    """Operation type recorded in a completion entry."""

    WRITE = "write"
    READ = "read"
    SEND = "send"
    RECV = "recv"
    FETCH_ADD = "fetch_add"
    COMPARE_SWAP = "compare_swap"


class WcStatus(enum.Enum):
    """Completion status (mirrors ``ibv_wc_status`` success/failure)."""

    SUCCESS = "success"
    ERROR = "error"
    #: Transport retry budget exceeded: the peer never acknowledged
    #: (crashed peer or a path down beyond the detection bound) —
    #: ``IBV_WC_RETRY_EXC_ERR``.
    RETRY_EXC_ERR = "retry_exc_err"
    #: Work request flushed after the QP entered the error state (the
    #: peer died while the operation was in flight) — ``IBV_WC_WR_FLUSH_ERR``.
    WR_FLUSH_ERR = "wr_flush_err"


@dataclass(slots=True)
class Completion:
    """One completion-queue entry (a ``struct ibv_wc``)."""

    wr_id: Any
    opcode: Opcode
    status: WcStatus = WcStatus.SUCCESS
    byte_len: int = 0
    #: Operation-specific result, e.g. the old value of a fetch-and-add.
    result: Any = None
    #: Immediate data carried by a send, if any.
    imm: int | None = None


class WorkRequest:
    """A posted work request; ``done`` triggers when the operation
    completes (for writes: when the RC ACK returns to the sender).

    The ``done`` event is materialized lazily on first access: most
    unsignaled writes are fire-and-forget — nobody ever waits on them —
    and never creating their event skips an allocation, a schedule, and
    a kernel step per work request. If the operation completed before
    the event was first accessed, the event is returned already
    triggered with the operation's result.
    """

    __slots__ = ("wr_id", "opcode", "signaled", "_env", "_done",
                 "_completed", "_result", "_error", "_completes_at")

    def __init__(self, env: Environment, wr_id: Any, opcode: Opcode,
                 signaled: bool) -> None:
        self._env = env
        self.wr_id = wr_id
        self.opcode = opcode
        self.signaled = signaled
        self._done: Event | None = None
        self._completed = False
        self._result: Any = None
        self._error: BaseException | None = None
        self._completes_at: float | None = None

    @property
    def done(self) -> Event:
        """Completion event (created on demand)."""
        event = self._done
        if event is None:
            when = self._completes_at
            if (when is not None and not self._completed
                    and when <= self._env.now):
                # The recorded completion time passed unobserved: settle
                # now, with the timestamp semantics of an eager timer.
                self._completed = True
            event = self._done = Event(self._env)
            if self._completed:
                if self._error is not None:
                    event.fail(self._error)
                    event.defuse()
                else:
                    event.succeed(self._result)
            elif when is not None:
                # First observer arrived before the completion time:
                # materialize the deferred timer at the exact instant.
                self._env.schedule_at(when, self._settle)
        return event

    @property
    def error(self) -> "BaseException | None":
        """The failure this work request completed with, if any."""
        return self._error

    def _complete(self, result: Any = None) -> None:
        """Record completion, triggering ``done`` only if someone looked."""
        self._completed = True
        self._result = result
        if self._done is not None:
            self._done.succeed(result)

    def _complete_at(self, when: float, result: Any = None) -> None:
        """Record that this request completes at the absolute simulated
        time ``when`` without scheduling anything: the train fast path
        expands acknowledgment timers lazily. If ``done`` is accessed at
        or after ``when`` the event materializes already triggered; an
        earlier access arms a real timer for the exact instant. Must be
        called before the first ``done`` access."""
        self._completes_at = when
        self._result = result

    def _settle(self) -> None:
        """Deferred-completion timer body (see :meth:`_complete_at`)."""
        if not self._completed:
            self._complete(self._result)

    def _fail(self, error: BaseException) -> None:
        """Record an error completion. ``done`` fails (pre-defused: a
        process yielding it sees the exception thrown in; the kernel
        never re-raises it for fire-and-forget requests nobody awaits)."""
        self._completed = True
        self._error = error
        if self._done is not None:
            self._done.fail(error)
            self._done.defuse()

    def __repr__(self) -> str:
        state = "done" if self._completed else "pending"
        return (f"<WorkRequest {self.opcode.value} wr_id={self.wr_id!r} "
                f"{state}>")


class CompletionQueue:
    """FIFO completion queue with optional blocking waits.

    ``poll`` is the cheap non-blocking check applications spin on;
    ``wait`` returns an event for event-driven consumers.
    """

    def __init__(self, env: Environment, name: str = "cq",
                 metrics=None) -> None:
        self.env = env
        self.name = name
        self._entries: deque[Completion] = deque()
        self._waiters: deque[Event] = deque()
        #: Total completions ever pushed (for stats/tests).
        self.pushed = 0
        #: Optional :class:`repro.obs.MetricsRegistry` of the owning node
        #: (``None`` while observability is off — the hot-path guard).
        #: ``rdma.cq_pushed`` is harvested at read time from ``pushed``;
        #: only the rare error completions bump a counter live.
        self._metrics = metrics
        if metrics is not None:
            metrics.add_collector(self._collect_obs)

    def _collect_obs(self):
        """Read-time counter harvest (see MetricsRegistry.add_collector)."""
        return (("rdma.cq_pushed", self.pushed),)

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, completion: Completion) -> None:
        """Add a completion entry, waking one blocked waiter if any."""
        self.pushed += 1
        if completion.status is not WcStatus.SUCCESS:
            metrics = self._metrics
            if metrics is not None:
                metrics.inc("rdma.cq_errors")
        if self._waiters:
            self._waiters.popleft().succeed(completion)
        else:
            self._entries.append(completion)

    def poll(self, max_entries: int = 16) -> list[Completion]:
        """Pop up to ``max_entries`` completions without blocking."""
        popped = []
        while self._entries and len(popped) < max_entries:
            popped.append(self._entries.popleft())
        return popped

    def wait(self) -> Event:
        """Return an event triggering with the next completion entry."""
        event = Event(self.env)
        if self._entries:
            event.succeed(self._entries.popleft())
        else:
            self._waiters.append(event)
        return event
