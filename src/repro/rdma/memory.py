"""Registered memory regions.

A :class:`MemoryRegion` is a real ``bytearray`` registered with a NIC. All
one-sided RDMA traffic lands in (or is read from) these buffers, so the DFI
ring-buffer protocol above executes against actual memory — targets poll
footer bytes exactly as the paper describes, nothing is mocked.

The region hands out *keys*: the local key is implicit (holding the object),
the remote key (``rkey``) is an integer capability that remote queue pairs
use to address the region.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.common.errors import MemoryRegionError

if TYPE_CHECKING:
    from repro.rdma.nic import RNic

_U64 = struct.Struct("<Q")


class MemoryRegion:
    """A contiguous, NIC-registered memory buffer."""

    __slots__ = ("nic", "rkey", "size", "mem", "_write_hooks")

    def __init__(self, nic: "RNic", rkey: int, size: int) -> None:
        if size <= 0:
            raise MemoryRegionError(f"region size must be positive: {size}")
        self.nic = nic
        self.rkey = rkey
        self.size = size
        self.mem = bytearray(size)
        self._write_hooks: list = []

    # -- write notification ---------------------------------------------
    # Polling a footer flag in real DFI is a sub-100ns memory load in a hot
    # loop. Simulating each load as an event would swamp the kernel, so
    # consumers instead register a hook that fires on every commit into the
    # region and charge an explicit poll-detection cost on wakeup.
    def add_write_hook(self, hook) -> None:
        """Register ``hook(offset, length)`` to run on every commit."""
        self._write_hooks.append(hook)

    def remove_write_hook(self, hook) -> None:
        """Unregister a previously added write hook."""
        self._write_hooks.remove(hook)

    # -- bounds-checked access --------------------------------------------
    def check_range(self, offset: int, length: int) -> None:
        """Raise unless ``[offset, offset+length)`` lies inside the region."""
        if offset < 0 or length < 0 or offset + length > self.size:
            raise MemoryRegionError(
                f"access [{offset}, {offset + length}) outside region of "
                f"size {self.size} (rkey={self.rkey})")

    def write(self, offset: int, data: bytes | bytearray | memoryview) -> None:
        """Commit ``data`` into the region at ``offset``."""
        length = len(data)
        self.check_range(offset, length)
        self.mem[offset:offset + length] = data
        hooks = self._write_hooks
        if hooks:
            if len(hooks) == 1:
                hooks[0](offset, length)
            else:
                # Copy: a hook may unregister itself while firing.
                for hook in tuple(hooks):
                    hook(offset, length)

    def read(self, offset: int, length: int) -> bytes:
        """Snapshot ``length`` bytes starting at ``offset``."""
        self.check_range(offset, length)
        return bytes(self.mem[offset:offset + length])

    def view(self, offset: int, length: int) -> memoryview:
        """Zero-copy view of a slice (the DFI target consume path uses this
        so applications process tuples without a memory copy)."""
        self.check_range(offset, length)
        return memoryview(self.mem)[offset:offset + length]

    # -- 64-bit word helpers (atomics and counters) --------------------------
    def read_u64(self, offset: int) -> int:
        self.check_range(offset, 8)
        return _U64.unpack_from(self.mem, offset)[0]

    def write_u64(self, offset: int, value: int) -> None:
        self.check_range(offset, 8)
        _U64.pack_into(self.mem, offset, value & (2 ** 64 - 1))

    def fetch_add_u64(self, offset: int, addend: int) -> int:
        """Atomically add ``addend`` to the u64 at ``offset``; return the
        previous value. (Atomicity is by construction: the simulator applies
        it in a single event.)"""
        old = self.read_u64(offset)
        self.write_u64(offset, old + addend)
        return old

    def compare_swap_u64(self, offset: int, expected: int, swap: int) -> int:
        """Atomic compare-and-swap on the u64 at ``offset``; returns the
        previous value (the swap happened iff it equals ``expected``)."""
        old = self.read_u64(offset)
        if old == expected:
            self.write_u64(offset, swap)
        return old

    def __repr__(self) -> str:
        return f"<MemoryRegion rkey={self.rkey} size={self.size}>"
