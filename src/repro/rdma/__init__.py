"""RDMA verbs layer: the substrate replacing libibverbs/ConnectX-5
(see DESIGN.md Section 2)."""

from repro.rdma.completion import (
    Completion,
    CompletionQueue,
    Opcode,
    WcStatus,
    WorkRequest,
)
from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import RNic, get_nic
from repro.rdma.qp import UD_MTU, MulticastGroup, QueuePair, UdQueuePair

__all__ = [
    "MemoryRegion",
    "RNic",
    "get_nic",
    "QueuePair",
    "UdQueuePair",
    "MulticastGroup",
    "UD_MTU",
    "CompletionQueue",
    "Completion",
    "WorkRequest",
    "Opcode",
    "WcStatus",
]
