"""The RDMA-capable NIC (RNIC) model.

One :class:`RNic` per node. It owns registered memory regions and queue
pairs and models the NIC's work-request processing pipeline: WQEs are
serviced sequentially at ``nic_processing`` ns each (``nic_processing_inline``
for inlined payloads), which caps the small-message rate exactly like a real
ConnectX-5 verbs pipeline does. Wire serialization and congestion are
handled by the fabric; the commit of incoming one-sided writes preserves the
increasing-address DMA order DFI's footer protocol depends on.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING

from repro.common.errors import MemoryRegionError, RdmaError
from repro.rdma.completion import CompletionQueue
from repro.rdma.memory import MemoryRegion
from repro.simnet.node import Node

if TYPE_CHECKING:
    from repro.rdma.qp import QueuePair, UdQueuePair


class RNic:
    """RDMA NIC attached to one simulated node."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.env = node.env
        self.profile = node.cluster.profile
        self._regions: dict[int, MemoryRegion] = {}
        self._rkeys = count(1)
        self._qp_numbers = count(1)
        self._engine_busy_until = 0.0
        #: Work requests processed by the NIC pipeline.
        self.wqes_processed = 0
        #: Payload bytes posted for transmission.
        self.bytes_posted = 0
        #: UD packets dropped because no receive request was posted.
        self.rx_dropped_no_recv = 0
        #: Doorbell trains admitted through :meth:`engine_delay_train`.
        self.doorbell_trains = 0
        #: Accumulated WQE arbitration wait: time work requests spent
        #: queued behind earlier WQEs before entering the pipeline.
        self._engine_wait = 0.0

    @property
    def engine_wait_ns(self) -> int:
        """Integer-ns total pipeline arbitration wait (always-on tally,
        truncated at the read like ``Link.busy_until_ns``)."""
        return int(self._engine_wait)

    # -- memory ----------------------------------------------------------
    def register_memory(self, size: int) -> MemoryRegion:
        """Register a new ``size``-byte memory region and return it."""
        rkey = next(self._rkeys)
        region = MemoryRegion(self, rkey, size)
        self._regions[rkey] = region
        return region

    def region(self, rkey: int) -> MemoryRegion:
        """Resolve a remote key to its region (raises on unknown keys)."""
        try:
            return self._regions[rkey]
        except KeyError:
            raise MemoryRegionError(
                f"unknown rkey {rkey} on {self.node.name}") from None

    def deregister_memory(self, rkey: int) -> None:
        """Drop the region behind ``rkey``: subsequent remote accesses
        fail, and the region's buffer becomes collectible once in-flight
        references drain. Long-running clusters that open and close many
        flows (the 256-1024-node serving scenarios) must deregister, or
        the region table grows without bound — see
        ``FlowRegistry.release_flow``. Unknown rkeys raise, so double
        frees surface instead of passing silently."""
        try:
            del self._regions[rkey]
        except KeyError:
            raise MemoryRegionError(
                f"unknown rkey {rkey} on {self.node.name}") from None

    def registered_bytes(self) -> int:
        """Total bytes of registered memory on this NIC."""
        return sum(region.size for region in self._regions.values())

    # -- queue pairs --------------------------------------------------------
    def create_qp(self, remote_node: Node,
                  send_cq: CompletionQueue | None = None,
                  recv_cq: CompletionQueue | None = None) -> "QueuePair":
        """Create a reliable-connection QP targeting ``remote_node``."""
        from repro.rdma.qp import QueuePair

        qpn = next(self._qp_numbers)
        metrics = self.node.metrics
        if send_cq is None:
            send_cq = CompletionQueue(self.env, f"{self.node.name}.scq{qpn}",
                                      metrics=metrics)
        if recv_cq is None:
            recv_cq = CompletionQueue(self.env, f"{self.node.name}.rcq{qpn}",
                                      metrics=metrics)
        return QueuePair(self, qpn, remote_node, send_cq, recv_cq)

    def create_ud_qp(self, recv_cq: CompletionQueue | None = None) -> "UdQueuePair":
        """Create an unreliable-datagram QP (used for multicast)."""
        from repro.rdma.qp import UdQueuePair

        qpn = next(self._qp_numbers)
        if recv_cq is None:
            recv_cq = CompletionQueue(self.env,
                                      f"{self.node.name}.udcq{qpn}",
                                      metrics=self.node.metrics)
        return UdQueuePair(self, qpn, recv_cq)

    # -- WQE pipeline ----------------------------------------------------
    def engine_delay(self, inline: bool) -> float:
        """Reserve a slot on the WQE pipeline; return the offset (ns from
        now) at which this work request's transmission may begin.

        The pipeline admits one WQE per ``nic_wqe_service`` ns (the NIC's
        message-rate limit); each WQE additionally experiences the fixed
        processing *latency* before its data hits the wire.
        """
        latency = (self.profile.nic_processing_inline if inline
                   else self.profile.nic_processing)
        now = self.env.now
        start = max(now, self._engine_busy_until)
        self._engine_busy_until = start + self.profile.nic_wqe_service
        self.wqes_processed += 1
        self._engine_wait += start - now
        return (start - now) + latency

    def engine_delay_train(self, inlines) -> list[float]:
        """Reserve consecutive WQE pipeline slots for a doorbell train.

        One doorbell ring hands the NIC a list of WQEs; arbitration is
        identical to calling :meth:`engine_delay` once per WQE in order
        (same slot times, same counters), returned as the per-WQE
        transmission-start offsets from now.
        """
        now = self.env.now
        busy = self._engine_busy_until
        service = self.profile.nic_wqe_service
        profile = self.profile
        offsets = []
        wait = 0.0
        for inline in inlines:
            latency = (profile.nic_processing_inline if inline
                       else profile.nic_processing)
            start = busy if busy > now else now
            busy = start + service
            wait += start - now
            offsets.append((start - now) + latency)
        self._engine_busy_until = busy
        self.wqes_processed += len(offsets)
        self.doorbell_trains += 1
        self._engine_wait += wait
        return offsets

    def engine_delay_train_one(self, inline: bool) -> float:
        """Single-WQE shape of :meth:`engine_delay_train` — identical
        arithmetic and counters (including the train tally) for trains
        of one, the common case on hash-routed shuffles, without the
        list machinery."""
        now = self.env.now
        busy = self._engine_busy_until
        start = busy if busy > now else now
        self._engine_busy_until = start + self.profile.nic_wqe_service
        self.wqes_processed += 1
        self.doorbell_trains += 1
        self._engine_wait += start - now
        return (start - now) + (self.profile.nic_processing_inline
                                if inline else self.profile.nic_processing)

    def __repr__(self) -> str:
        return f"<RNic {self.node.name} regions={len(self._regions)}>"


def get_nic(node: Node) -> RNic:
    """Get (or lazily create) the RNIC of ``node``."""
    nic = getattr(node, "_rnic", None)
    if nic is None:
        nic = RNic(node)
        node._rnic = nic  # type: ignore[attr-defined]
    return nic
