"""Deterministic discrete-event simulation kernel.

A minimal, dependency-free event loop in the spirit of SimPy: simulated
*processes* are Python generators that ``yield`` events (timeouts, other
processes, synchronization primitives) and are resumed when those events
trigger. Time is a float nanosecond counter; ties are broken FIFO by a
monotonic sequence number so runs are bit-for-bit reproducible.

Example::

    env = Environment()

    def worker(env):
        yield env.timeout(10)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 10 and proc.value == "done"
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Generator, Iterable
from typing import Any, Callable

from repro.common.errors import SimulationError

#: Sentinel for "event has not produced a value yet".
_PENDING = object()

#: Upper bound on recycled Timeout objects kept by an Environment.
_TIMEOUT_POOL_CAP = 256

#: Upper bound on recycled MacroEvent records kept by an Environment.
#: One record is live per in-flight fused segment train; steady-state
#: flows recycle through a handful, so a small cap bounds idle memory
#: while still absorbing bursts (many channels flushing in one instant).
_MACRO_POOL_CAP = 64

#: Calendar-queue geometry for timed events. Bucket width is
#: ``1 << _CAL_SHIFT`` ns: 2048 ns keeps the sub-microsecond hot-path
#: timers (NIC service intervals, CPU charges, wire latency) in the
#: near-term front heap while pushing slow timers (retransmit guards,
#: doorbell-train tails) out of it. The ring covers
#: ``_CAL_RING << _CAL_SHIFT`` ns (~524 µs); anything beyond spills to
#: an overflow heap.
_CAL_SHIFT = 11
_CAL_RING = 256
_CAL_MASK = _CAL_RING - 1
#: Beyond-any-bucket threshold (~146 years of simulated ns): entries at
#: or past this (e.g. a hypothetical ``inf`` timer) are heap-ordered in
#: the spill lane and never converted to a bucket number.
_CAL_FAR = float(1 << 62)


class Event:
    """A one-shot occurrence in simulated time.

    Events move through three states: *pending* (created), *triggered*
    (scheduled on the event queue with a value or an exception), and
    *processed* (callbacks have run). Processes wait on events by yielding
    them.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_defused",
                 "_scheduled", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._exception: BaseException | None = None
        self._defused = False
        self._scheduled = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (or exception) scheduled."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        """The event's result value (raises the failure exception if any)."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError("event has no value yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception that propagates to waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._exception = exception
        self._value = None
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    def __repr__(self) -> str:
        state = ("processed" if self._processed
                 else "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that triggers automatically after a fixed delay."""

    __slots__ = ("delay", "_poolable")

    def __init__(self, env: "Environment", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._poolable = False
        self._value = value
        env._schedule(self, delay)


class MacroEvent(Event):
    """One reusable queue entry that walks a sorted train of
    ``(when, fn, arg)`` actions — the macro-event record behind
    steady-state event elision.

    Semantically identical to :meth:`Environment.schedule_train` (every
    action fires at its exact absolute timestamp, one live queue entry
    per train, one ``_schedule_abs`` per hop — so even kernel sequence
    numbers evolve identically), but the walker state lives in slots on
    a pooled record instead of a per-train closure, and exhausted
    records recycle through ``Environment._macro_pool`` so a
    steady-state flow allocates nothing per flush.

    ``terminal`` is the train's final timestamp; ``replay`` is an
    optional closure invoked once with the action train after the last
    action fires (observability collectors can reconstruct per-action
    timestamps from it without the train having scheduled per-action
    events).
    """

    __slots__ = ("actions", "index", "terminal", "replay", "_cb")

    def __init__(self, env: "Environment") -> None:
        super().__init__(env)
        #: Sorted ``(when, fn, arg)`` train being walked (``None`` when
        #: the record is idle in the pool).
        self.actions: "list | None" = None
        self.index = 0
        self.terminal = 0.0
        self.replay: "Callable | None" = None
        # The permanent one-element callback list. step() reads and
        # clears ``callbacks`` before invoking us; _fire restores this
        # same list on every re-arm, so a whole train costs zero list
        # allocations after the record exists.
        self._cb: list = [self._fire]
        self.callbacks = self._cb

    def _fire(self, _event: Event) -> None:
        env = self.env
        actions = self.actions
        index = self.index
        total = len(actions)
        now = env._now
        while index < total:
            action = actions[index]
            if action[0] > now:
                break
            index += 1
            action[1](action[2])
        if index < total:
            # Re-arm for the next hop: reset the processed/scheduled
            # state step() just consumed and restore the permanent
            # callback list.
            self.index = index
            self._processed = False
            self._scheduled = False
            self.callbacks = self._cb
            env._schedule_abs(self, actions[index][0])
            return
        replay = self.replay
        if replay is not None:
            self.replay = None
            replay(actions)
        self.actions = None
        pool = env._macro_pool
        if len(pool) < _MACRO_POOL_CAP:
            pool.append(self)


class Initialize(Event):
    """Internal event used to start a process on the next kernel step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._value = None
        env._schedule(self)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running simulated activity driven by a generator.

    The process *is itself an event* that triggers when the generator
    returns (value = the generator's return value) or raises.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str | None = None) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        waiting = self._waiting_on
        interrupt_event = Event(self.env)
        interrupt_event._defused = True
        interrupt_event._exception = Interrupt(cause)
        interrupt_event._value = None
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        interrupt_event.callbacks = [self._resume]
        self.env._schedule(interrupt_event)

    def kill(self, value: Any = None) -> None:
        """Forcibly terminate the process (fail-stop semantics).

        The generator is closed (``finally`` blocks run, but the process
        body never resumes), any event the process was waiting on is
        detached, and the process event succeeds with ``value`` so that
        waiters observe a terminated — not hung — process. A no-op on an
        already-finished process. Used by the fault plane's node-crash
        injection; cannot kill the currently-running process.
        """
        if self.triggered:
            return
        if self.env._active_process is self:
            raise SimulationError("a process cannot kill itself")
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._generator.close()
        self.succeed(value)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            # Killed while an event (e.g. its Initialize) still held this
            # callback: the wakeup is void.
            return
        self._waiting_on = None
        self.env._active_process = self
        while True:
            try:
                if event._exception is None:
                    target = self._generator.send(event._value)
                else:
                    event._defused = True
                    target = self._generator.throw(event._exception)
            except StopIteration as stop:
                self.env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.env._active_process = None
                self.fail(exc)
                return
            if not isinstance(target, Event):
                self.env._active_process = None
                self.fail(SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}"))
                return
            if target._processed:
                # Already concluded: continue immediately with its outcome.
                event = target
                continue
            if target.callbacks is None:
                raise SimulationError(
                    f"event {target!r} is being processed; cannot wait on it")
            target.callbacks.append(self._resume)
            self._waiting_on = target
            self.env._active_process = None
            return


class Condition(Event):
    """Base class for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_remaining", "_indices")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        # id -> first construction index: O(1) lookup in _check (and the
        # first index is the right answer when an event appears twice).
        self._indices: dict[int, int] = {}
        for index, event in enumerate(self.events):
            if event.env is not env:
                raise SimulationError("events belong to different kernels")
            self._indices.setdefault(id(event), index)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event._processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> Any:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers once all child events have triggered; value is their
    values in construction order."""

    __slots__ = ()

    def _collect(self) -> list[Any]:
        return [event.value for event in self.events]

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            event.defuse()
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers as soon as one child triggers; value is ``(index, value)``
    of the first child to do so."""

    __slots__ = ()

    def _collect(self) -> Any:
        for index, event in enumerate(self.events):
            if event.triggered:
                return (index, event.value)
        raise SimulationError("AnyOf triggered without a triggered child")

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            event.defuse()
            self.fail(event._exception)
            return
        self.succeed((self._indices[id(event)], event._value))


class EventLane:
    """One shard's event storage: the same two-lane calendar scheduler
    :class:`Environment` inlines (zero-delay FIFO deque + front heap +
    calendar ring + spill heap), packaged as a standalone structure so a
    :class:`~repro.simnet.shard.ShardedEnvironment` can keep one per
    shard.

    A lane never advances the clock itself — it only stores
    ``(time, sequence, event)`` entries and surfaces the lane-local
    minimum through :meth:`head` / :meth:`pop`. The sharded kernel merges
    lane heads to preserve exact global ``(time, sequence)`` order (see
    ``simnet/shard.py`` for why the merge must stay exact).

    The calendar logic is kept in lockstep with ``Environment``'s inlined
    single-lane fast path; ``tests/test_simnet_shard.py`` asserts order
    equivalence on randomized schedules.
    """

    __slots__ = ("queue", "immediate", "_base", "_horizon", "_buckets",
                 "_bucket_count", "_spill", "_spill_floor",
                 "drained", "rounds", "stalls", "mailbox_in")

    def __init__(self, initial_time: float = 0.0) -> None:
        #: Front heap: timed entries in (or before) the current bucket.
        self.queue: list[tuple[float, int, Event]] = []
        #: Zero-delay entries in FIFO order (times are non-decreasing).
        self.immediate: deque[tuple[float, int, Event]] = deque()
        base = int(initial_time) >> _CAL_SHIFT
        self._base = base
        self._horizon = float((base + 1) << _CAL_SHIFT)
        self._buckets: list[list] = [[] for _ in range(_CAL_RING)]
        self._bucket_count = 0
        self._spill: list[tuple[float, int, Event]] = []
        self._spill_floor = float((base + _CAL_RING) << _CAL_SHIFT)
        # -- always-on lane tallies (read-time observability; one integer
        # add per drain *round*, not per event, except mailbox_in which
        # counts cross-shard posts — rare by construction).
        #: Events executed out of this lane.
        self.drained = 0
        #: Drain rounds in which this lane was the active (minimum) lane.
        self.rounds = 0
        #: Rounds cut short by a peer lane's head within the lookahead
        #: horizon (the batch could have run on under relaxed order).
        self.stalls = 0
        #: Entries posted into this lane from another shard's context
        #: (the per-shard inbound mailbox, merged in (time, seq) order).
        self.mailbox_in = 0

    def push_timed(self, when: float, seq: int, event: Event) -> None:
        """File a timed entry: front heap within the current bucket (or
        earlier), ring bucket within the calendar window, else spill."""
        if when < self._horizon:
            heapq.heappush(self.queue, (when, seq, event))
        elif when < self._spill_floor:
            self._buckets[(int(when) >> _CAL_SHIFT) & _CAL_MASK
                          ].append((when, seq, event))
            self._bucket_count += 1
        else:
            heapq.heappush(self._spill, (when, seq, event))

    def _refill(self) -> None:
        """Advance the calendar until the front heap holds the earliest
        pending timed entries (mirror of ``Environment._refill``)."""
        queue = self.queue
        buckets = self._buckets
        spill = self._spill
        base = self._base
        bucket_count = self._bucket_count
        while not queue:
            if bucket_count:
                base += 1
                ring = buckets[base & _CAL_MASK]
                if ring:
                    bucket_count -= len(ring)
                    queue.extend(ring)
                    del ring[:]
            elif spill:
                head = spill[0][0]
                if head >= _CAL_FAR:
                    queue.extend(spill)
                    del spill[:]
                    break
                base = int(head) >> _CAL_SHIFT
            else:
                break
            floor = float((base + 1) << _CAL_SHIFT)
            while spill and spill[0][0] < floor:
                queue.append(heapq.heappop(spill))
        heapq.heapify(queue)
        self._base = base
        self._bucket_count = bucket_count
        self._horizon = float((base + 1) << _CAL_SHIFT)
        self._spill_floor = float((base + _CAL_RING) << _CAL_SHIFT)

    def head(self) -> "tuple[float, int, Event] | None":
        """The lane's earliest entry by ``(time, sequence)`` without
        removing it, or ``None`` if the lane is empty.

        Zero-delay entries carry times at or before the global clock
        while bucketed/spilled entries lie past the bucket horizon, so a
        non-empty ``immediate`` makes the calendar consultable lazily —
        exactly the invariant ``Environment._pop_next`` relies on.
        """
        immediate = self.immediate
        queue = self.queue
        if immediate:
            first = immediate[0]
            if queue:
                head = queue[0]
                if head[0] < first[0] or (head[0] == first[0]
                                          and head[1] < first[1]):
                    return head
            return first
        if not queue:
            if not (self._bucket_count or self._spill):
                return None
            self._refill()
            queue = self.queue
            if not queue:
                return None
        return queue[0]

    def pop(self) -> tuple[float, int, Event]:
        """Remove and return the lane's earliest entry (callers must have
        seen a non-``None`` :meth:`head` first)."""
        immediate = self.immediate
        queue = self.queue
        if immediate:
            if queue:
                head = queue[0]
                first = immediate[0]
                if head[0] < first[0] or (head[0] == first[0]
                                          and head[1] < first[1]):
                    return heapq.heappop(queue)
            return immediate.popleft()
        if not queue:
            self._refill()
        return heapq.heappop(queue)

    def __len__(self) -> int:
        return (len(self.queue) + len(self.immediate)
                + self._bucket_count + len(self._spill))

    def stats(self) -> dict:
        """JSON-safe snapshot of the lane tallies (read-time only)."""
        return {
            "pending": len(self),
            "drained": self.drained,
            "rounds": self.rounds,
            "horizon_stalls": self.stalls,
            "mailbox_in": self.mailbox_in,
            "mean_window": (self.drained / self.rounds
                            if self.rounds else 0.0),
        }


class Environment:
    """The simulation kernel: clock, event queue, and run loop.

    Timed events live in a two-lane calendar scheduler; together with the
    zero-delay deque three fast paths keep the hot loop cheap without
    changing observable order:

    * zero-delay events (process resumes, ``succeed()`` wakeups — the vast
      majority) bypass the heap into a FIFO deque. All structures order
      by ``(time, sequence)``, and :meth:`step` always pops the global
      minimum, so tie-breaking stays bit-for-bit identical to a pure heap;
    * timed events within the current calendar bucket go straight into a
      small front heap (``_queue``); later events wait in unsorted
      per-bucket lists (``_buckets``) or, past the ring horizon, in an
      overflow heap (``_spill``), and are bulk-``heapify``'d into the
      front heap only when the clock reaches their bucket. The front heap
      stays shallow no matter how many far-future timers are pending
      (timeout storms, retransmit guards under fault plans);
    * :meth:`pooled_timeout` recycles processed :class:`Timeout` objects
      for fire-and-forget timers (NIC engine delays, CPU-cost charges)
      whose references are dropped once they fire.
    """

    __slots__ = ("_now", "_queue", "_immediate", "_sequence",
                 "_active_process", "_timeout_pool", "_macro_pool",
                 "events_executed", "_base", "_horizon",
                 "_buckets", "_bucket_count", "_spill", "_spill_floor")

    #: Number of shard lanes. 1 for this single-queue kernel; the
    #: :class:`~repro.simnet.shard.ShardedEnvironment` subclass overrides
    #: it, and shard-aware call sites (fabric delivery tagging, node
    #: spawn) branch on ``shard_count > 1`` so the single-lane fast path
    #: pays nothing.
    shard_count = 1

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Front heap: timed events in the current calendar bucket (or
        #: earlier — late pushes land here too).
        self._queue: list[tuple[float, int, Event]] = []
        #: Zero-delay events in FIFO order (times are non-decreasing).
        self._immediate: deque[tuple[float, int, Event]] = deque()
        self._sequence = 0
        self._active_process: Process | None = None
        self._timeout_pool: list[Timeout] = []
        self._macro_pool: list[MacroEvent] = []
        #: Events executed by :meth:`step` (the sharded kernel keeps the
        #: equivalent tally per lane in ``EventLane.drained``). Pure
        #: read-time observability — never consulted by the simulation.
        self.events_executed = 0
        #: Calendar state. ``_base`` is the current bucket number
        #: (``int(time) >> _CAL_SHIFT``); ``_horizon``/``_spill_floor``
        #: are its precomputed float time bounds so the scheduling fast
        #: path is a single comparison, with no float->int conversion.
        base = int(self._now) >> _CAL_SHIFT
        self._base = base
        self._horizon = float((base + 1) << _CAL_SHIFT)
        self._buckets: list[list] = [[] for _ in range(_CAL_RING)]
        self._bucket_count = 0
        self._spill: list[tuple[float, int, Event]] = []
        self._spill_floor = float((base + _CAL_RING) << _CAL_SHIFT)

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction ---------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` ns."""
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float, value: Any = None) -> Timeout:
        """Like :meth:`timeout`, but drawn from a recycling pool.

        The returned event is reclaimed by the kernel right after its
        callbacks run, so callers must not inspect it once a later event
        has been processed — use it only for fire-and-forget timers that
        are yielded (or given callbacks) immediately and then dropped.
        The internal hot paths (NIC engine delays, fabric arrivals, CPU
        cost charges) satisfy this by construction.
        """
        pool = self._timeout_pool
        if not pool:
            timer = Timeout(self, delay, value)
            timer._poolable = True
            return timer
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        timer = pool.pop()
        timer.callbacks = []
        timer._value = value
        timer._exception = None
        timer._defused = False
        timer._scheduled = False
        timer._processed = False
        timer.delay = delay
        self._schedule(timer, delay)
        return timer

    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at the absolute simulated time ``when``.

        Unlike ``pooled_timeout(when - now)``, the fire time is exact: the
        event is queued at ``when`` itself, not at ``now + (when - now)``
        (which can differ by one ulp in float arithmetic). Times in the
        past run on the next kernel step.
        """
        pool = self._timeout_pool
        if pool:
            timer = pool.pop()
            timer.callbacks = [lambda _event: fn()]
            timer._value = None
            timer._exception = None
            timer._defused = False
            timer._processed = False
        else:
            timer = Timeout.__new__(Timeout)
            Event.__init__(timer, self)
            timer._poolable = True
            timer.callbacks.append(lambda _event: fn())
        timer.delay = when - self._now
        timer._scheduled = False
        self._schedule_abs(timer, when)

    def schedule_train(self, actions) -> None:
        """Batch-schedule API: run a train of ``(when, fn, arg)`` actions,
        each ``fn(arg)`` at its exact absolute timestamp, using a *single*
        in-flight recycled timer that walks the train instead of one
        queued event per action.

        ``actions`` must be sorted by non-decreasing ``when``. This is the
        kernel half of doorbell batching: a train of segment commits costs
        one live queue entry at any moment, yet every action still fires
        at the same ``(time, ...)`` key a per-action ``Timeout`` would
        have used. The ``(when, fn, arg)`` record shape lets callers share
        one function across the train and keep per-action state in a plain
        tuple instead of a closure.
        """
        if not actions:
            return
        total = len(actions)
        index = 0

        def fire(_event) -> None:
            nonlocal index
            now = self._now
            while index < total:
                action = actions[index]
                if action[0] > now:
                    break
                index += 1
                action[1](action[2])
            if index < total:
                self._chain_timer(actions[index][0], fire)

        self._chain_timer(actions[0][0], fire)

    def schedule_macro(self, actions, replay=None) -> None:
        """Run a train of ``(when, fn, arg)`` actions through one pooled
        :class:`MacroEvent` record — the steady-state twin of
        :meth:`schedule_train`.

        Timing-identical by construction: actions fire at the same
        absolute timestamps, one queue entry is live at any moment, and
        each hop costs exactly one ``_schedule_abs`` (so kernel sequence
        numbers advance in lockstep with the closure-based train). The
        differences are wall-clock only: no per-train closure, no
        timeout-pool churn per hop, and the record itself recycles
        through ``_macro_pool``. ``actions`` must be sorted by
        non-decreasing ``when``.
        """
        if not actions:
            return
        pool = self._macro_pool
        if pool:
            macro = pool.pop()
            macro._value = _PENDING
            macro._exception = None
            macro._defused = False
            macro._scheduled = False
            macro._processed = False
            macro.callbacks = macro._cb
        else:
            macro = MacroEvent(self)
        macro.actions = actions
        macro.index = 0
        macro.terminal = actions[-1][0]
        macro.replay = replay
        self._schedule_abs(macro, actions[0][0])

    def _chain_timer(self, when: float, fire) -> None:
        """Arm one pooled timer at absolute time ``when`` with ``fire`` as
        its callback (helper for :meth:`schedule_train`)."""
        pool = self._timeout_pool
        if pool:
            timer = pool.pop()
            timer.callbacks = [fire]
            timer._value = None
            timer._exception = None
            timer._defused = False
            timer._processed = False
        else:
            timer = Timeout.__new__(Timeout)
            Event.__init__(timer, self)
            timer._poolable = True
            timer.callbacks.append(fire)
        timer.delay = when - self._now
        timer._scheduled = False
        self._schedule_abs(timer, when)

    def process(self, generator: Generator[Event, Any, Any],
                name: str | None = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering when any one of ``events`` triggers."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._sequence += 1
        if delay == 0.0:
            # Zero-delay fast path: O(1) FIFO append instead of a heap
            # sift. Entries keep their (time, sequence) key so step() can
            # merge both structures in exact heap order.
            self._immediate.append((self._now, self._sequence, event))
        else:
            when = self._now + delay
            if when < self._horizon:
                heapq.heappush(self._queue, (when, self._sequence, event))
            else:
                self._far_push((when, self._sequence, event))

    def _schedule_abs(self, event: Event, when: float) -> None:
        """Schedule ``event`` at the absolute time ``when`` (clamped to
        ``now``). Used by the batch-schedule API, whose action timestamps
        are pre-computed absolutes that must not be round-tripped through
        a relative delay."""
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._sequence += 1
        if when <= self._now:
            self._immediate.append((self._now, self._sequence, event))
        elif when < self._horizon:
            heapq.heappush(self._queue, (when, self._sequence, event))
        else:
            self._far_push((when, self._sequence, event))

    def _far_push(self, entry: tuple[float, int, Event]) -> None:
        """File a timed entry past the current bucket: unsorted in its
        ring bucket when within the calendar window, else on the spill
        heap. Sorting is deferred to :meth:`_refill`."""
        when = entry[0]
        if when < self._spill_floor:
            self._buckets[(int(when) >> _CAL_SHIFT) & _CAL_MASK
                          ].append(entry)
            self._bucket_count += 1
        else:
            heapq.heappush(self._spill, entry)

    def _refill(self) -> None:
        """Advance the calendar until the front heap holds the earliest
        pending timed events (caller guarantees buckets or spill are
        non-empty when the front heap is empty).

        Walks one bucket at a time while any bucket holds entries (a
        non-empty bucket is always within the ring window, so the walk is
        bounded by the ring size); with the ring empty it jumps straight
        to the spill head's bucket. Each slot the base passes is drained
        into the front heap *before* any push could re-map the slot to a
        bucket one window ahead, preserving the one-bucket-per-slot
        invariant. Entries surface in a single bulk ``heapify``, so the
        per-event cost stays O(1) amortized plus one shallow heap sift.
        """
        queue = self._queue
        buckets = self._buckets
        spill = self._spill
        base = self._base
        bucket_count = self._bucket_count
        while not queue:
            if bucket_count:
                base += 1
                ring = buckets[base & _CAL_MASK]
                if ring:
                    bucket_count -= len(ring)
                    queue.extend(ring)
                    del ring[:]
            elif spill:
                head = spill[0][0]
                if head >= _CAL_FAR:
                    # Beyond bucket arithmetic (inf-like timers): the
                    # spill heap itself is the right order — drain it.
                    queue.extend(spill)
                    del spill[:]
                    break
                base = int(head) >> _CAL_SHIFT
            else:
                break
            # Spill entries whose bucket the base has reached (or jumped
            # past) belong in the front heap now.
            floor = float((base + 1) << _CAL_SHIFT)
            while spill and spill[0][0] < floor:
                queue.append(heapq.heappop(spill))
        heapq.heapify(queue)
        self._base = base
        self._bucket_count = bucket_count
        self._horizon = float((base + 1) << _CAL_SHIFT)
        self._spill_floor = float((base + _CAL_RING) << _CAL_SHIFT)

    def _pop_next(self) -> tuple[float, int, Event]:
        """Pop the globally next (time, sequence) event from the timed
        lanes or the zero-delay deque.

        Zero-delay entries carry times at or before ``now`` while every
        bucketed/spilled entry lies at or past the bucket horizon (which
        is past ``now``), so the deque-vs-front-heap comparison alone
        decides the global order; the calendar only needs consulting when
        both near-term structures are empty.
        """
        immediate = self._immediate
        queue = self._queue
        if immediate:
            if queue:
                head = queue[0]
                first = immediate[0]
                if head[0] < first[0] or (head[0] == first[0]
                                          and head[1] < first[1]):
                    return heapq.heappop(queue)
            return immediate.popleft()
        if not queue and (self._bucket_count or self._spill):
            self._refill()
        if queue:
            return heapq.heappop(queue)
        raise SimulationError("event queue is empty")

    def step(self) -> None:
        """Process the single next event on the queue."""
        when, _seq, event = self._pop_next()
        self._now = when
        self.events_executed += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if event._exception is not None and not event._defused:
            raise event._exception
        if (type(event) is Timeout and event._poolable
                and len(self._timeout_pool) < _TIMEOUT_POOL_CAP):
            self._timeout_pool.append(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain the queue), a time (stop when the
        clock would pass it), or an :class:`Event` (stop when it is
        processed and return its value).
        """
        stop_event: Event | None = None
        stop_time: float | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until ({stop_time}) lies in the past (now={self._now})")
        queue = self._queue
        immediate = self._immediate
        step = self.step
        if stop_event is None and stop_time is None:
            # Hot path: drain everything, no per-step stop checks. The
            # inner loop touches only the near-term lanes; the calendar
            # is consulted just once per full near-term drain.
            while True:
                while queue or immediate:
                    step()
                if self._bucket_count or self._spill:
                    self._refill()
                else:
                    return None
        while (queue or immediate or self._bucket_count or self._spill):
            if stop_event is not None and stop_event._processed:
                return stop_event.value
            if stop_time is not None and self.peek() > stop_time:
                self._now = stop_time
                return None
            step()
        if stop_event is not None:
            if stop_event._processed:
                return stop_event.value
            raise SimulationError(
                "run() until an event, but the queue drained before the "
                "event triggered (deadlock?)")
        if stop_time is not None:
            self._now = stop_time
        return None

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        queue = self._queue
        if not queue and (self._bucket_count or self._spill):
            self._refill()
        if self._immediate:
            when = self._immediate[0][0]
            if not queue or when <= queue[0][0]:
                return when
        return queue[0][0] if queue else float("inf")
