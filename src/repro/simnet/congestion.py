"""Congestion control for the simulated fabric: bounded egress queues,
ECN marking, and a DCQCN-flavoured per-QP rate limiter.

The ``busy_until`` link model already yields exact FIFO queueing, but the
queues are unbounded and invisible to senders: every flow sees an ideal
pipe, so the classic datacenter pathologies (N:1 incast collapse,
elephants starving mice) never appear. This module closes that gap with
three deterministic mechanisms, all guarded so that a cluster without an
installed plane executes the exact pre-congestion code paths
(``congestion=None`` keeps every fingerprint metric bit-identical):

* **Bounded egress queues** — each destination downlink (the switch
  egress port) carries a *virtual queue*: occupancy that fills per
  admitted packet and drains at line rate, computed in closed form (no
  extra kernel events). A sender whose message would overflow the
  configured capacity holds the WQE back just long enough for the queue
  to drain room (PFC-style lossless hold-off), so the level stays
  bounded by construction. The ``busy_until`` horizon cannot play this
  role — it absorbs every posted byte at post time, hold-offs included.
* **ECN marking** — when the virtual-queue occupancy observed at
  admission time crosses the ``kmin``/``kmax`` band, packets are marked
  with a RED-style ramp. Marking is *deterministic*: an error-diffusion
  accumulator per link replaces the RNG coin flip, so a mark pattern is
  a pure function of the traffic timeline.
* **DCQCN-flavoured rate control** — a marked packet triggers a CNP back
  to the sending QP one control-latency after arrival. The QP reacts
  with multiplicative decrease (scaled by the EWMA mark estimate
  ``alpha``), then recovers through fast-recovery / additive-increase /
  hyper-increase timer rounds driven by the event kernel. UD multicast
  uses a simpler mark-aware pacing factor per sending node.

Timers and CNPs schedule kernel events **only while the plane is active**
— which is allowed: with congestion enabled the contract is per-seed
bit-reproducibility, not event-pattern neutrality. Any configured jitter
draws from the node's ``backoff_rng`` stream (deterministic per seed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.simnet.cluster import Cluster
    from repro.simnet.node import Node

_INF = math.inf


@dataclass(frozen=True)
class CongestionConfig:
    """ECN / rate-limit policy of one cluster (``FlowOptions(congestion=...)``).

    The defaults scale the DCQCN paper's constants down to the
    simulator's microsecond-scale flows: the band sits at a handful of
    8 KiB segments, the CNP gate and recovery period at a few RTTs.
    """

    #: Egress queue bound per link, in bytes. A sender holds a WQE back
    #: until the destination queue has room (lossless PFC-style
    #: hold-off). ``inf`` disables the bound.
    queue_capacity: float = 256 * 1024
    #: ECN band: below ``kmin`` bytes of occupancy nothing is marked.
    kmin: float = 32 * 1024
    #: Above ``kmax`` every packet is marked; in between the marking
    #: probability ramps linearly from 0 to ``pmax``.
    kmax: float = 128 * 1024
    #: Marking probability at the top of the linear ramp.
    pmax: float = 0.25
    #: Rate floor as a fraction of line rate — guarantees progress, so a
    #: throttled flow can never hang (the no-hang invariant leans on it).
    min_rate_fraction: float = 0.01
    #: EWMA gain for the mark estimate ``alpha`` (DCQCN's ``g``).
    alpha_g: float = 0.0625
    #: Minimum gap between successive multiplicative decreases (the CNP
    #: gate, DCQCN's per-flow CNP timer), in ns.
    cnp_interval: float = 4_000.0
    #: Period of the rate-increase / alpha-decay timer, in ns.
    recovery_period: float = 16_000.0
    #: Fast-recovery rounds (rate halves back toward target) before
    #: additive increase starts raising the target.
    fast_recovery_rounds: int = 5
    #: Additive increase per recovery round, as a fraction of line rate.
    ai_fraction: float = 0.005
    #: Hyper-increase per round (after ``5 * fast_recovery_rounds``
    #: mark-free rounds), as a fraction of line rate.
    hai_fraction: float = 0.05
    #: Relative jitter on the recovery period (desynchronizes incast
    #: senders). Drawn from the node's ``backoff_rng`` stream; 0 draws
    #: no randomness at all.
    recovery_jitter: float = 0.0
    #: UD multicast: multiplicative pacing-factor cut on a congested
    #: member downlink, and the additive recovery step per period.
    ud_decrease: float = 0.5
    ud_recovery_step: float = 0.1

    def __post_init__(self) -> None:
        if self.queue_capacity <= 0:
            raise ConfigurationError("queue_capacity must be positive")
        if not 0 < self.kmin <= self.kmax:
            raise ConfigurationError("need 0 < kmin <= kmax")
        if not 0.0 < self.pmax <= 1.0:
            raise ConfigurationError("pmax must be in (0, 1]")
        if not 0.0 < self.min_rate_fraction <= 1.0:
            raise ConfigurationError("min_rate_fraction must be in (0, 1]")
        if not 0.0 < self.alpha_g <= 1.0:
            raise ConfigurationError("alpha_g must be in (0, 1]")
        if self.cnp_interval <= 0 or self.recovery_period <= 0:
            raise ConfigurationError(
                "cnp_interval and recovery_period must be positive")
        if self.fast_recovery_rounds < 1:
            raise ConfigurationError("fast_recovery_rounds must be >= 1")
        if self.ai_fraction <= 0 or self.hai_fraction <= 0:
            raise ConfigurationError(
                "ai_fraction and hai_fraction must be positive")
        if self.recovery_jitter < 0 or self.recovery_jitter >= 1:
            raise ConfigurationError("recovery_jitter must be in [0, 1)")
        if not 0.0 < self.ud_decrease < 1.0:
            raise ConfigurationError("ud_decrease must be in (0, 1)")
        if not 0.0 < self.ud_recovery_step <= 1.0:
            raise ConfigurationError("ud_recovery_step must be in (0, 1]")

    @classmethod
    def unbounded(cls) -> "CongestionConfig":
        """A config whose thresholds never trip: the plane's machinery
        runs end to end but adds zero delay, marks nothing, and schedules
        no events — the neutrality probe used by
        ``fingerprint.py --check-congestion-neutral``."""
        return cls(queue_capacity=_INF, kmin=_INF, kmax=_INF)

    @classmethod
    def datacenter(cls) -> "CongestionConfig":
        """The scenario-suite config: a band tight enough that 8:1 incast
        marks, with mild recovery jitter to desynchronize senders. The
        floor/recovery constants are tuned so marking stays heavy under
        fan-in while completion-time inflation stays small (incast
        senders synchronize on a capacity-pinned queue, so a too-low
        floor with slow additive increase collapses aggregate demand far
        below line rate)."""
        return cls(queue_capacity=192 * 1024, kmin=24 * 1024,
                   kmax=96 * 1024, min_rate_fraction=0.05,
                   cnp_interval=8_000.0, recovery_period=8_000.0,
                   ai_fraction=0.02, hai_fraction=0.1,
                   recovery_jitter=0.1)


class _LinkQueue:
    """Virtual egress queue of one link: occupancy that fills on each
    admitted packet and drains at line rate, in closed form (no kernel
    events). The ``busy_until`` horizon can't serve as the queue — every
    posted-but-unserialized byte lands on it *at post time*, even bytes a
    PFC hold-off is still keeping at the sender — so the plane tracks
    what the switch egress port would actually hold: bytes whose
    admission time has passed but whose serialization hasn't finished.
    ``admit`` keeps this level ≤ ``queue_capacity`` by construction.

    Also carries the marking accumulator and per-link tallies."""

    __slots__ = ("level", "last", "accum", "packets", "marks", "peak",
                 "pfc_stalls")

    def __init__(self) -> None:
        #: Queue level in bytes at time ``last``.
        self.level = 0.0
        self.last = 0.0
        self.accum = 0.0
        self.packets = 0
        self.marks = 0
        self.peak = 0.0
        self.pfc_stalls = 0

    def admit(self, t: float, size: int, capacity: float,
              bandwidth: float) -> tuple[float, float]:
        """Admit ``size`` bytes arriving at the port at ``t``. Returns
        ``(holdoff_delay, level_after)``: the PFC hold-off needed to keep
        the queue within ``capacity`` (0.0 when it fits) and the
        occupancy including this packet (what RED marks against)."""
        level = self.level - (t - self.last) * bandwidth
        if level < 0.0:
            level = 0.0
        delay = 0.0
        if level + size > capacity:
            # Hold the packet at the sender until the queue has drained
            # room for it — lossless PFC back-pressure in closed form.
            delay = (level + size - capacity) / bandwidth
            level = capacity - size
        level += size
        self.level = level
        self.last = t + delay
        if level > self.peak:
            self.peak = level
        return delay, level

    def peek(self, now: float, bandwidth: float) -> float:
        """Occupancy at ``now`` (conservative: a level stamped by a
        hold-off in the near future is reported undrained)."""
        elapsed = now - self.last
        if elapsed <= 0.0:
            return self.level
        level = self.level - elapsed * bandwidth
        return level if level > 0.0 else 0.0


class _RcRate:
    """DCQCN state of one RC queue pair (sender side)."""

    __slots__ = ("plane", "qp", "rate", "target", "alpha", "next_free",
                 "last_cut", "rounds", "timer_armed", "cnps", "cuts",
                 "last_occupancy")

    def __init__(self, plane: "CongestionPlane", qp) -> None:
        self.plane = plane
        self.qp = qp
        line = plane.line_rate
        self.rate = line
        self.target = line
        self.alpha = 1.0
        #: Pacing horizon: absolute ns at which the next WQE may start.
        self.next_free = 0.0
        self.last_cut = -_INF
        self.rounds = 0
        self.timer_armed = False
        self.cnps = 0
        self.cuts = 0
        #: Egress-queue level seen by this QP's latest admitted WQE
        #: (bytes, including the WQE itself) — what ``rc_sent`` marks
        #: against.
        self.last_occupancy = 0.0

    # -- CNP reaction (multiplicative decrease) ---------------------------
    def on_cnp(self) -> None:
        plane = self.plane
        cfg = plane.config
        self.cnps += 1
        plane.cnps_delivered += 1
        self.alpha = (1.0 - cfg.alpha_g) * self.alpha + cfg.alpha_g
        now = plane.env.now
        if now - self.last_cut < cfg.cnp_interval:
            return  # CNP gate: at most one cut per interval
        self.last_cut = now
        self.target = self.rate
        floor = plane.min_rate
        self.rate = max(floor, self.rate * (1.0 - self.alpha / 2.0))
        self.rounds = 0
        self.cuts += 1
        plane._emit_rate(self)
        self._arm_timer()

    # -- recovery timer (additive / hyper increase) -----------------------
    def _arm_timer(self) -> None:
        if self.timer_armed:
            return
        self.timer_armed = True
        plane = self.plane
        cfg = plane.config
        period = cfg.recovery_period
        if cfg.recovery_jitter:
            period *= 1.0 + cfg.recovery_jitter * (
                self.qp.node.backoff_rng.random() - 0.5)
        timer = plane.env.pooled_timeout(period)
        timer.callbacks.append(self._on_recovery)

    def _on_recovery(self, _event) -> None:
        self.timer_armed = False
        plane = self.plane
        cfg = plane.config
        line = plane.line_rate
        self.alpha *= 1.0 - cfg.alpha_g
        self.rounds += 1
        if self.rounds > cfg.fast_recovery_rounds:
            # Past fast recovery: raise the target (hyper-increase once
            # the path has stayed mark-free for a long stretch).
            step = (cfg.hai_fraction
                    if self.rounds > 5 * cfg.fast_recovery_rounds
                    else cfg.ai_fraction)
            self.target = min(line, self.target + step * line)
        self.rate = min(line, 0.5 * (self.rate + self.target))
        plane._emit_rate(self)
        if self.rate < line or self.alpha > 1e-3:
            self._arm_timer()

    # -- admission --------------------------------------------------------
    def admit(self, size: int) -> float:
        """Delay (ns from now) to add before this WQE's wire reservation:
        rate pacing plus the bounded-egress-queue hold-off."""
        plane = self.plane
        now = plane.env.now
        delay = 0.0
        rate = self.rate
        if rate < plane.line_rate:
            start = self.next_free
            if start < now:
                start = now
            self.next_free = start + size / rate
            delay = start - now
        pacing = delay
        qp = self.qp
        dst = qp.remote_node
        hold = 0.0
        if dst is not qp.node:
            down = dst.downlink
            queue = plane._link(down)
            hold, level = queue.admit(now + delay, size,
                                      plane.config.queue_capacity,
                                      down.bandwidth)
            if hold > 0.0:
                delay += hold
                queue.pfc_stalls += 1
                plane.pfc_stalls += 1
            self.last_occupancy = level
        if delay > 0.0:
            recorder = plane._causal_recorder()
            if recorder is not None:
                tid = f"qp{qp.qpn}"
                if pacing > 0.0:
                    recorder.edge(now + pacing, now, "ecn_pacing",
                                  qp.node.node_id, tid)
                if hold > 0.0:
                    # Charged against the *destination* — hold-off is the
                    # hot target's bounded egress queue pushing back, which
                    # is what hot-target ranking sums per node.
                    recorder.edge(now + pacing + hold, now + pacing,
                                  "congestion_holdoff", dst.node_id, tid,
                                  src_node_id=qp.node.node_id)
        return delay


class _UdPace:
    """Mark-aware pacing state of one node's UD multicast sends."""

    __slots__ = ("factor", "next_free", "last_cut", "timer_armed", "cuts")

    def __init__(self) -> None:
        self.factor = 1.0
        self.next_free = 0.0
        self.last_cut = -_INF
        self.timer_armed = False
        self.cuts = 0


class CongestionPlane:
    """Congestion state of one cluster (``cluster.congestion``).

    Installed via :meth:`repro.simnet.cluster.Cluster.install_congestion`
    (directly, or implicitly by initializing a flow whose
    ``FlowOptions.congestion`` is set). Queue pairs consult the plane per
    posted operation through one attribute lookup that short-circuits on
    ``None`` — an uninstalled plane costs the hot path nothing and keeps
    the event pattern of a build without this module.
    """

    def __init__(self, cluster: "Cluster", config: CongestionConfig) -> None:
        if not isinstance(config, CongestionConfig):
            raise ConfigurationError(
                f"install_congestion needs a CongestionConfig, got "
                f"{type(config).__name__}")
        self.cluster = cluster
        self.env = cluster.env
        self.config = config
        #: Mirrors ``FaultPlane.active``: hot-path guards short-circuit on
        #: False. An installed plane is always active (an unbounded config
        #: is the supported no-op probe).
        self.active = True
        self.line_rate = cluster.profile.link_bandwidth
        self.min_rate = config.min_rate_fraction * self.line_rate
        self._rc: dict = {}
        self._by_path: dict[tuple[int, int], list[_RcRate]] = {}
        self._by_dst: dict[int, list[_RcRate]] = {}
        self._ud: dict[int, _UdPace] = {}
        self._links: dict = {}
        self._tracer = None
        self._tracer_resolved = False
        self._causal = None
        self._causal_resolved = False
        # Plane-wide tallies (per-link detail lives in _LinkStats).
        self.packets_seen = 0
        self.ecn_marks = 0
        self.cnps_delivered = 0
        self.pfc_stalls = 0
        self.ud_cuts = 0

    # -- state lookup ------------------------------------------------------
    def rc_state(self, qp) -> _RcRate:
        state = self._rc.get(qp)
        if state is None:
            state = self._rc[qp] = _RcRate(self, qp)
            src = qp.node.node_id
            dst = qp.remote_node.node_id
            self._by_path.setdefault((src, dst), []).append(state)
            self._by_dst.setdefault(dst, []).append(state)
        return state

    def _link(self, link) -> _LinkQueue:
        queue = self._links.get(link)
        if queue is None:
            queue = self._links[link] = _LinkQueue()
        return queue

    def _occupancy(self, link, now: float) -> float:
        """Virtual-queue level of ``link`` at ``now`` (0 when the link
        has never carried congestion-tracked traffic)."""
        queue = self._links.get(link)
        if queue is None:
            return 0.0
        return queue.peek(now, link.bandwidth)

    # -- RC hot-path hooks (called from rdma.qp) ---------------------------
    def rc_admit(self, qp, size: int) -> float:
        """Admission delay for one RC data WQE (pacing + queue bound)."""
        if qp.remote_node is qp.node:
            return 0.0  # loopback bypasses the switch: no egress queue
        return self.rc_state(qp).admit(size)

    def rc_sent(self, qp, size: int, arrival_delay: float) -> None:
        """Observe one admitted RC data WQE after its wire reservation:
        record egress occupancy, decide the ECN mark, and schedule the
        CNP back to this QP when marked."""
        dst = qp.remote_node
        if dst is qp.node:
            return
        now = self.env.now
        state = self.rc_state(qp)
        # The queue level this WQE saw at admission time (set by
        # rc_admit just before the wire reservation) — the switch's RED
        # engine marks against instantaneous egress occupancy.
        occupancy = state.last_occupancy
        stats = self._link(dst.downlink)
        stats.packets += 1
        self.packets_seen += 1
        metrics = dst.metrics
        if metrics is not None:
            metrics.observe("net.queue_depth", occupancy)
        cfg = self.config
        if occupancy <= cfg.kmin:
            return
        if occupancy >= cfg.kmax:
            probability = 1.0
        else:
            probability = (cfg.pmax * (occupancy - cfg.kmin)
                           / (cfg.kmax - cfg.kmin))
        # Deterministic RED: error-diffusion accumulator instead of a
        # coin flip — the mark pattern is a pure function of the traffic.
        stats.accum += probability
        if stats.accum < 1.0:
            return
        stats.accum -= 1.0
        stats.marks += 1
        self.ecn_marks += 1
        if metrics is not None:
            metrics.inc("net.ecn_marks")
            metrics.observe("net.mark_occupancy", occupancy)
        tracer = self._trace()
        if tracer is not None:
            tracer.emit(now, "ECN_MARK", dst.node_id, f"qp{qp.qpn}",
                        {"occupancy": int(occupancy)})
        # The receiver NIC turns the mark into a CNP one control latency
        # after the marked packet arrives.
        timer = self.env.pooled_timeout(
            arrival_delay + self.cluster.profile.wire_latency)
        timer.callbacks.append(lambda _event: state.on_cnp())

    # -- UD multicast hooks ------------------------------------------------
    def ud_state(self, node: "Node") -> _UdPace:
        state = self._ud.get(node.node_id)
        if state is None:
            state = self._ud[node.node_id] = _UdPace()
        return state

    def ud_admit(self, node: "Node", size: int) -> float:
        """Pacing delay for one multicast datagram from ``node``."""
        state = self.ud_state(node)
        if state.factor >= 1.0:
            return 0.0
        now = self.env.now
        start = state.next_free
        if start < now:
            start = now
        state.next_free = start + size / (self.line_rate * state.factor)
        delay = start - now
        if delay > 0.0:
            recorder = self._causal_recorder()
            if recorder is not None:
                recorder.edge(now + delay, now, "ecn_pacing",
                              node.node_id, "ud")
        return delay

    def ud_sent(self, node: "Node", members, size: int) -> None:
        """Observe one multicast send: each member downlink's virtual
        queue absorbs the datagram (no hold-off — UD is unacknowledged,
        so the bytes are already committed to the wire), and the
        most-congested member drives the pacing factor (cut at most once
        per CNP interval)."""
        now = self.env.now
        worst = 0.0
        for member in members:
            if member is node:
                continue
            down = member.downlink
            queue = self._link(down)
            _, occupancy = queue.admit(now, size, _INF, down.bandwidth)
            queue.packets += 1
            metrics = member.metrics
            if metrics is not None:
                metrics.observe("net.queue_depth", occupancy)
            if occupancy > worst:
                worst = occupancy
        self.packets_seen += 1
        cfg = self.config
        state = self.ud_state(node)
        if worst > cfg.kmin:
            if now - state.last_cut >= cfg.cnp_interval:
                state.last_cut = now
                state.factor = max(cfg.min_rate_fraction,
                                   state.factor * cfg.ud_decrease)
                state.cuts += 1
                self.ud_cuts += 1
                metrics = node.metrics
                if metrics is not None:
                    metrics.inc("net.ud_pace_cuts")
                tracer = self._trace()
                if tracer is not None:
                    tracer.emit(now, "RATE_CHANGE", node.node_id, "ud",
                                {"factor": state.factor})
                self._arm_ud_recovery(node, state)

    def _arm_ud_recovery(self, node: "Node", state: _UdPace) -> None:
        if state.timer_armed:
            return
        state.timer_armed = True

        def recover(_event):
            state.timer_armed = False
            state.factor = min(1.0, state.factor
                               + self.config.ud_recovery_step)
            tracer = self._trace()
            if tracer is not None:
                tracer.emit(self.env.now, "RATE_CHANGE", node.node_id,
                            "ud", {"factor": state.factor})
            if state.factor < 1.0:
                self._arm_ud_recovery(node, state)

        timer = self.env.pooled_timeout(self.config.recovery_period)
        timer.callbacks.append(recover)

    # -- failure-detection queries (flow layer) ----------------------------
    def throttled_path(self, src: "Node", dst: "Node") -> bool:
        """True while traffic from ``src`` to ``dst`` is visibly
        congestion-limited: the egress queue at either end sits above
        ``kmin``, or a rate limiter on the path is cut below line rate.
        Self-clearing by construction — queues drain monotonically and
        recovery timers restore every rate to line — so a failure
        deadline granting grace on this query can never hang."""
        now = self.env.now
        kmin = self.config.kmin
        if self._occupancy(dst.downlink, now) >= kmin:
            return True
        if self._occupancy(src.uplink, now) >= kmin:
            return True
        threshold = self.line_rate * 0.95
        for state in self._by_path.get((src.node_id, dst.node_id), ()):
            if state.rate < threshold:
                return True
        ud = self._ud.get(src.node_id)
        return ud is not None and ud.factor < 0.95

    def throttled_inbound(self, node: "Node") -> bool:
        """True while any path *into* ``node`` is congestion-limited
        (consume-side deadline grace)."""
        now = self.env.now
        if self._occupancy(node.downlink, now) >= self.config.kmin:
            return True
        threshold = self.line_rate * 0.95
        for state in self._by_dst.get(node.node_id, ()):
            if state.rate < threshold:
                return True
        for ud in self._ud.values():
            if ud.factor < 0.95:
                return True
        return False

    # -- observability -----------------------------------------------------
    def _trace(self):
        """The plane's trace ring (``"congestion"`` in the obs plane),
        resolved lazily once tracing is available. Recording is pure
        Python-side bookkeeping — zero kernel events, zero RNG."""
        if not self._tracer_resolved:
            obs = self.cluster.obs
            if obs is not None:
                self._tracer = obs.tracer("congestion", True)
                self._tracer_resolved = True
        return self._tracer

    def _causal_recorder(self):
        """The cluster's causal-edge recorder, resolved lazily like
        :meth:`_trace` (pacing/hold-off delays are the plane's edges —
        see ``repro.obs.causal``). Only consulted on nonzero delays."""
        if not self._causal_resolved:
            obs = self.cluster.obs
            if obs is not None and obs.causal is not None:
                self._causal = obs.causal
                self._causal_resolved = True
        return self._causal

    def _emit_rate(self, state: _RcRate) -> None:
        qp = state.qp
        metrics = qp.node.metrics
        if metrics is not None:
            metrics.inc("net.rate_changes")
        tracer = self._trace()
        if tracer is not None:
            tracer.emit(self.env.now, "RATE_CHANGE", qp.node.node_id,
                        f"qp{qp.qpn}",
                        {"rate": state.rate, "target": state.target,
                         "alpha": state.alpha})

    def stats(self) -> dict:
        """JSON-safe snapshot: plane tallies, per-link queue/mark detail
        (integer bytes — see ``Link.busy_until_ns``), per-QP final rates."""
        now = self.env.now
        links = {}
        for link, queue in self._links.items():
            links[link.name] = {
                "packets": queue.packets,
                "marks": queue.marks,
                "mark_rate": (queue.marks / queue.packets
                              if queue.packets else 0.0),
                "peak_queue_bytes": int(queue.peak),
                "queue_bytes": int(queue.peek(now, link.bandwidth)),
                "horizon_backlog_bytes": link.backlog_bytes(now),
                "pfc_stalls": queue.pfc_stalls,
            }
        rates = {}
        for state in self._rc.values():
            qp = state.qp
            key = f"{qp.node.name}:{qp.qpn}->{qp.remote_node.name}"
            rates[key] = {
                "rate_fraction": state.rate / self.line_rate,
                "cnps": state.cnps,
                "cuts": state.cuts,
            }
        return {
            "packets_seen": self.packets_seen,
            "ecn_marks": self.ecn_marks,
            "cnps_delivered": self.cnps_delivered,
            "pfc_stalls": self.pfc_stalls,
            "ud_cuts": self.ud_cuts,
            "links": links,
            "qp_rates": rates,
        }


def stall_is_congestion(node: "Node",
                        remote: "Node | None" = None) -> bool:
    """Failure-detection helper: is a stall observed at ``node`` plausibly
    congestion rather than peer failure? ``remote`` names the send-side
    peer (writers); ``None`` asks about any inbound path (targets).
    False whenever no plane is installed — the deadline semantics of a
    congestion-free build are untouched."""
    plane = node.cluster.congestion
    if plane is None or not plane.active:
        return False
    if remote is None:
        return plane.throttled_inbound(node)
    return plane.throttled_path(node, remote)


# -- default-config hook (fingerprint --check-congestion-neutral) ------------
#: When set, every newly built Cluster installs a congestion plane with
#: this config in its constructor — the harness hook that proves an
#: unbounded config causes zero timeline drift even for clusters built
#: deep inside bench helpers.
_default_config: "CongestionConfig | None" = None


def set_default_config(config: "CongestionConfig | None") -> None:
    """Install ``config`` on every cluster created from now on (``None``
    clears). Intended for harnesses, not applications."""
    global _default_config
    _default_config = config


def _install_default(cluster: "Cluster") -> None:
    if _default_config is not None:
        cluster.install_congestion(_default_config)
