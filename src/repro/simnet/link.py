"""Point-to-point link model with serialization-time bookkeeping.

A link is a unidirectional pipe with a fixed bandwidth. Instead of running a
process per link we track a single ``busy_until`` timestamp: a message of
``size`` bytes occupies the link for ``size / bandwidth`` ns starting at
``max(requested_start, busy_until)``. This O(1) model yields exact FIFO
queueing behaviour (head-of-line blocking, incast congestion) with no event
overhead per queued message.
"""

from __future__ import annotations

from repro.common.errors import SimulationError


class Link:
    """One direction of a network port (e.g. a node's uplink to the switch)."""

    __slots__ = ("name", "bandwidth", "_busy_until", "_busy_time",
                 "bytes_carried", "messages_carried", "trains_carried")

    def __init__(self, name: str, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"link bandwidth must be positive: {bandwidth}")
        self.name = name
        self.bandwidth = bandwidth
        self._busy_until = 0.0
        #: Accumulated transmission time (for utilization accounting).
        self._busy_time = 0.0
        #: Total payload bytes that have been scheduled onto this link.
        self.bytes_carried = 0
        #: Total messages scheduled onto this link.
        self.messages_carried = 0
        #: Doorbell trains reserved as one unit (``reserve_train`` calls).
        self.trains_carried = 0

    @property
    def busy_until(self) -> float:
        """Time at which the link finishes its last scheduled transmission."""
        return self._busy_until

    def serialization_time(self, size: int) -> float:
        """Wire time needed to clock ``size`` bytes onto the link."""
        if size < 0:
            raise SimulationError(f"negative message size: {size}")
        return size / self.bandwidth

    def reserve(self, size: int, earliest: float) -> tuple[float, float]:
        """Schedule a ``size``-byte transmission no earlier than ``earliest``.

        Returns ``(start, end)`` of the reserved transmission slot and
        advances the link's busy horizon to ``end``.
        """
        start = max(earliest, self._busy_until)
        end = start + self.serialization_time(size)
        self._busy_until = end
        self._busy_time += end - start
        self.bytes_carried += size
        self.messages_carried += 1
        return start, end

    def reserve_train(self, sizes, earliests) -> list[tuple[float, float]]:
        """Reserve back-to-back slots for a doorbell train of messages.

        Equivalent to calling :meth:`reserve` once per message in order —
        identical float arithmetic, counters, and final busy horizon — but
        as one call, so a whole train costs one link transaction.
        Returns the per-message ``(start, end)`` slots.
        """
        slots = []
        busy = self._busy_until
        busy_time = self._busy_time
        bandwidth = self.bandwidth
        for size, earliest in zip(sizes, earliests):
            if size < 0:
                raise SimulationError(f"negative message size: {size}")
            start = busy if busy > earliest else earliest
            end = start + size / bandwidth
            busy = end
            busy_time += end - start
            self.bytes_carried += size
            slots.append((start, end))
        self._busy_until = busy
        self._busy_time = busy_time
        self.messages_carried += len(slots)
        self.trains_carried += 1
        return slots

    def reserve_priority(self, size: int, earliest: float) -> tuple[float, float]:
        """Schedule a tiny *control* message (footer/credit reads, atomics)
        that interleaves with queued bulk traffic instead of waiting behind
        it.

        Real RNICs schedule work-queue elements round-robin across queue
        pairs at packet granularity, so a 16-byte read response never waits
        behind megabytes of a neighbour QP's send queue. The FIFO
        ``busy_until`` model would impose exactly that wait, so control
        messages bypass the queue; their serialization time is charged but
        the busy horizon is not advanced (their bandwidth share is
        negligible by construction).
        """
        start = earliest
        end = start + self.serialization_time(size)
        self._busy_time += end - start
        self.bytes_carried += size
        self.messages_carried += 1
        return start, end

    def utilization(self, now: float) -> float:
        """Fraction of time the link has spent transmitting up to
        ``now`` (transmissions scheduled beyond ``now`` count in full —
        a bookkeeping approximation, exact once the queue drained)."""
        if now <= 0:
            return 0.0
        return min(1.0, self._busy_time / now)

    def __repr__(self) -> str:
        return (f"<Link {self.name} bw={self.bandwidth:.3f} B/ns "
                f"busy_until={self._busy_until:.0f}>")
