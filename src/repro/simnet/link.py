"""Point-to-point link model with serialization-time bookkeeping.

A link is a unidirectional pipe with a fixed bandwidth. Instead of running a
process per link we track a single ``busy_until`` timestamp: a message of
``size`` bytes occupies the link for ``size / bandwidth`` ns starting at
``max(requested_start, busy_until)``. This O(1) model yields exact FIFO
queueing behaviour (head-of-line blocking, incast congestion) with no event
overhead per queued message.
"""

from __future__ import annotations

from repro.common.errors import SimulationError


class Link:
    """One direction of a network port (e.g. a node's uplink to the switch)."""

    __slots__ = ("name", "bandwidth", "_busy_until", "_busy_time",
                 "bytes_carried", "messages_carried", "trains_carried",
                 "_hol_wait")

    def __init__(self, name: str, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"link bandwidth must be positive: {bandwidth}")
        self.name = name
        self.bandwidth = bandwidth
        self._busy_until = 0.0
        #: Accumulated transmission time (for utilization accounting).
        self._busy_time = 0.0
        #: Total payload bytes that have been scheduled onto this link.
        self.bytes_carried = 0
        #: Total messages scheduled onto this link.
        self.messages_carried = 0
        #: Doorbell trains reserved as one unit (``reserve_train`` calls).
        self.trains_carried = 0
        #: Accumulated head-of-line wait (reservations pushed past their
        #: requested start by queued traffic) — exact float internally,
        #: truncated at the read like ``busy_until_ns``.
        self._hol_wait = 0.0

    @property
    def busy_until(self) -> float:
        """Time at which the link finishes its last scheduled transmission."""
        return self._busy_until

    @property
    def busy_until_ns(self) -> int:
        """Integer-ns busy horizon for snapshots/histograms: truncating at
        the read keeps long-run observability sums drift-free while the
        scheduling arithmetic stays exact float."""
        return int(self._busy_until)

    @property
    def hol_wait_ns(self) -> int:
        """Integer-ns total head-of-line blocking this link imposed: how
        long messages sat behind earlier traffic before their slot
        started. Always-on (harvested at snapshot time)."""
        return int(self._hol_wait)

    def backlog_ns(self, now: float) -> float:
        """Remaining serialization time queued on the link at ``now``."""
        remaining = self._busy_until - now
        return remaining if remaining > 0.0 else 0.0

    def backlog_bytes(self, now: float) -> int:
        """Bytes queued but not yet clocked onto the wire at ``now`` — the
        egress-queue occupancy the congestion plane marks against.
        Integer (floor) so occupancy histograms are drift-free."""
        remaining = self._busy_until - now
        if remaining <= 0.0:
            return 0
        return int(remaining * self.bandwidth)

    def rescale(self, factor: float, now: float) -> None:
        """Change the link bandwidth by ``factor`` at ``now``, re-pricing
        the queued-but-unserialized backlog at the new rate.

        The bytes already scheduled past ``now`` still have to cross the
        wire, so the busy horizon stretches (or shrinks) by ``1/factor``:
        degrade-then-reserve and reserve-then-degrade at the same
        timestamp land on identical completion times. Transmissions whose
        arrival events were already committed keep their original
        timestamps — the re-pricing governs the queue, not the past.
        """
        if factor <= 0:
            raise SimulationError(f"link rescale factor must be positive: {factor}")
        self.bandwidth *= factor
        if self._busy_until > now:
            self._busy_until = now + (self._busy_until - now) / factor

    def serialization_time(self, size: int) -> float:
        """Wire time needed to clock ``size`` bytes onto the link."""
        if size < 0:
            raise SimulationError(f"negative message size: {size}")
        return size / self.bandwidth

    def reserve(self, size: int, earliest: float) -> tuple[float, float]:
        """Schedule a ``size``-byte transmission no earlier than ``earliest``.

        Returns ``(start, end)`` of the reserved transmission slot and
        advances the link's busy horizon to ``end``.
        """
        start = max(earliest, self._busy_until)
        end = start + self.serialization_time(size)
        self._busy_until = end
        self._busy_time += end - start
        self._hol_wait += start - earliest
        self.bytes_carried += size
        self.messages_carried += 1
        return start, end

    def reserve_train(self, sizes, earliests) -> list[tuple[float, float]]:
        """Reserve back-to-back slots for a doorbell train of messages.

        Equivalent to calling :meth:`reserve` once per message in order —
        identical float arithmetic, counters, and final busy horizon — but
        as one call, so a whole train costs one link transaction.
        Returns the per-message ``(start, end)`` slots.
        """
        slots = []
        busy = self._busy_until
        busy_time = self._busy_time
        hol_wait = self._hol_wait
        bandwidth = self.bandwidth
        for size, earliest in zip(sizes, earliests):
            if size < 0:
                raise SimulationError(f"negative message size: {size}")
            start = busy if busy > earliest else earliest
            end = start + size / bandwidth
            busy = end
            busy_time += end - start
            hol_wait += start - earliest
            self.bytes_carried += size
            slots.append((start, end))
        self._busy_until = busy
        self._busy_time = busy_time
        self._hol_wait = hol_wait
        self.messages_carried += len(slots)
        self.trains_carried += 1
        return slots

    def reserve_train_one(self, size: int, earliest: float
                          ) -> tuple[float, float]:
        """Single-message shape of :meth:`reserve_train` — identical
        float arithmetic and counters (including the train tally) for a
        train of one, without the list machinery."""
        if size < 0:
            raise SimulationError(f"negative message size: {size}")
        busy = self._busy_until
        start = busy if busy > earliest else earliest
        end = start + size / self.bandwidth
        self._busy_until = end
        self._busy_time += end - start
        self._hol_wait += start - earliest
        self.bytes_carried += size
        self.messages_carried += 1
        self.trains_carried += 1
        return start, end

    def reserve_priority(self, size: int, earliest: float) -> tuple[float, float]:
        """Schedule a tiny *control* message (footer/credit reads, atomics)
        that interleaves with queued bulk traffic instead of waiting behind
        it.

        Real RNICs schedule work-queue elements round-robin across queue
        pairs at packet granularity, so a 16-byte read response never waits
        behind megabytes of a neighbour QP's send queue. The FIFO
        ``busy_until`` model would impose exactly that wait, so control
        messages bypass the queue; their serialization time is charged but
        the busy horizon is not advanced (their bandwidth share is
        negligible by construction).
        """
        start = earliest
        end = start + self.serialization_time(size)
        self._busy_time += end - start
        self.bytes_carried += size
        self.messages_carried += 1
        return start, end

    def utilization(self, now: float) -> float:
        """Fraction of time the link has spent transmitting up to
        ``now`` (transmissions scheduled beyond ``now`` count in full —
        a bookkeeping approximation, exact once the queue drained)."""
        if now <= 0:
            return 0.0
        return min(1.0, self._busy_time / now)

    def __repr__(self) -> str:
        return (f"<Link {self.name} bw={self.bandwidth:.3f} B/ns "
                f"busy_until={self._busy_until:.0f}>")
