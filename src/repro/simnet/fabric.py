"""The switch fabric: unicast and hardware-multicast message delivery.

Models a single cut-through InfiniBand switch (the paper's SB7890): a
message serializes once onto the sender's uplink, crosses the fabric after
``wire_latency``, and serializes onto each receiver's downlink. Cut-through
forwarding means an uncongested transfer completes at
``start + wire_latency + size/bandwidth`` — not twice the serialization time.

Multicast replicates inside the switch: the sender pays one uplink
serialization regardless of group size, while every receiver's downlink is
occupied independently. This is what lets the aggregate receive bandwidth of
a replicate flow exceed the sender's link speed (paper Fig. 8b). UD
multicast is *unreliable*: per-receiver drops are injected with the
profile's ``multicast_loss_probability``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import SimulationError
from repro.common.rand import derive_rng
from repro.simnet.kernel import Timeout
from repro.simnet.node import Node

if TYPE_CHECKING:
    from repro.simnet.cluster import Cluster


class Fabric:
    """Message transport between cluster nodes through one switch."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.profile = cluster.profile
        #: True when the kernel is sharded: arrival events are then tagged
        #: with the destination node's shard so they land on its lane (the
        #: per-shard inbound mailbox). Cached because the kernel choice is
        #: fixed at cluster construction.
        self._shard_tag = cluster.env.shard_count > 1
        self._loss_rng = derive_rng(cluster.seed, "fabric", "multicast-loss")
        #: Last loopback delivery time per node: loopback transfers keep
        #: FIFO order (a later-posted inline WQE has lower NIC latency and
        #: would otherwise overtake an earlier bulk write). Bounded: one
        #: float per node that ever looped back (≤ node_count entries,
        #: ~100 KB at 1024 nodes) — scale audit, no clearing needed.
        self._loopback_last: dict[int, float] = {}
        #: Unicast messages delivered.
        self.unicast_count = 0
        #: Doorbell trains shipped through :meth:`unicast_train`.
        self.unicast_trains = 0
        #: Multicast packets sent (one per multicast, not per receiver).
        self.multicast_count = 0
        #: Multicast receiver deliveries dropped by loss injection.
        self.multicast_drops = 0
        #: Multicast receiver deliveries dropped by the fault plane
        #: (member crashed / partitioned away).
        self.fault_drops = 0
        #: Installed fault plane (set by ``Cluster.install_faults``).
        self._faults = None

    # -- unicast -----------------------------------------------------------
    def unicast(self, source: Node, destination: Node, size: int,
                delay: float = 0.0, control: bool = False) -> Timeout:
        """Transmit ``size`` bytes from ``source`` to ``destination``.

        Returns an event that triggers when the last byte has arrived at
        the destination. ``delay`` postpones the transmission start (used
        by the RNIC model for work-request processing time). ``control``
        marks tiny control messages (footer/credit reads, atomics) that
        interleave with queued bulk traffic instead of waiting behind it
        (see ``Link.reserve_priority``). Loopback transfers (same node)
        bypass the switch and are charged the NIC's loopback latency and
        memory-bus copy.
        """
        cluster = self.cluster
        if source.cluster is not cluster or destination.cluster is not cluster:
            self._check_nodes(source, destination)
        self.unicast_count += 1
        env = self.env
        now = env.now
        if source is destination:
            arrival = (now + delay + self.profile.loopback_latency
                       + size / self.profile.loopback_bandwidth)
            arrival = max(arrival,
                          self._loopback_last.get(source.node_id, 0.0))
            self._loopback_last[source.node_id] = arrival
            if self._shard_tag:
                env._post_shard = source._shard
                event = env.timeout(arrival - now)
                env._post_shard = -1
                return event
            return env.timeout(arrival - now)
        reserve_up = (source.uplink.reserve_priority if control
                      else source.uplink.reserve)
        reserve_down = (destination.downlink.reserve_priority if control
                        else destination.downlink.reserve)
        _up_start, up_end = reserve_up(size, now + delay)
        send_start = up_end - source.uplink.serialization_time(size)
        # Cut-through: the downlink starts clocking bytes one wire latency
        # after the first byte left the sender.
        _down_start, down_end = reserve_down(
            size, send_start + self.profile.wire_latency)
        arrival = max(down_end, up_end + self.profile.wire_latency)
        if self._shard_tag:
            shard = destination._shard
            if shard != source._shard:
                env.mailbox_crossings += 1
                recorder = env.crossing_recorder
                if recorder is not None:
                    recorder.edge(up_end + self.profile.wire_latency, up_end,
                                  "shard_crossing", destination.node_id,
                                  "fabric", src_node_id=source.node_id)
            env._post_shard = shard
            event = env.timeout(arrival - now)
            env._post_shard = -1
            return event
        return env.timeout(arrival - now)

    def unicast_train(self, source: Node, destination: Node, sizes,
                      delays) -> list[float]:
        """Transmit a doorbell train of messages from ``source`` to
        ``destination`` as one scheduling unit.

        Per-message arithmetic (uplink/downlink reservation, cut-through
        arrival) is identical to calling :meth:`unicast` once per message
        in posting order, but no arrival events are created — the caller
        receives the absolute arrival *times* and expands completions
        lazily (see ``QueuePair.post_write_batch``). ``delays`` holds the
        per-message transmission-start offsets from now (NIC engine
        arbitration).
        """
        cluster = self.cluster
        if source.cluster is not cluster or destination.cluster is not cluster:
            self._check_nodes(source, destination)
        count = len(sizes)
        self.unicast_count += count
        self.unicast_trains += 1
        if (self._shard_tag and source is not destination
                and destination._shard != source._shard):
            # No arrival events to tag (the caller chains its own timers
            # from the returned floats), but the train's messages still
            # cross shards — keep the crossing tally honest.
            self.env.mailbox_crossings += count
        now = self.env.now
        if source is destination:
            loop_latency = self.profile.loopback_latency
            loop_bandwidth = self.profile.loopback_bandwidth
            last = self._loopback_last.get(source.node_id, 0.0)
            arrivals = []
            for size, delay in zip(sizes, delays):
                arrival = now + delay + loop_latency + size / loop_bandwidth
                arrival = max(arrival, last)
                last = arrival
                arrivals.append(arrival)
            self._loopback_last[source.node_id] = last
            return arrivals
        uplink = source.uplink
        downlink = destination.downlink
        wire_latency = self.profile.wire_latency
        up_slots = uplink.reserve_train(sizes,
                                        [now + delay for delay in delays])
        recorder = (self.env.crossing_recorder
                    if self._shard_tag and destination._shard != source._shard
                    else None)
        arrivals = []
        for size, (_up_start, up_end) in zip(sizes, up_slots):
            send_start = up_end - uplink.serialization_time(size)
            _down_start, down_end = downlink.reserve(
                size, send_start + wire_latency)
            arrivals.append(max(down_end, up_end + wire_latency))
            if recorder is not None:
                recorder.edge(up_end + wire_latency, up_end,
                              "shard_crossing", destination.node_id,
                              "fabric", src_node_id=source.node_id)
        return arrivals

    def unicast_train_one(self, source: Node, destination: Node,
                          size: int, delay: float) -> float:
        """Single-message shape of :meth:`unicast_train` — identical
        float arithmetic and tallies for a train of one (the common
        shape on hash-routed shuffles), without the list machinery."""
        cluster = self.cluster
        if source.cluster is not cluster or destination.cluster is not cluster:
            self._check_nodes(source, destination)
        self.unicast_count += 1
        self.unicast_trains += 1
        if (self._shard_tag and source is not destination
                and destination._shard != source._shard):
            self.env.mailbox_crossings += 1
        now = self.env.now
        if source is destination:
            arrival = (now + delay + self.profile.loopback_latency
                       + size / self.profile.loopback_bandwidth)
            last = self._loopback_last.get(source.node_id, 0.0)
            if arrival < last:
                arrival = last
            self._loopback_last[source.node_id] = arrival
            return arrival
        uplink = source.uplink
        wire_latency = self.profile.wire_latency
        _up_start, up_end = uplink.reserve_train_one(size, now + delay)
        send_start = up_end - uplink.serialization_time(size)
        _down_start, down_end = destination.downlink.reserve(
            size, send_start + wire_latency)
        up_arrival = up_end + wire_latency
        if (self._shard_tag and source is not destination
                and destination._shard != source._shard):
            recorder = self.env.crossing_recorder
            if recorder is not None:
                recorder.edge(up_arrival, up_end, "shard_crossing",
                              destination.node_id, "fabric",
                              src_node_id=source.node_id)
        return down_end if down_end > up_arrival else up_arrival

    # -- multicast -----------------------------------------------------------
    def multicast(self, source: Node, members: list[Node], size: int,
                  delay: float = 0.0) -> dict[Node, Timeout | None]:
        """Replicate ``size`` bytes to all ``members`` via the switch.

        Returns a mapping from member node to its arrival event, or ``None``
        if loss injection dropped that member's copy. The source pays one
        uplink serialization; each member pays its own downlink.
        """
        if not members:
            raise SimulationError("multicast group must not be empty")
        self._check_nodes(source, *members)
        self.multicast_count += 1
        env = self.env
        shard_tag = self._shard_tag
        now = env.now
        _up_start, up_end = source.uplink.reserve(size, now + delay)
        send_start = up_end - source.uplink.serialization_time(size)
        arrivals: dict[Node, Timeout | None] = {}
        loss_p = self.profile.multicast_loss_probability
        faults = self._faults
        if faults is not None and not faults.active:
            faults = None
        for member in members:
            if faults is not None and not faults.ud_deliverable(source,
                                                                member):
                # Crashed or partitioned-away member: the datagram never
                # reaches its port (UD has no retransmission).
                self.fault_drops += 1
                arrivals[member] = None
                continue
            if loss_p > 0.0 and self._loss_rng.random() < loss_p:
                self.multicast_drops += 1
                arrivals[member] = None
                continue
            if shard_tag:
                shard = member._shard
                if shard != source._shard:
                    env.mailbox_crossings += 1
                    recorder = env.crossing_recorder
                    if recorder is not None:
                        recorder.edge(up_end + self.profile.wire_latency,
                                      up_end, "shard_crossing",
                                      member.node_id, "fabric",
                                      src_node_id=source.node_id)
                env._post_shard = shard
            if member is source:
                arrival_at = (now + delay + self.profile.loopback_latency
                              + size / self.profile.loopback_bandwidth)
                arrival_at = max(arrival_at,
                                 self._loopback_last.get(source.node_id,
                                                         0.0))
                self._loopback_last[source.node_id] = arrival_at
                arrivals[member] = env.timeout(arrival_at - now)
                continue
            _d_start, d_end = member.downlink.reserve(
                size, send_start + self.profile.wire_latency)
            arrival = max(d_end, up_end + self.profile.wire_latency)
            arrivals[member] = env.timeout(arrival - now)
        if shard_tag:
            env._post_shard = -1
        return arrivals

    # -- switch-terminated transfers (in-network processing) -----------------
    def to_switch(self, source: Node, size: int,
                  delay: float = 0.0) -> Timeout:
        """Transmit ``size`` bytes from ``source`` into the switch itself
        (for in-network processing such as SHARP aggregation). Costs the
        uplink serialization plus half the wire latency."""
        self._check_nodes(source)
        now = self.env.now
        _start, up_end = source.uplink.reserve(size, now + delay)
        arrival = up_end + self.profile.wire_latency / 2
        return self.env.timeout(arrival - now)

    def from_switch(self, destination: Node, size: int) -> Timeout:
        """Transmit ``size`` bytes from the switch to ``destination``:
        the downlink serialization plus half the wire latency."""
        self._check_nodes(destination)
        env = self.env
        now = env.now
        _start, down_end = destination.downlink.reserve(size, now)
        arrival = down_end + self.profile.wire_latency / 2
        if self._shard_tag:
            env._post_shard = destination._shard
            event = env.timeout(arrival - now)
            env._post_shard = -1
            return event
        return env.timeout(arrival - now)

    def _check_nodes(self, *nodes: Node) -> None:
        for node in nodes:
            if node.cluster is not self.cluster:
                raise SimulationError(
                    f"{node!r} does not belong to this cluster")
