"""Deterministic fault injection (the fault plane).

The paper defers fault tolerance to future work (Section 7); this module
supplies the *failure side* of that story: a schedulable, bit-reproducible
way to crash nodes, take links down, partition the cluster, and degrade
link bandwidth — so the detection and recovery machinery in ``repro.rdma``
and ``repro.core`` has something real to detect.

Two pieces:

* :class:`FaultPlan` — a declarative, immutable schedule of fault entries
  (built directly, or drawn from a seeded RNG via :meth:`FaultPlan.random`
  for chaos testing). A plan is pure data: building one touches no
  simulator state.
* :class:`FaultPlane` — a plan *installed* on a cluster
  (``cluster.install_faults(plan)``). It schedules the plan's active
  transitions on the event kernel (crashes kill node processes, degrade
  windows rescale link bandwidth) and answers reachability queries from
  the RDMA layer and the fabric.

Determinism contract: everything is a pure function of (plan, seed,
install time). Random plans draw from ``derive_rng(seed, "fault-plan")``
at *build* time — never at run time — so the schedule itself is part of
the reproducible input. An **empty plan schedules zero kernel events and
every query short-circuits on** ``plane.active``, which keeps fault-free
runs bit-identical to runs without any plane installed (the
zero-overhead-when-unused guarantee ``benchmarks/perf/fingerprint.py
--check-fault-neutral`` asserts).

Scope: the plane covers the RC/UD verbs the DFI flows use. The SHARP
in-network-aggregation and MPI baselines bypass it (they exist for
performance comparison, not fault-tolerance claims).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rand import derive_rng

if TYPE_CHECKING:
    from repro.simnet.cluster import Cluster
    from repro.simnet.node import Node

#: Default failure-detection bound (ns): how long the RC transport retries
#: an unreachable peer before flushing the work request in error. Plays the
#: role of the verbs retry count x retransmission timeout product.
DEFAULT_DETECTION_TIMEOUT = 100_000.0

_INF = math.inf


# -- plan entries -----------------------------------------------------------
@dataclass(frozen=True)
class LinkDown:
    """The path between nodes ``a`` and ``b`` is down during
    ``[at, at + duration)``; traffic between all other pairs is unaffected."""

    a: int
    b: int
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ConfigurationError("link_down needs two distinct nodes")
        if self.at < 0 or self.duration <= 0:
            raise ConfigurationError(
                "link_down needs at >= 0 and duration > 0")


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop crash of ``node`` at time ``at``: its processes are
    killed, its memory stops accepting commits, and it is unreachable
    from every other node forever after."""

    node: int
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("node_crash needs at >= 0")


@dataclass(frozen=True)
class Partition:
    """Nodes in different ``groups`` cannot communicate during
    ``[at, heal_at)``. Nodes not listed in any group are unaffected."""

    groups: tuple[frozenset[int], ...]
    at: float
    heal_at: float

    def __post_init__(self) -> None:
        if len(self.groups) < 2:
            raise ConfigurationError("partition needs at least two groups")
        seen: set[int] = set()
        for group in self.groups:
            if seen & group:
                raise ConfigurationError(
                    "partition groups must be disjoint")
            seen |= group
        if self.at < 0 or self.heal_at <= self.at:
            raise ConfigurationError(
                "partition needs 0 <= at < heal_at")


@dataclass(frozen=True)
class LinkDegrade:
    """Both links of ``node`` run ``factor``x slower during
    ``[at, at + duration)``. Degrades compose multiplicatively, so
    overlapping windows are well-defined."""

    node: int
    at: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ConfigurationError("degrade factor must be > 1")
        if self.at < 0 or self.duration <= 0:
            raise ConfigurationError(
                "link_degrade needs at >= 0 and duration > 0")


#: Any schedulable fault entry.
FaultEntry = "LinkDown | NodeCrash | Partition | LinkDegrade"


def link_down(a: int, b: int, at: float, duration: float) -> LinkDown:
    """Take the a<->b path down for ``duration`` ns starting at ``at``."""
    return LinkDown(a, b, float(at), float(duration))


def node_crash(node: int, at: float) -> NodeCrash:
    """Fail-stop crash ``node`` at time ``at``."""
    return NodeCrash(node, float(at))


def partition(groups: Iterable[Iterable[int]], at: float,
              heal_at: float) -> Partition:
    """Partition the listed node groups from ``at`` until ``heal_at``."""
    return Partition(tuple(frozenset(group) for group in groups),
                     float(at), float(heal_at))


def link_degrade(node: int, at: float, duration: float,
                 factor: float) -> LinkDegrade:
    """Slow ``node``'s links by ``factor`` for ``duration`` ns."""
    return LinkDegrade(node, float(at), float(duration), float(factor))


class FaultPlan:
    """An immutable schedule of fault entries.

    ``FaultPlan()`` is the empty plan (installs as a no-op plane).
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Sequence = ()) -> None:
        for entry in entries:
            if not isinstance(entry,
                              (LinkDown, NodeCrash, Partition, LinkDegrade)):
                raise ConfigurationError(
                    f"not a fault entry: {entry!r}")
        self.entries = tuple(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def node_ids(self) -> set[int]:
        """Every node id the plan references."""
        ids: set[int] = set()
        for entry in self.entries:
            if isinstance(entry, LinkDown):
                ids |= {entry.a, entry.b}
            elif isinstance(entry, (NodeCrash, LinkDegrade)):
                ids.add(entry.node)
            else:
                for group in entry.groups:
                    ids |= group
        return ids

    @classmethod
    def random(cls, seed: int, node_ids: Iterable[int], start: float,
               horizon: float, entry_count: int = 3,
               protected: Iterable[int] = (),
               allow_crash: bool = True) -> "FaultPlan":
        """Build a seeded random plan for chaos testing.

        All randomness is consumed here, at build time, from
        ``derive_rng(seed, "fault-plan")`` — the resulting plan (and thus
        the whole failure run) is a deterministic function of ``seed``.
        Fault times land in ``[start, horizon)``; nodes in ``protected``
        (e.g. the registry master) are never touched. At most one node is
        crashed per plan so most runs keep a quorum of live endpoints.
        """
        rng = derive_rng(seed, "fault-plan")
        candidates = sorted(set(node_ids) - set(protected))
        if len(candidates) < 2:
            raise ConfigurationError(
                "random fault plans need at least two non-protected nodes")
        if start >= horizon:
            raise ConfigurationError("random plan needs start < horizon")
        entries: list = []
        crashed = False
        kinds = ["link_down", "degrade", "partition"]
        if allow_crash:
            kinds.append("crash")
        for _ in range(entry_count):
            kind = rng.choice(kinds)
            at = rng.uniform(start, horizon)
            span = max(1.0, (horizon - at))
            if kind == "crash" and not crashed:
                crashed = True
                entries.append(NodeCrash(rng.choice(candidates), at))
            elif kind == "link_down" or kind == "crash":
                a, b = rng.sample(candidates, 2)
                entries.append(LinkDown(a, b, at,
                                        rng.uniform(0.1 * span, span)))
            elif kind == "degrade":
                entries.append(LinkDegrade(
                    rng.choice(candidates), at,
                    rng.uniform(0.1 * span, span),
                    rng.uniform(2.0, 16.0)))
            else:
                split = rng.randint(1, len(candidates) - 1)
                shuffled = list(candidates)
                rng.shuffle(shuffled)
                entries.append(Partition(
                    (frozenset(shuffled[:split]),
                     frozenset(shuffled[split:])),
                    at, at + rng.uniform(0.1 * span, span)))
        return cls(entries)


class _Block:
    """One reachability-blocking interval (a link_down or a partition)."""

    __slots__ = ("start", "end", "pair", "groups")

    def __init__(self, start: float, end: float,
                 pair: frozenset | None = None,
                 groups: tuple | None = None) -> None:
        self.start = start
        self.end = end
        self.pair = pair
        self.groups = groups

    def blocks(self, a: int, b: int) -> bool:
        if self.pair is not None:
            return a in self.pair and b in self.pair
        group_a = group_b = None
        for index, group in enumerate(self.groups):
            if a in group:
                group_a = index
            if b in group:
                group_b = index
        return (group_a is not None and group_b is not None
                and group_a != group_b)


class FaultPlane:
    """A :class:`FaultPlan` installed on a cluster.

    Reachability (link_down / partition intervals) is computed on demand
    from the static plan — no kernel events. Only *active* transitions
    are scheduled: node crashes (kill the node's processes at the crash
    instant) and degrade windows (rescale link bandwidth at each edge).
    """

    def __init__(self, cluster: "Cluster", plan: FaultPlan,
                 detection_timeout: float = DEFAULT_DETECTION_TIMEOUT
                 ) -> None:
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(plan)
        if detection_timeout <= 0:
            raise ConfigurationError("detection_timeout must be positive")
        for node_id in plan.node_ids():
            cluster.node(node_id)  # validates range
        self.cluster = cluster
        self.env = cluster.env
        self.plan = plan
        self.detection_timeout = float(detection_timeout)
        #: False for the empty plan: every hot-path guard short-circuits
        #: here, so an installed-but-empty plane is event-pattern neutral.
        self.active = bool(plan.entries)
        self._crash_at: dict[int, float] = {}
        self._blocks: list[_Block] = []
        self._causal = None
        self._causal_resolved = False
        #: Nodes whose crash transition has been applied (processes killed).
        self.crashed: set[int] = set()
        for entry in plan.entries:
            if isinstance(entry, NodeCrash):
                previous = self._crash_at.get(entry.node, _INF)
                self._crash_at[entry.node] = min(previous, entry.at)
            elif isinstance(entry, LinkDown):
                self._blocks.append(_Block(
                    entry.at, entry.at + entry.duration,
                    pair=frozenset((entry.a, entry.b))))
            elif isinstance(entry, Partition):
                self._blocks.append(_Block(entry.at, entry.heal_at,
                                           groups=entry.groups))
        if self.active:
            self._schedule_transitions()

    # -- kernel wiring ----------------------------------------------------
    def _schedule_transitions(self) -> None:
        now = self.env.now
        for node_id, at in sorted(self._crash_at.items()):
            self._at(max(0.0, at - now), node_id, self._apply_crash, node_id)
        for entry in self.plan.entries:
            if not isinstance(entry, LinkDegrade):
                continue
            self._at(max(0.0, entry.at - now), entry.node,
                     self._scale_links, entry.node, 1.0 / entry.factor)
            self._at(max(0.0, entry.at + entry.duration - now), entry.node,
                     self._scale_links, entry.node, entry.factor)

    def _at(self, delay: float, victim: int, fn, *args) -> None:
        env = self.env
        if env.shard_count > 1:
            # Land the transition on the victim node's shard lane: a crash
            # kills that node's processes, a degrade rescales its links.
            env._post_shard = self.cluster.shard_map[victim]
            timer = env.timeout(delay)
            env._post_shard = -1
        else:
            timer = env.timeout(delay)
        timer.callbacks.append(lambda _event: fn(*args))

    def _apply_crash(self, node_id: int) -> None:
        self.crashed.add(node_id)
        self.cluster.node(node_id).fail_stop()

    def _scale_links(self, node_id: int, factor: float) -> None:
        # rescale (not a bare ``bandwidth *=``) re-prices the queued
        # backlog at the new rate, so a degrade landing mid-queue behaves
        # identically whether it fires just before or just after a
        # same-timestamp reserve.
        node = self.cluster.node(node_id)
        now = self.env.now
        node.uplink.rescale(factor, now)
        node.downlink.rescale(factor, now)

    # -- reachability queries ---------------------------------------------
    def _path_open_at(self, a: int, b: int,
                      at: "float | None" = None) -> float:
        """Earliest time >= ``at`` (default: now) at which a and b can
        exchange traffic (``inf`` if one of them crashes first)."""
        t = self.env.now if at is None else at
        while True:
            if (self._crash_at.get(a, _INF) <= t
                    or self._crash_at.get(b, _INF) <= t):
                return _INF
            reopen = None
            for block in self._blocks:
                if block.start <= t < block.end and block.blocks(a, b):
                    if reopen is None or block.end > reopen:
                        reopen = block.end
            if reopen is None:
                return t
            t = reopen

    def node_alive(self, node: "Node") -> bool:
        """True while the node has not reached its crash time."""
        return self._crash_at.get(node.node_id, _INF) > self.env.now

    def node_crashed_id(self, node_id: int) -> bool:
        """True once ``node_id`` reached its crash time."""
        return self._crash_at.get(node_id, _INF) <= self.env.now

    def rc_admission(self, src: "Node", dst: "Node",
                     at: "float | None" = None) -> "float | None":
        """Admission verdict for an RC operation posted src -> dst.

        Returns the extra delay (0.0 on a clean path; the remaining
        outage when the path heals within the detection bound — modeling
        RC retransmission riding out a short blip), or ``None`` when the
        transport would give up: the peer crashed or the outage outlasts
        ``detection_timeout``, so the work request must flush in error.

        ``at`` evaluates the path as of a future instant instead of now:
        doorbell-batched trains admit each WQE at its wire-transmission
        start time, so an outage beginning mid-train delivers the prefix
        and flushes the suffix.
        """
        opens = self._path_open_at(src.node_id, dst.node_id, at)
        base = self.env.now if at is None else at
        if opens <= base:
            return 0.0
        if opens - base <= self.detection_timeout:
            recorder = self._causal_recorder()
            if recorder is not None:
                recorder.edge(opens, base, "fault_backoff", src.node_id,
                              f"rc{src.node_id}->{dst.node_id}",
                              src_node_id=dst.node_id)
            return opens - base
        return None

    def _causal_recorder(self):
        """The cluster's causal recorder, resolved lazily (mirrors
        ``CongestionPlane._trace``). Only consulted on heal waits —
        clean-path admissions never reach it."""
        if not self._causal_resolved:
            obs = self.cluster.obs
            if obs is not None and obs.causal is not None:
                self._causal = obs.causal
                self._causal_resolved = True
        return self._causal

    def ud_deliverable(self, src: "Node", dst: "Node") -> bool:
        """True if a UD datagram sent now from src reaches dst (datagrams
        are never retried: any current block or crash drops them)."""
        return self._path_open_at(src.node_id, dst.node_id) <= self.env.now

    def peer_failed(self, me: "Node", peer: "Node") -> bool:
        """Failure-detector verdict: the peer crashed, or the path to it
        stays blocked beyond the detection bound — i.e. waiting longer
        cannot help. Distinguishes :class:`FlowPeerFailedError` from
        :class:`FlowTimeoutError` at the flow layer."""
        opens = self._path_open_at(me.node_id, peer.node_id)
        return opens == _INF or opens - self.env.now > self.detection_timeout


# -- default-plan hook (fingerprint neutrality check) -----------------------
#: When set, every newly built Cluster auto-installs this plan — lets the
#: fingerprint script prove an empty plane causes zero metric drift even
#: for clusters constructed deep inside benchmark helpers.
_default_plan: "FaultPlan | None" = None
_default_detection_timeout: float = DEFAULT_DETECTION_TIMEOUT


def set_default_plan(plan: "FaultPlan | None",
                     detection_timeout: float = DEFAULT_DETECTION_TIMEOUT
                     ) -> None:
    """Install ``plan`` on every cluster created from now on (``None``
    clears the hook). Intended for harnesses, not applications."""
    global _default_plan, _default_detection_timeout
    _default_plan = plan
    _default_detection_timeout = detection_timeout


def _install_default(cluster: "Cluster") -> None:
    if _default_plan is not None:
        cluster.install_faults(_default_plan, _default_detection_timeout)
