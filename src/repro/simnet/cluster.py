"""Cluster builder: environment + nodes + fabric in one object.

Typical setup::

    cluster = Cluster(node_count=8)
    node = cluster.node(0)
    node.spawn(my_worker(node))
    cluster.run()
"""

from __future__ import annotations

from typing import Any

from repro.common.config import DEFAULT_HARDWARE, HardwareProfile
from repro.common.errors import ConfigurationError
from repro.simnet.fabric import Fabric
from repro.simnet.kernel import Environment, Event
from repro.simnet.node import Node


class Cluster:
    """A simulated cluster of ``node_count`` servers behind one switch."""

    def __init__(self, node_count: int,
                 profile: HardwareProfile = DEFAULT_HARDWARE,
                 seed: int = 0) -> None:
        if node_count < 1:
            raise ConfigurationError("cluster needs at least one node")
        self.env = Environment()
        self.profile = profile
        self.seed = seed
        self.nodes = [Node(self, node_id) for node_id in range(node_count)]
        self.fabric = Fabric(self)
        #: The installed fault plane, if any (see ``repro.simnet.faults``).
        self.faults = None
        #: The observability plane, if enabled (see ``repro.obs``).
        self.obs = None
        from repro.simnet.faults import _install_default
        _install_default(self)
        from repro.obs import _install_default as _install_obs_default
        _install_obs_default(self)

    def install_faults(self, plan, detection_timeout: float | None = None):
        """Install a :class:`~repro.simnet.faults.FaultPlan` on this
        cluster and return the resulting
        :class:`~repro.simnet.faults.FaultPlane`.

        Install before opening flow endpoints (queue pairs consult
        ``cluster.faults`` per posted operation). One plane per cluster;
        an empty plan is a supported no-op (zero simulated overhead)."""
        from repro.simnet.faults import DEFAULT_DETECTION_TIMEOUT, FaultPlane

        if self.faults is not None:
            raise ConfigurationError(
                "a fault plane is already installed on this cluster")
        if detection_timeout is None:
            detection_timeout = DEFAULT_DETECTION_TIMEOUT
        self.faults = FaultPlane(self, plan, detection_timeout)
        self.fabric._faults = self.faults
        return self.faults

    def enable_observability(self, trace: bool = False,
                             trace_capacity: int | None = None):
        """Enable the observability plane (see ``repro.obs``) and return
        it. Idempotent; call *before* opening flow endpoints or creating
        queue pairs (they cache ``node.metrics`` at construction).
        ``trace=True`` traces every flow regardless of its
        ``FlowOptions.trace`` knob. Enabling never perturbs the simulated
        timeline: it schedules no kernel events and draws no randomness.
        """
        from repro.obs import DEFAULT_TRACE_CAPACITY, ObsPlane

        if self.obs is None:
            if trace_capacity is None:
                trace_capacity = DEFAULT_TRACE_CAPACITY
            self.obs = ObsPlane(self, trace=trace,
                                trace_capacity=trace_capacity)
            for node in self.nodes:
                node.metrics = self.obs.registry(node.node_id)
        elif trace:
            self.obs.trace_all = True
        return self.obs

    def metrics_snapshot(self) -> dict:
        """One dict of everything measurable about this cluster: per-node
        registries (empty unless :meth:`enable_observability` was called)
        plus the always-on infrastructure tallies of the NICs, links and
        fabric. Render with :func:`repro.obs.render_report`."""
        nics = {}
        for node in self.nodes:
            nic = getattr(node, "_rnic", None)
            if nic is not None:
                nics[node.node_id] = {
                    "wqes_processed": nic.wqes_processed,
                    "bytes_posted": nic.bytes_posted,
                    "doorbell_trains": nic.doorbell_trains,
                    "rx_dropped_no_recv": nic.rx_dropped_no_recv,
                }
        links = {}
        for node in self.nodes:
            for link in (node.uplink, node.downlink):
                links[link.name] = {
                    "bytes_carried": link.bytes_carried,
                    "messages_carried": link.messages_carried,
                    "trains_carried": link.trains_carried,
                }
        return {
            "nodes": self.obs.snapshot() if self.obs is not None else {},
            "nics": nics,
            "links": links,
            "fabric": {
                "unicast_count": self.fabric.unicast_count,
                "unicast_trains": self.fabric.unicast_trains,
                "multicast_count": self.fabric.multicast_count,
                "multicast_drops": self.fabric.multicast_drops,
                "fault_drops": self.fabric.fault_drops,
            },
        }

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        """Return the node with the given id (raises on bad id)."""
        if not 0 <= node_id < len(self.nodes):
            raise ConfigurationError(
                f"node id {node_id} out of range [0, {len(self.nodes)})")
        return self.nodes[node_id]

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation (delegates to the kernel)."""
        return self.env.run(until)

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self.env.now

    def total_bytes_sent(self) -> int:
        """Sum of payload bytes scheduled on all node uplinks."""
        return sum(node.uplink.bytes_carried for node in self.nodes)

    def total_bytes_received(self) -> int:
        """Sum of payload bytes scheduled on all node downlinks."""
        return sum(node.downlink.bytes_carried for node in self.nodes)

    def __repr__(self) -> str:
        return f"<Cluster nodes={len(self.nodes)} t={self.env.now:.0f}ns>"
