"""Cluster builder: environment + nodes + fabric in one object.

Typical setup::

    cluster = Cluster(node_count=8)
    node = cluster.node(0)
    node.spawn(my_worker(node))
    cluster.run()
"""

from __future__ import annotations

from typing import Any

from repro.common.config import (DEFAULT_HARDWARE, DEFAULT_SHARDS,
                                 HardwareProfile)
from repro.common.errors import ConfigurationError
from repro.simnet.fabric import Fabric
from repro.simnet.kernel import Environment, Event
from repro.simnet.node import Node


class Cluster:
    """A simulated cluster of ``node_count`` servers behind one switch.

    ``shards`` selects the event kernel: 1 (the default, or whatever
    ``REPRO_SHARDS`` says) keeps the single-queue :class:`Environment`;
    >1 builds a :class:`~repro.simnet.shard.ShardedEnvironment` with one
    event lane per node group. Simulated metrics are bit-identical either
    way — sharding changes event *storage*, never event *order* (see
    ``simnet/shard.py``). ``shard_map`` overrides the default contiguous
    block partition with an explicit node→shard list.
    """

    def __init__(self, node_count: int,
                 profile: HardwareProfile = DEFAULT_HARDWARE,
                 seed: int = 0, shards: int | None = None,
                 shard_map: "list[int] | None" = None) -> None:
        if node_count < 1:
            raise ConfigurationError("cluster needs at least one node")
        if shards is None:
            shards = DEFAULT_SHARDS
        if shards < 1:
            raise ConfigurationError(
                f"shard count must be >= 1, got {shards}")
        shards = min(shards, node_count)
        if shard_map is not None:
            if len(shard_map) != node_count:
                raise ConfigurationError(
                    f"shard_map covers {len(shard_map)} nodes, cluster has "
                    f"{node_count}")
            if min(shard_map) < 0 or max(shard_map) >= node_count:
                raise ConfigurationError(
                    "shard_map entries must lie in [0, node_count)")
            shards = max(shards, max(shard_map) + 1)
            self.shard_map = list(shard_map)
        else:
            from repro.simnet.shard import block_shard_map
            self.shard_map = block_shard_map(node_count, shards)
        if shards > 1:
            from repro.simnet.shard import ShardedEnvironment
            self.env = ShardedEnvironment(
                shards, lookahead=profile.wire_latency)
        else:
            self.env = Environment()
        self.profile = profile
        self.seed = seed
        self.nodes = [Node(self, node_id) for node_id in range(node_count)]
        self.fabric = Fabric(self)
        #: The installed fault plane, if any (see ``repro.simnet.faults``).
        self.faults = None
        #: The observability plane, if enabled (see ``repro.obs``).
        self.obs = None
        #: The congestion plane, if installed (see
        #: ``repro.simnet.congestion``). ``None`` keeps every hot path on
        #: the exact pre-congestion code — bit-identical timelines.
        self.congestion = None
        from repro.simnet.faults import _install_default
        _install_default(self)
        from repro.obs import _install_default as _install_obs_default
        _install_obs_default(self)
        from repro.simnet.congestion import _install_default as _install_cc
        _install_cc(self)

    def install_faults(self, plan, detection_timeout: float | None = None):
        """Install a :class:`~repro.simnet.faults.FaultPlan` on this
        cluster and return the resulting
        :class:`~repro.simnet.faults.FaultPlane`.

        Install before opening flow endpoints (queue pairs consult
        ``cluster.faults`` per posted operation). One plane per cluster;
        an empty plan is a supported no-op (zero simulated overhead)."""
        from repro.simnet.faults import DEFAULT_DETECTION_TIMEOUT, FaultPlane

        if self.faults is not None:
            raise ConfigurationError(
                "a fault plane is already installed on this cluster")
        if detection_timeout is None:
            detection_timeout = DEFAULT_DETECTION_TIMEOUT
        self.faults = FaultPlane(self, plan, detection_timeout)
        self.fabric._faults = self.faults
        return self.faults

    def install_congestion(self, config):
        """Install a :class:`~repro.simnet.congestion.CongestionConfig` on
        this cluster and return the resulting
        :class:`~repro.simnet.congestion.CongestionPlane`.

        Usually implicit: initializing a flow whose
        ``FlowOptions.congestion`` is set installs the config
        cluster-wide. Idempotent for an *equal* config (several flows may
        carry the same policy); a conflicting config raises — one fabric
        has one queueing discipline."""
        from repro.simnet.congestion import CongestionPlane

        if self.congestion is not None:
            if self.congestion.config == config:
                return self.congestion
            raise ConfigurationError(
                "a congestion plane with a different config is already "
                "installed on this cluster")
        self.congestion = CongestionPlane(self, config)
        return self.congestion

    def enable_observability(self, trace: bool = False,
                             trace_capacity: int | None = None,
                             causal: bool = False):
        """Enable the observability plane (see ``repro.obs``) and return
        it. Idempotent; call *before* opening flow endpoints or creating
        queue pairs (they cache ``node.metrics`` at construction).
        ``trace=True`` traces every flow regardless of its
        ``FlowOptions.trace`` knob; ``causal=True`` additionally records
        causal edges for the critical-path engine (``repro.obs.causal``).
        Enabling never perturbs the simulated timeline: it schedules no
        kernel events and draws no randomness.
        """
        from repro.obs import DEFAULT_TRACE_CAPACITY, ObsPlane

        if self.obs is None:
            if trace_capacity is None:
                trace_capacity = DEFAULT_TRACE_CAPACITY
            self.obs = ObsPlane(self, trace=trace,
                                trace_capacity=trace_capacity,
                                causal=causal)
            for node in self.nodes:
                node.metrics = self.obs.registry(node.node_id)
            self._register_kernel_collectors()
        else:
            if trace:
                self.obs.trace_all = True
            if causal and self.obs.causal is None:
                from repro.obs import CausalRecorder
                self.obs.causal = CausalRecorder(self.env)
        if causal:
            for node in self.nodes:
                node.causal = self.obs.causal
            if self.env.shard_count > 1:
                # Fabric crossing sites read this slot to record
                # shard_crossing context spans (see simnet/shard.py).
                self.env.crossing_recorder = self.obs.causal
        return self.obs

    def _register_kernel_collectors(self) -> None:
        """Surface the sharded kernel's always-on lane tallies as
        read-time counters (``kernel.shard.*``) on each shard's home node
        — the first node mapped to that lane. Collectors are harvested at
        snapshot time, so sharding observability costs the hot path
        nothing (the ``repro.obs`` contract)."""
        env = self.env
        if env.shard_count <= 1:
            return
        lanes = env._lanes
        home: dict[int, int] = {}
        for node_id, shard in enumerate(self.shard_map):
            home.setdefault(shard, node_id)

        def lane_collector(lane):
            def collect():
                stats = lane.stats()
                return (
                    ("kernel.shard.events_drained", stats["drained"]),
                    ("kernel.shard.drain_rounds", stats["rounds"]),
                    ("kernel.shard.horizon_stalls", stats["horizon_stalls"]),
                    ("kernel.shard.mailbox_in", stats["mailbox_in"]),
                    ("kernel.shard.pending", stats["pending"]),
                )
            return collect

        for shard, node_id in sorted(home.items()):
            self.obs.registry(node_id).add_collector(
                lane_collector(lanes[shard]))
        self.obs.registry(home[min(home)]).add_collector(
            lambda: (("kernel.mailbox_crossings", env.mailbox_crossings),))

    def metrics_snapshot(self) -> dict:
        """One dict of everything measurable about this cluster: per-node
        registries (empty unless :meth:`enable_observability` was called)
        plus the always-on infrastructure tallies of the NICs, links and
        fabric. Render with :func:`repro.obs.render_report`."""
        nics = {}
        for node in self.nodes:
            nic = getattr(node, "_rnic", None)
            if nic is not None:
                nics[node.node_id] = {
                    "wqes_processed": nic.wqes_processed,
                    "bytes_posted": nic.bytes_posted,
                    "doorbell_trains": nic.doorbell_trains,
                    "rx_dropped_no_recv": nic.rx_dropped_no_recv,
                    "engine_wait_ns": nic.engine_wait_ns,
                }
        links = {}
        for node in self.nodes:
            for link in (node.uplink, node.downlink):
                links[link.name] = {
                    "bytes_carried": link.bytes_carried,
                    "messages_carried": link.messages_carried,
                    "trains_carried": link.trains_carried,
                    "busy_until_ns": link.busy_until_ns,
                    "hol_wait_ns": link.hol_wait_ns,
                }
        kernel = {"shards": self.env.shard_count}
        shard_stats = getattr(self.env, "shard_stats", None)
        if shard_stats is not None:
            kernel = shard_stats()
        snapshot = {
            "nodes": self.obs.snapshot() if self.obs is not None else {},
            "nics": nics,
            "links": links,
            "kernel": kernel,
            "fabric": {
                "unicast_count": self.fabric.unicast_count,
                "unicast_trains": self.fabric.unicast_trains,
                "multicast_count": self.fabric.multicast_count,
                "multicast_drops": self.fabric.multicast_drops,
                "fault_drops": self.fabric.fault_drops,
            },
        }
        if self.congestion is not None:
            snapshot["congestion"] = self.congestion.stats()
        if self.obs is not None:
            if self.obs.tracers:
                snapshot["trace_rings"] = {
                    tracer.flow: {"kept": len(tracer),
                                  "dropped": tracer.dropped,
                                  "emitted": tracer.emitted,
                                  "capacity": tracer.capacity}
                    for tracer in self.obs.tracers.values()
                }
            recorder = self.obs.causal
            if recorder is not None:
                snapshot["causal"] = {
                    "edges": sum(log.next
                                 for log in recorder.logs.values()),
                    "flows_closed": len(recorder.closes),
                    "dropped": recorder.dropped(),
                }
        return snapshot

    @classmethod
    def racked(cls, racks: int, nodes_per_rack: int,
               profile: HardwareProfile = DEFAULT_HARDWARE,
               seed: int = 0, shards: int | None = None) -> "Cluster":
        """Build a ``racks × nodes_per_rack`` cluster with rack-aligned
        shards — the topology helper for 256-1024-node scenarios.

        Node ids are assigned rack-major (rack ``r`` owns nodes
        ``r*nodes_per_rack .. (r+1)*nodes_per_rack - 1``). By default each
        rack becomes one event shard; pass ``shards`` to coarsen (e.g.
        ``shards=4`` on 32 racks groups 8 racks per shard — the map stays
        rack-aligned because blocks of equal size nest)."""
        if racks < 1 or nodes_per_rack < 1:
            raise ConfigurationError(
                "racked() needs racks >= 1 and nodes_per_rack >= 1")
        node_count = racks * nodes_per_rack
        if shards is None:
            shards = racks
        shards = min(shards, node_count)
        from repro.simnet.shard import block_shard_map
        rack_shard = block_shard_map(racks, shards)
        shard_map = [rack_shard[node // nodes_per_rack]
                     for node in range(node_count)]
        cluster = cls(node_count, profile=profile, seed=seed,
                      shards=shards, shard_map=shard_map)
        cluster.nodes_per_rack = nodes_per_rack
        return cluster

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def shard_count(self) -> int:
        """Number of event-kernel shards (1 = single-queue kernel)."""
        return self.env.shard_count

    def shard_of(self, node_id: int) -> int:
        """Event-kernel shard holding ``node_id``'s delivery lane."""
        return self.shard_map[node_id]

    def node(self, node_id: int) -> Node:
        """Return the node with the given id (raises on bad id)."""
        if not 0 <= node_id < len(self.nodes):
            raise ConfigurationError(
                f"node id {node_id} out of range [0, {len(self.nodes)})")
        return self.nodes[node_id]

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation (delegates to the kernel)."""
        return self.env.run(until)

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self.env.now

    def total_bytes_sent(self) -> int:
        """Sum of payload bytes scheduled on all node uplinks."""
        return sum(node.uplink.bytes_carried for node in self.nodes)

    def total_bytes_received(self) -> int:
        """Sum of payload bytes scheduled on all node downlinks."""
        return sum(node.downlink.bytes_carried for node in self.nodes)

    def __repr__(self) -> str:
        return f"<Cluster nodes={len(self.nodes)} t={self.env.now:.0f}ns>"
