"""Compute-node model: CPU cost accounting plus one full-duplex port."""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from repro.common.rand import derive_rng
from repro.simnet.kernel import Event, Process, Timeout
from repro.simnet.link import Link

if TYPE_CHECKING:
    import random

    from repro.simnet.cluster import Cluster


class Node:
    """One server in the cluster.

    Worker "threads" are simulated processes spawned on the node via
    :meth:`spawn`. CPU work is charged through :meth:`compute`, which scales
    by the node's CPU frequency factor — the mechanism used to model
    stragglers (paper Fig. 12).
    """

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.node_id = node_id
        self.name = f"node{node_id}"
        bandwidth = cluster.profile.link_bandwidth
        self.uplink = Link(f"{self.name}.up", bandwidth)
        self.downlink = Link(f"{self.name}.down", bandwidth)
        #: Event-kernel shard owning this node's lane (0 when unsharded).
        self._shard = cluster.shard_map[node_id]
        self._cpu_scale = cluster.profile.cpu_scale(node_id)
        self._processes: list[Process] = []
        self._backoff_rng: "random.Random | None" = None
        #: Set by the fault plane's fail-stop injection.
        self.crashed = False
        #: Per-node :class:`repro.obs.MetricsRegistry`, or ``None`` while
        #: observability is disabled (the hot-path guard: endpoints cache
        #: this at construction and skip all instrumentation on ``None``).
        self.metrics = None
        #: Cluster-wide :class:`repro.obs.CausalRecorder`, or ``None``
        #: unless ``enable_observability(causal=True)`` — same hot-path
        #: caching contract as ``metrics``.
        self.causal = None

    @property
    def cpu_scale(self) -> float:
        """CPU frequency factor (1.0 = nominal, 0.5 = half-speed straggler)."""
        return self._cpu_scale

    @property
    def backoff_rng(self) -> "random.Random":
        """The node's deterministic backoff stream: one stream per node
        (not per channel), mirroring a per-core PRNG — every channel and
        writer on the node draws from it in event order."""
        rng = self._backoff_rng
        if rng is None:
            rng = self._backoff_rng = derive_rng(
                self.cluster.seed, "node-backoff", self.node_id)
        return rng

    def compute(self, ns: float) -> Timeout:
        """Return a timeout charging ``ns`` of nominal CPU work, stretched
        by the node's frequency scale.

        The timeout is pool-recycled once it fires: yield it right away
        (as every call site does) rather than storing it."""
        return self.env.pooled_timeout(ns / self._cpu_scale)

    def spawn(self, generator: Generator[Event, Any, Any],
              name: str | None = None) -> Process:
        """Start a worker-thread process on this node.

        Spawned processes are tracked so a fail-stop crash of the node
        can kill them (processes started via ``env.process`` directly are
        not covered by crash injection)."""
        label = name or f"{self.name}.worker"
        env = self.env
        if env.shard_count > 1:
            # Home the worker's kick-off event on this node's shard lane
            # (spawn may be called from another shard's context, e.g. a
            # coordinator starting workers cluster-wide).
            env._post_shard = self._shard
            try:
                process = env.process(generator, name=label)
            finally:
                env._post_shard = -1
        else:
            process = env.process(generator, name=label)
        if self.crashed:
            process.kill()
            return process
        processes = self._processes
        if len(processes) > 32:
            self._processes = processes = [p for p in processes
                                           if p.is_alive]
        processes.append(process)
        return process

    def fail_stop(self) -> None:
        """Kill every live process spawned on this node (crash injection:
        called by the fault plane at the node's crash time)."""
        self.crashed = True
        processes, self._processes = self._processes, []
        for process in processes:
            process.kill()

    def __repr__(self) -> str:
        return f"<Node {self.name} cpu_scale={self._cpu_scale}>"
