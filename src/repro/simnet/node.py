"""Compute-node model: CPU cost accounting plus one full-duplex port."""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from repro.simnet.kernel import Event, Process, Timeout
from repro.simnet.link import Link

if TYPE_CHECKING:
    from repro.simnet.cluster import Cluster


class Node:
    """One server in the cluster.

    Worker "threads" are simulated processes spawned on the node via
    :meth:`spawn`. CPU work is charged through :meth:`compute`, which scales
    by the node's CPU frequency factor — the mechanism used to model
    stragglers (paper Fig. 12).
    """

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.node_id = node_id
        self.name = f"node{node_id}"
        bandwidth = cluster.profile.link_bandwidth
        self.uplink = Link(f"{self.name}.up", bandwidth)
        self.downlink = Link(f"{self.name}.down", bandwidth)
        self._cpu_scale = cluster.profile.cpu_scale(node_id)

    @property
    def cpu_scale(self) -> float:
        """CPU frequency factor (1.0 = nominal, 0.5 = half-speed straggler)."""
        return self._cpu_scale

    def compute(self, ns: float) -> Timeout:
        """Return a timeout charging ``ns`` of nominal CPU work, stretched
        by the node's frequency scale.

        The timeout is pool-recycled once it fires: yield it right away
        (as every call site does) rather than storing it."""
        return self.env.pooled_timeout(ns / self._cpu_scale)

    def spawn(self, generator: Generator[Event, Any, Any],
              name: str | None = None) -> Process:
        """Start a worker-thread process on this node."""
        label = name or f"{self.name}.worker"
        return self.env.process(generator, name=label)

    def __repr__(self) -> str:
        return f"<Node {self.name} cpu_scale={self._cpu_scale}>"
