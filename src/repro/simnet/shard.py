"""Sharded event kernel with conservative drain windows.

``ShardedEnvironment`` partitions a cluster's event population into
per-shard :class:`~repro.simnet.kernel.EventLane` queues (each a full
zero-delay-deque + calendar-ring scheduler) and advances one shard at a
time in *conservative batches*: the shard holding the globally earliest
event drains its lane until the runner-up shard's head key would be
overtaken. Cross-shard deliveries — all of which flow through
``Fabric.unicast`` / ``unicast_train`` / ``multicast`` — are posted into
the destination shard's lane (its inbound mailbox) carrying their global
``(time, sequence)`` key, so the merge across lanes reproduces the exact
event order of the single-queue kernel.

Why the merge stays *exact* rather than relaxed
-----------------------------------------------
Classic conservative PDES lets a shard run ahead of its peers by the
lookahead (here ``wire_latency``: every cross-node interaction pays at
least one wire crossing, so a peer at simulated time ``t`` cannot affect
this shard before ``t + wire_latency``). That bound is real in this
simulator too — but out-of-order execution *within* the safe window is
still observable, because cross-node effects are synchronous Python
calls, not messages:

* ``Fabric.unicast`` books the destination's downlink at send time and
  returns the exact arrival; under contention (every N:1 shuffle) the
  booking *order* decides queueing delays, so two shards sending into
  one downlink out of time order would shift simulated arrivals.
* ``unicast_train`` returns plain arrival floats that the doorbell-train
  hot path (PR 4/6) consumes immediately to chain completion timers.

Both are the foundation of the repo's determinism contract: same
topology + seed ⇒ bit-identical ``fingerprint.py`` metrics. The sharded
kernel therefore keeps the global ``(time, sequence)`` execution order —
making bit-identity hold *by construction for arbitrary node→shard
maps* — and uses the conservative structure where it is honestly free:

* batch draining amortizes the cross-lane merge (one argmin per round,
  not per event) and keeps each node group's cascades on its own shallow
  lane structures;
* the lookahead is tracked as *horizon accounting*: rounds cut short by
  a peer head within ``lookahead`` ns are counted as ``horizon_stalls``
  — the events a relaxed-order engine could have run early — so the
  cost of exactness is measurable, not hidden;
* truly independent shard groups (no cross-shard flows) escape the
  merge entirely through the multiprocess window executor
  (:mod:`repro.simnet.shardexec`), which is where the GIL-free win
  lives.

Shard assignment is pure attribution + locality: any event executes
identically whichever lane holds it, so ``REPRO_SHARDS`` and arbitrary
``shard_map``s are always safe.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ConfigurationError, SimulationError
from repro.simnet.kernel import (
    _TIMEOUT_POOL_CAP,
    Environment,
    Event,
    EventLane,
    Timeout,
)


def block_shard_map(node_count: int, shards: int) -> list[int]:
    """Contiguous block partition: node ``i`` goes to shard
    ``i * shards // node_count``. Keeps rack-style node ranges together,
    which is what flow placement helpers produce for 256-1024-node
    clusters."""
    if shards < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {shards}")
    return [node * shards // node_count for node in range(node_count)]


class ShardedEnvironment(Environment):
    """Event kernel with per-shard lanes and exact-order batch draining.

    Drop-in for :class:`Environment`: every event/process/timeout API is
    inherited; only the storage and the run loop change. ``lookahead``
    (the cluster's ``wire_latency``) feeds the horizon-stall accounting
    described in the module docstring.
    """

    __slots__ = ("_lanes", "_active_shard", "_post_shard", "_drain_limit",
                 "_drain_dirty", "lookahead", "mailbox_crossings",
                 "crossing_recorder")

    def __init__(self, shards: int, initial_time: float = 0.0,
                 lookahead: float = 0.0) -> None:
        if shards < 1:
            raise ConfigurationError(
                f"shard count must be >= 1, got {shards}")
        super().__init__(initial_time)
        self._lanes = [EventLane(initial_time) for _ in range(shards)]
        #: Shard whose event is currently executing; events scheduled
        #: from its callbacks land on its lane unless a delivery tag
        #: (:attr:`_post_shard`) redirects them.
        self._active_shard = 0
        #: One-shot delivery tag set by shard-aware call sites (fabric
        #: arrivals, node spawn, fault transitions): the next scheduled
        #: event goes to this lane instead of the active one. -1 = unset.
        self._post_shard = -1
        #: Runner-up head key bounding the current drain round (None
        #: outside rounds or when only one lane holds events).
        self._drain_limit: "tuple[float, int] | None" = None
        #: Set when a foreign-lane push undercuts the current round's
        #: limit — the round must re-merge before executing further.
        self._drain_dirty = False
        #: Conservative lookahead (ns) for horizon-stall accounting.
        self.lookahead = float(lookahead)
        #: Cross-shard deliveries posted through the fabric (unicast
        #: messages, train messages, multicast member deliveries).
        self.mailbox_crossings = 0
        #: ``repro.obs.CausalRecorder`` when causal observability is on:
        #: the fabric records ``shard_crossing`` context spans through it
        #: (set by ``Cluster.enable_observability(causal=True)``).
        self.crossing_recorder = None

    @property
    def shard_count(self) -> int:  # type: ignore[override]
        return len(self._lanes)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._sequence += 1
        seq = self._sequence
        shard = self._post_shard
        if shard < 0:
            shard = self._active_shard
        elif shard != self._active_shard:
            self._lanes[shard].mailbox_in += 1
        lane = self._lanes[shard]
        if delay == 0.0:
            when = self._now
            lane.immediate.append((when, seq, event))
        else:
            when = self._now + delay
            lane.push_timed(when, seq, event)
        if shard != self._active_shard and not self._drain_dirty:
            limit = self._drain_limit
            if limit is None or when < limit[0] or (when == limit[0]
                                                    and seq < limit[1]):
                self._drain_dirty = True

    def _schedule_abs(self, event: Event, when: float) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._sequence += 1
        seq = self._sequence
        shard = self._post_shard
        if shard < 0:
            shard = self._active_shard
        elif shard != self._active_shard:
            self._lanes[shard].mailbox_in += 1
        lane = self._lanes[shard]
        if when <= self._now:
            when = self._now
            lane.immediate.append((when, seq, event))
        else:
            lane.push_timed(when, seq, event)
        if shard != self._active_shard and not self._drain_dirty:
            limit = self._drain_limit
            if limit is None or when < limit[0] or (when == limit[0]
                                                    and seq < limit[1]):
                self._drain_dirty = True

    # -- merge ------------------------------------------------------------
    def _argmin(self):
        """``(lane_index, head_entry, runner_up_key)`` of the globally
        earliest pending event, or ``(None, None, None)`` when drained.
        ``runner_up_key`` is the earliest ``(time, seq)`` held by any
        *other* lane — the conservative bound for a drain round."""
        best = None
        best_head = None
        second: "tuple[float, int] | None" = None
        for index, lane in enumerate(self._lanes):
            head = lane.head()
            if head is None:
                continue
            if best_head is None or head[0] < best_head[0] or (
                    head[0] == best_head[0] and head[1] < best_head[1]):
                if best_head is not None:
                    second = (best_head[0], best_head[1])
                best = index
                best_head = head
            elif second is None or head[0] < second[0] or (
                    head[0] == second[0] and head[1] < second[1]):
                second = (head[0], head[1])
        return best, best_head, second

    def _pop_next(self) -> tuple[float, int, Event]:
        """Pop the globally next (time, sequence) event across all lanes
        (compatibility path for :meth:`Environment.step`; the batched run
        loop below inlines the same logic per round)."""
        best, _head, _second = self._argmin()
        if best is None:
            raise SimulationError("event queue is empty")
        self._active_shard = best
        return self._lanes[best].pop()

    def peek(self) -> float:
        """Time of the next pending event across all lanes (``inf`` when
        drained)."""
        _best, head, _second = self._argmin()
        return head[0] if head is not None else float("inf")

    def _pending(self) -> bool:
        return any(len(lane) for lane in self._lanes)

    # -- run loop ---------------------------------------------------------
    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation (same contract as :meth:`Environment.run`).

        The hot loop drains one shard per round: pick the lane holding
        the global minimum, bound the round by the runner-up lane's head
        key, and execute that lane's events back-to-back until the bound
        (or a foreign push undercutting it) forces a re-merge. Execution
        order — and therefore every simulated metric — is bit-identical
        to the single-queue kernel.
        """
        stop_event: "Event | None" = None
        stop_time: "float | None" = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until ({stop_time}) lies in the past (now={self._now})")
        lanes = self._lanes
        pool = self._timeout_pool
        lookahead = self.lookahead
        while True:
            best, head, limit = self._argmin()
            if best is None:
                break
            if stop_time is not None and head[0] > stop_time:
                self._now = stop_time
                return None
            lane = lanes[best]
            self._active_shard = best
            self._drain_limit = limit
            self._drain_dirty = False
            lane.rounds += 1
            drained = 0
            while True:
                if stop_event is not None and stop_event._processed:
                    lane.drained += drained
                    self.events_executed += drained
                    self._drain_limit = None
                    return stop_event.value
                when, _seq, event = lane.pop()
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                drained += 1
                for callback in callbacks:
                    callback(event)
                if event._exception is not None and not event._defused:
                    lane.drained += drained
                    self.events_executed += drained
                    self._drain_limit = None
                    raise event._exception
                if (type(event) is Timeout and event._poolable
                        and len(pool) < _TIMEOUT_POOL_CAP):
                    pool.append(event)
                if self._drain_dirty:
                    break
                head = lane.head()
                if head is None:
                    break
                if limit is not None and (head[0] > limit[0] or (
                        head[0] == limit[0] and head[1] > limit[1])):
                    # Horizon accounting: a relaxed-order engine could
                    # keep draining up to limit + lookahead; count the
                    # rounds where that freedom existed.
                    if head[0] < limit[0] + lookahead:
                        lane.stalls += 1
                    break
                if stop_time is not None and head[0] > stop_time:
                    break
            lane.drained += drained
            self.events_executed += drained
        self._drain_limit = None
        if stop_event is not None:
            if stop_event._processed:
                return stop_event.value
            raise SimulationError(
                "run() until an event, but the queue drained before the "
                "event triggered (deadlock?)")
        if stop_time is not None:
            self._now = stop_time
        return None

    # -- observability ----------------------------------------------------
    def shard_stats(self) -> dict:
        """Read-time snapshot of the sharded kernel's always-on tallies:
        per-lane events drained / drain rounds / horizon stalls / inbound
        mailbox posts, plus the global crossing count. Reading schedules
        nothing and draws nothing (the ``repro.obs`` contract)."""
        lanes = [lane.stats() for lane in self._lanes]
        return {
            "shards": len(self._lanes),
            "lookahead_ns": self.lookahead,
            "mailbox_crossings": self.mailbox_crossings,
            "events_drained": sum(lane["drained"] for lane in lanes),
            "drain_rounds": sum(lane["rounds"] for lane in lanes),
            "horizon_stalls": sum(lane["horizon_stalls"] for lane in lanes),
            "lanes": lanes,
        }
