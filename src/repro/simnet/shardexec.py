"""Multiprocess window executor for partition-parallel simulations.

:func:`run_partitioned` steps *independent* cluster partitions on worker
processes, advancing every partition in lockstep horizon windows with a
barrier between windows. This is where sharding buys real wall-clock
parallelism: the in-process :class:`~repro.simnet.shard.ShardedEnvironment`
must execute events in exact global order (see ``simnet/shard.py``) and is
therefore single-threaded by construction, but partitions that share *no*
traffic have no cross-shard order to preserve — each can run on its own
core, GIL-free.

Honesty note — where the win is and is not
------------------------------------------
Each partition is a **separate** :class:`~repro.simnet.cluster.Cluster`
built inside its worker process. Cross-partition flows are impossible, and
not merely unsupported: ``Fabric.unicast`` books the destination's
downlink *synchronously at send time* and ``unicast_train`` returns
arrival floats the sender consumes immediately, so a cross-partition
message would need the peer partition's mutable link state mid-window —
exactly the shared memory that separate processes do not have. The
horizon-barrier structure (windows of ``window`` ns, barrier at each
edge) is the classic conservative-PDES executor shape and is where a
mailbox exchange would slot in; for isolated partitions the mailboxes
are empty by construction and the barrier only enforces lockstep pacing.

Use it for what it is: scale-out scenarios made of independent node
groups (per-rack serving cells, parameter sweeps, chaos matrices — see
``repro.bench.parallel`` for the fan-out driver this generalizes). A
single cluster with cross-rack flows must stay on the in-process sharded
kernel. Workers are forked, so builders and collectors need not be
picklable — results must be.

Opt-in: nothing in the repo calls this implicitly; ``REPRO_SHARDS``
selects only the in-process kernel.
"""

from __future__ import annotations

import math
import os
from typing import Any, Callable, Sequence

from repro.common.errors import ConfigurationError, SimulationError

#: Per-window barrier timeout (s). Generous: a window that takes longer
#: than this in wall-clock almost certainly means a sibling worker died.
_BARRIER_TIMEOUT = 300.0


def _default_collect(cluster) -> dict:
    return cluster.metrics_snapshot()


def _drive(cluster, until: float, window: "float | None",
           barrier=None) -> None:
    """Advance ``cluster`` to ``until`` in lockstep windows.

    ``window=None`` runs the whole span as one window (maximum overlap;
    the right choice for isolated partitions). A finite ``window`` closes
    every partition's clock at the same horizon edges — the conservative
    execution schedule that a future mailbox exchange would require.
    """
    if window is None:
        windows = 1
    else:
        windows = max(1, math.ceil(until / window))
    edge = 0.0
    for index in range(windows):
        edge = until if index == windows - 1 else min(edge + window, until)
        cluster.run(until=edge)
        if barrier is not None:
            barrier.wait(_BARRIER_TIMEOUT)


def _worker(index: int, builder, until: float, window: "float | None",
            barrier, queue, collect) -> None:
    try:
        cluster = builder()
        _drive(cluster, until, window, barrier)
        queue.put((index, True, collect(cluster)))
    except BaseException as exc:  # surface in the parent, don't hang it
        if barrier is not None:
            barrier.abort()
        queue.put((index, False, repr(exc)))


def run_partitioned(builders: Sequence[Callable[[], Any]], *,
                    until: float, window: "float | None" = None,
                    processes: "int | None" = None,
                    collect: Callable[[Any], Any] = _default_collect
                    ) -> list:
    """Run one isolated cluster per ``builders`` entry to ``until`` and
    return ``[collect(cluster), ...]`` in partition order.

    ``builders[i]`` is called in worker ``i``'s process (serially in this
    process when ``processes=1`` or fork is unavailable) and must build a
    fresh, self-contained cluster — partitions exchange no traffic, which
    is precisely why they may run concurrently (module docstring). The
    serial and multiprocess paths drive identical window schedules, so
    their simulated results are bit-identical; ``tests/test_simnet_shard.py``
    asserts it.
    """
    if not builders:
        raise ConfigurationError("run_partitioned needs at least one builder")
    until = float(until)
    if until <= 0:
        raise ConfigurationError("run_partitioned needs until > 0")
    if window is not None and window <= 0:
        raise ConfigurationError("window must be positive (or None)")
    if processes is None:
        processes = min(len(builders), os.cpu_count() or 1)
    try:
        import multiprocessing
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = None
    if processes <= 1 or context is None:
        results = []
        for builder in builders:
            cluster = builder()
            _drive(cluster, until, window)
            results.append(collect(cluster))
        return results

    results: list = [None] * len(builders)
    queue = context.SimpleQueue()
    # Waves: at most ``processes`` partitions in flight; the horizon
    # barrier spans one wave (partitions in different waves are still
    # isolated, so cross-wave lockstep would add nothing).
    for start in range(0, len(builders), processes):
        wave = list(enumerate(builders))[start:start + processes]
        barrier = (context.Barrier(len(wave)) if window is not None
                   and len(wave) > 1 else None)
        workers = [context.Process(
            target=_worker,
            args=(index, builder, until, window, barrier, queue, collect),
            daemon=True) for index, builder in wave]
        for worker in workers:
            worker.start()
        failures = []
        for _ in wave:
            index, ok, payload = queue.get()
            if ok:
                results[index] = payload
            else:
                failures.append((index, payload))
        for worker in workers:
            worker.join()
        if failures:
            detail = "; ".join(f"partition {i}: {msg}"
                               for i, msg in sorted(failures))
            raise SimulationError(f"partitioned run failed — {detail}")
    return results
