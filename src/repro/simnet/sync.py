"""Synchronization primitives for simulated processes.

These mirror the classic SimPy resources but stay intentionally small:

* :class:`Store` — FIFO queue of items with optional capacity;
* :class:`Resource` — counted resource with FIFO acquire/release;
* :class:`Barrier` — reusable rendezvous for N parties;
* :class:`Signal` — broadcast event that many processes can wait on.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.common.errors import SimulationError
from repro.simnet.kernel import Environment, Event


class Store:
    """FIFO item queue: producers ``yield store.put(x)``, consumers
    ``item = yield store.get()``."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        """Snapshot of queued items (for inspection/testing)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Return an event that triggers once ``item`` is enqueued."""
        event = Event(self.env)
        if len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
            self._wake_getters()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putters()
        else:
            self._getters.append(event)
        return event

    def _wake_getters(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            getter.succeed(self._items.popleft())

    def _admit_putters(self) -> None:
        while self._putters and len(self._items) < self.capacity:
            putter, item = self._putters.popleft()
            self._items.append(item)
            putter.succeed()
        self._wake_getters()


class Resource:
    """Counted resource with FIFO semantics.

    Usage::

        yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes currently waiting to acquire."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that triggers when a slot is granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held slot, waking the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1


class Barrier:
    """Reusable barrier: the Nth arrival releases everyone, then resets."""

    def __init__(self, env: Environment, parties: int) -> None:
        if parties < 1:
            raise SimulationError("barrier needs at least one party")
        self.env = env
        self.parties = parties
        self._arrived = 0
        self._gate = Event(env)

    def wait(self) -> Event:
        """Return an event that triggers when all parties have arrived."""
        self._arrived += 1
        gate = self._gate
        if self._arrived == self.parties:
            self._arrived = 0
            self._gate = Event(self.env)
            gate.succeed()
        return gate


class Signal:
    """Broadcast flag: ``fire()`` wakes every current and future waiter."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._event = Event(env)
        self._fired = False
        self._value: Any = None

    @property
    def fired(self) -> bool:
        return self._fired

    def fire(self, value: Any = None) -> None:
        """Fire the signal; subsequent ``wait()`` calls complete instantly."""
        if self._fired:
            raise SimulationError("signal already fired")
        self._fired = True
        self._value = value
        self._event.succeed(value)

    def wait(self) -> Event:
        """Return an event that triggers once the signal has fired."""
        if self._fired:
            done = Event(self.env)
            done.succeed(self._value)
            return done
        return self._event
