"""Discrete-event network simulator: the substrate replacing the paper's
InfiniBand EDR testbed (see DESIGN.md Section 2)."""

from repro.simnet.cluster import Cluster
from repro.simnet.congestion import (
    CongestionConfig,
    CongestionPlane,
    stall_is_congestion,
)
from repro.simnet.fabric import Fabric
from repro.simnet.faults import (
    FaultPlan,
    FaultPlane,
    LinkDegrade,
    LinkDown,
    NodeCrash,
    Partition,
    link_degrade,
    link_down,
    node_crash,
    partition,
)
from repro.simnet.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    EventLane,
    Interrupt,
    Process,
    Timeout,
)
from repro.simnet.link import Link
from repro.simnet.node import Node
from repro.simnet.shard import ShardedEnvironment, block_shard_map
from repro.simnet.shardexec import run_partitioned
from repro.simnet.sync import Barrier, Resource, Signal, Store

__all__ = [
    "Environment",
    "EventLane",
    "ShardedEnvironment",
    "block_shard_map",
    "run_partitioned",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Link",
    "Node",
    "Fabric",
    "Cluster",
    "CongestionConfig",
    "CongestionPlane",
    "stall_is_congestion",
    "FaultPlan",
    "FaultPlane",
    "LinkDown",
    "NodeCrash",
    "Partition",
    "LinkDegrade",
    "link_down",
    "node_crash",
    "partition",
    "link_degrade",
    "Store",
    "Resource",
    "Barrier",
    "Signal",
]
