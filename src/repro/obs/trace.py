"""Per-flow event tracing with a Chrome ``trace_event`` exporter.

A :class:`FlowTracer` is a bounded ring of typed events, one per traced
flow. Channels emit events with explicit simulated timestamps
(``env.now``), so recording order equals simulated order and exporting a
trace is a pure serialization step — nothing about tracing touches the
kernel, which is how ``fingerprint.py --with-obs`` can demand a
bit-identical timeline with tracing on.

The exporter writes the Chrome ``trace_event`` JSON array format
(`ph: "i"` instant events with explicit ``ts`` microseconds, ``pid`` =
node id, ``tid`` = channel label) — load the file at ``chrome://tracing``
or https://ui.perfetto.dev. Fault *injections* are synthesized at export
time straight from the installed ``FaultPlan`` (Chrome events carry
their own timestamps, so events need not be emitted live); fault
*detections* are emitted live by the flow layer when a peer failure is
diagnosed.
"""

from __future__ import annotations

import json

# -- event taxonomy (see docs/observability.md) ------------------------------
SEG_WRITE = "SEG_WRITE"          #: source flushed a segment to the wire
SEG_CONSUME = "SEG_CONSUME"      #: target drained a consumable segment
FOOTER_POLL = "FOOTER_POLL"      #: writer polled a remote footer (window read)
PREREAD = "PREREAD"              #: pipelined footer pre-read hit or miss
CREDIT = "CREDIT"                #: credit refresh round-trip completed
BACKOFF = "BACKOFF"              #: ring-full backoff round slept
RETRANSMIT = "RETRANSMIT"        #: replicate source retransmitted a segment
REROUTE = "REROUTE"              #: shuffle source rerouted a failed target
FAULT_INJECT = "FAULT_INJECT"    #: fault plan entry fires (synthesized)
FAULT_DETECT = "FAULT_DETECT"    #: flow layer diagnosed a peer failure
FLOW_CLOSE = "FLOW_CLOSE"        #: endpoint closed or tore down
ECN_MARK = "ECN_MARK"            #: congestion plane marked a packet
RATE_CHANGE = "RATE_CHANGE"      #: DCQCN/UD rate limiter moved a rate

#: Default per-flow ring capacity (events kept; oldest overwritten).
DEFAULT_TRACE_CAPACITY = 65536


class FlowTracer:
    """Bounded per-flow trace ring.

    Holds the most recent ``capacity`` events; older events are
    overwritten in place (``dropped`` counts them). Events are
    ``(ts, kind, node_id, tid, detail)`` tuples with ``ts`` in simulated
    nanoseconds and ``detail`` a small dict or ``None``.
    """

    __slots__ = ("flow", "capacity", "_ring", "_next", "dropped")

    def __init__(self, flow: str,
                 capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self.flow = flow
        self.capacity = capacity
        self._ring: list = []
        self._next = 0
        self.dropped = 0

    def emit(self, ts: float, kind: str, node_id: int, tid: str,
             detail: "dict | None" = None) -> None:
        """Record one event (O(1); overwrites the oldest when full)."""
        record = (ts, kind, node_id, tid, detail)
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(record)
        else:
            ring[self._next % self.capacity] = record
            self.dropped += 1
        self._next += 1

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (kept + dropped)."""
        return self._next

    def events(self) -> list:
        """Events in emission (= simulated-time) order."""
        ring = self._ring
        if len(ring) < self.capacity:
            return list(ring)
        head = self._next % self.capacity
        return ring[head:] + ring[:head]

    def __repr__(self) -> str:
        return (f"<FlowTracer {self.flow!r} kept={len(self._ring)} "
                f"dropped={self.dropped}>")


def _fault_plan_events(cluster) -> list[dict]:
    """Synthesize Chrome instant events for every installed fault entry
    at its *planned* simulated time (injection is part of the immutable
    plan, so the trace can state it exactly without live emission)."""
    plane = getattr(cluster, "faults", None)
    if plane is None or not plane.plan.entries:
        return []
    from repro.simnet.faults import (
        LinkDegrade,
        LinkDown,
        NodeCrash,
        Partition,
    )
    events = []

    def instant(at, pid, detail):
        events.append({
            "name": FAULT_INJECT, "cat": "faults", "ph": "i", "s": "g",
            "ts": at / 1000.0, "pid": pid, "tid": "faults",
            "args": detail,
        })

    for entry in plane.plan.entries:
        if isinstance(entry, NodeCrash):
            instant(entry.at, entry.node,
                    {"kind": "node_crash", "at_ns": entry.at})
        elif isinstance(entry, LinkDown):
            detail = {"kind": "link_down", "at_ns": entry.at,
                      "peer": entry.b, "duration_ns": entry.duration}
            instant(entry.at, entry.a, detail)
        elif isinstance(entry, LinkDegrade):
            instant(entry.at, entry.node,
                    {"kind": "link_degrade", "at_ns": entry.at,
                     "duration_ns": entry.duration,
                     "factor": entry.factor})
        elif isinstance(entry, Partition):
            groups = [sorted(group) for group in entry.groups]
            instant(entry.at, groups[0][0],
                    {"kind": "partition", "at_ns": entry.at,
                     "heal_at_ns": entry.heal_at, "groups": groups})
    return events


def _flow_arrow_events(plane) -> list[dict]:
    """Perfetto flow arrows (``ph:"s"/"f"``) binding cause -> effect
    across pids: one arrow per cross-node step of each closed flow's
    critical path. Pure post-processing of the causal export."""
    recorder = plane.causal
    if recorder is None or not recorder.closes:
        return []
    from repro.obs.causal import critical_path
    events: list[dict] = []
    arrow_id = 0
    all_edges = recorder.edges()
    for flow in sorted(recorder.closes):
        t_close = max(t for t, _node in recorder.closes[flow])
        t_open = recorder.opens.get(flow, 0.0)
        edges = [edge for edge in all_edges
                 if edge[6] is None or edge[6] == flow]
        for step in critical_path(edges, t_close, t_open):
            if step["src_node"] == step["node"]:
                continue
            arrow_id += 1
            common = {"name": "critical_path", "cat": flow,
                      "id": arrow_id, "tid": step["tid"]}
            events.append({**common, "ph": "s",
                           "ts": step["start"] / 1000.0,
                           "pid": step["src_node"]})
            events.append({**common, "ph": "f", "bp": "e",
                           "ts": step["end"] / 1000.0,
                           "pid": step["node"]})
    return events


def chrome_trace(cluster) -> dict:
    """Build the Chrome ``trace_event`` document for a cluster's traced
    flows (plus synthesized fault-injection events). Returns the JSON
    object; use :func:`export_chrome_trace` to write it to disk.

    Beyond ``traceEvents`` the document carries two repro-specific
    top-level keys (Perfetto ignores unknown keys): ``"reproObs"`` with
    per-ring kept/dropped stats and ``"reproCausal"`` with the causal
    edge export when ``enable_observability(causal=True)`` was on —
    which is what lets ``python -m repro.obs.analyze`` work offline from
    the trace file alone. Cross-node critical-path steps additionally
    become ``ph:"s"/"f"`` flow arrows."""
    trace_events: list[dict] = []
    plane = getattr(cluster, "obs", None)
    tracers = plane.tracers.values() if plane is not None else ()
    named_pids = set()
    ring_stats: dict[str, dict] = {}
    for tracer in tracers:
        for ts, kind, node_id, tid, detail in tracer.events():
            event = {
                "name": kind, "cat": tracer.flow, "ph": "i", "s": "t",
                "ts": ts / 1000.0, "pid": node_id, "tid": tid,
            }
            if detail:
                event["args"] = detail
            trace_events.append(event)
            named_pids.add(node_id)
        ring_stats[tracer.flow] = {
            "kept": len(tracer), "dropped": tracer.dropped,
            "emitted": tracer.emitted, "capacity": tracer.capacity,
        }
    fault_events = _fault_plan_events(cluster)
    for event in fault_events:
        named_pids.add(event["pid"])
    trace_events.extend(fault_events)
    if plane is not None:
        trace_events.extend(_flow_arrow_events(plane))
    metadata = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": "meta",
         "args": {"name": f"node{pid}"}}
        for pid in sorted(named_pids)
    ]
    metadata.extend(
        {"name": "trace_ring", "ph": "M", "pid": 0, "tid": flow,
         "args": dict(stats, flow=flow)}
        for flow, stats in sorted(ring_stats.items())
    )
    document = {"traceEvents": metadata + trace_events,
                "displayTimeUnit": "ns",
                "reproObs": {"rings": ring_stats}}
    if plane is not None and plane.causal is not None:
        document["reproCausal"] = plane.causal.export()
    return document


def export_chrome_trace(cluster, path: str) -> dict:
    """Write the cluster's trace to ``path`` (Perfetto-loadable JSON);
    returns the document that was written."""
    document = chrome_trace(cluster)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=1)
    return document
