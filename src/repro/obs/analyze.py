"""Offline blame analyzer: ``python -m repro.obs.analyze <trace.json>``.

Consumes a Chrome trace exported by ``repro.obs.trace.export_chrome_trace``
from a run with ``enable_observability(causal=True, trace=True)`` — the
exporter embeds the causal-edge export under the ``"reproCausal"`` key
(Perfetto ignores unknown top-level keys) and per-ring drop stats under
``"reproObs"``. Prints the blame table plus top-5 straggler report, or
the canonical blame JSON with ``--json``.

Exit codes: 0 on success, 2 on a malformed or causal-less trace — CI's
obs-smoke job runs this against the chaos trace artifact as a hard gate.
"""

from __future__ import annotations

import argparse
import json
import sys

from .causal import CausalError, blame_json, flow_report, render_blame
from .causal import validate_export


def _ring_dropped(document: dict) -> dict:
    stats = document.get("reproObs", {}).get("rings", {})
    out = {}
    for flow, ring in stats.items():
        try:
            out[flow] = int(ring.get("dropped", 0))
        except (AttributeError, TypeError, ValueError):
            raise CausalError(f"malformed ring stats for flow {flow!r}")
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.analyze",
        description="Critical-path blame report from an exported trace.")
    parser.add_argument("trace", help="Chrome trace JSON exported with "
                                      "causal recording enabled")
    parser.add_argument("--flow", default=None,
                        help="flow to analyze (default: last to close)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the canonical blame JSON instead of "
                             "the table")
    args = parser.parse_args(argv)

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read trace: {error}", file=sys.stderr)
        return 2

    causal = document.get("reproCausal")
    if causal is None:
        print("error: trace has no 'reproCausal' section — export it "
              "from a run with enable_observability(causal=True)",
              file=sys.stderr)
        return 2
    try:
        validate_export(causal)
        report = flow_report(causal, flow=args.flow,
                             ring_dropped=_ring_dropped(document))
    except CausalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.as_json:
        print(blame_json(report))
    else:
        print(render_blame(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
