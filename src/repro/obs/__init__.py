"""``repro.obs`` — the observability plane: counters, sim-time
histograms and per-flow event tracing across simnet/rdma/core.

Usage::

    cluster = Cluster(node_count=4)
    cluster.enable_observability()          # before opening endpoints
    ... run the flow ...
    print(render_report(cluster.metrics_snapshot()))
    export_chrome_trace(cluster, "run.trace.json")   # if tracing was on

Determinism contract (see ``docs/observability.md``): enabling the plane
schedules zero kernel events and draws from zero RNG streams — it only
reads ``env.now`` and mutates Python-side tallies — so the simulated
timeline of any run is bit-identical with observability on or off
(``benchmarks/perf/fingerprint.py --with-obs`` asserts this for all 15
fingerprint scenarios). Hot paths pay one attribute check when the plane
is off: endpoints cache ``node.metrics`` (default ``None``) at
construction, which is also why the plane must be enabled *before*
opening flow endpoints or creating queue pairs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.causal import (
    BLAME_CATEGORIES,
    DEFAULT_EDGE_CAPACITY,
    CausalError,
    CausalRecorder,
    analyze_cluster,
    blame_json,
    critical_path,
    flow_report,
    render_blame,
)
from repro.obs.metrics import Histogram, MetricsRegistry, render_report
from repro.obs.trace import (
    BACKOFF,
    CREDIT,
    DEFAULT_TRACE_CAPACITY,
    ECN_MARK,
    FAULT_DETECT,
    FAULT_INJECT,
    FLOW_CLOSE,
    FOOTER_POLL,
    PREREAD,
    RATE_CHANGE,
    REROUTE,
    RETRANSMIT,
    SEG_CONSUME,
    SEG_WRITE,
    FlowTracer,
    chrome_trace,
    export_chrome_trace,
)

if TYPE_CHECKING:
    from repro.simnet.cluster import Cluster


class ObsPlane:
    """Observability state for one cluster: per-node registries, per-flow
    trace rings, and the in-flight segment-latency stamp table."""

    __slots__ = ("cluster", "registries", "tracers", "trace_all",
                 "trace_capacity", "pending_segments", "causal")

    def __init__(self, cluster: "Cluster", trace: bool = False,
                 trace_capacity: int = DEFAULT_TRACE_CAPACITY,
                 causal: bool = False) -> None:
        self.cluster = cluster
        #: Trace every flow, regardless of its ``FlowOptions.trace`` knob
        #: (harness mode — what ``fingerprint.py --with-obs`` uses).
        self.trace_all = bool(trace)
        self.trace_capacity = trace_capacity
        #: Causal-edge recorder (``None`` unless ``causal=True``) — hot
        #: paths cache it like ``node.metrics``; see ``repro.obs.causal``.
        self.causal = CausalRecorder(cluster.env) if causal else None
        self.registries: dict[int, MetricsRegistry] = {}
        self.tracers: dict[str, FlowTracer] = {}
        #: Segment write->consume latency stamps, keyed by
        #: ``(target_node_id, rkey, seq)``: the source stamps at flush
        #: time, the target pops in its drain and records the delta.
        self.pending_segments: dict[tuple, float] = {}

    def registry(self, node_id: int) -> MetricsRegistry:
        """Get (or create) the registry of ``node_id``."""
        registry = self.registries.get(node_id)
        if registry is None:
            registry = self.registries[node_id] = MetricsRegistry(node_id)
        return registry

    def tracer(self, flow: str, requested) -> "FlowTracer | None":
        """Resolve the tracer for ``flow``: ``requested`` is the flow's
        ``FlowOptions.trace`` value (``None``/``False`` off, ``True`` on
        at the plane capacity, an ``int`` on with that capacity). The
        plane's ``trace_all`` overrides an un-requested flow."""
        if not requested and not self.trace_all:
            return None
        tracer = self.tracers.get(flow)
        if tracer is None:
            capacity = (requested if isinstance(requested, int)
                        and not isinstance(requested, bool) and requested > 0
                        else self.trace_capacity)
            tracer = self.tracers[flow] = FlowTracer(flow, capacity)
        return tracer

    def snapshot(self) -> dict:
        """Per-node registry snapshots (the ``"nodes"`` section of
        ``Cluster.metrics_snapshot()``)."""
        return {node_id: registry.snapshot()
                for node_id, registry in sorted(self.registries.items())}


def endpoint_obs(node, flow: str, options) -> tuple:
    """Resolve ``(metrics, tracer)`` for a flow endpoint opening on
    ``node``. Returns ``(None, None)`` when observability is off; a
    ``FlowOptions(trace=...)`` request auto-enables the plane so opt-in
    tracing works without a separate ``enable_observability()`` call."""
    cluster = node.cluster
    plane = cluster.obs
    requested = getattr(options, "trace", None) if options is not None \
        else None
    if plane is None:
        if not requested:
            return None, None
        plane = cluster.enable_observability()
    return node.metrics, plane.tracer(flow, requested)


# -- default-observability hook (fingerprint --with-obs) ---------------------
#: When enabled, every newly built Cluster turns observability on in its
#: constructor — lets the fingerprint harness prove counters+tracing cause
#: zero timeline drift even for clusters built deep inside bench helpers.
_default_enabled = False
_default_trace = False
_default_causal = False

def set_default_observability(enabled: bool, trace: bool = False,
                              causal: bool = False) -> None:
    """Enable (or clear) observability on every cluster created from now
    on. Intended for harnesses, not applications."""
    global _default_enabled, _default_trace, _default_causal
    _default_enabled = bool(enabled)
    _default_trace = bool(trace)
    _default_causal = bool(causal)


def _install_default(cluster: "Cluster") -> None:
    if _default_enabled:
        cluster.enable_observability(trace=_default_trace,
                                     causal=_default_causal)


__all__ = [
    "ObsPlane",
    "MetricsRegistry",
    "Histogram",
    "FlowTracer",
    "CausalRecorder",
    "CausalError",
    "analyze_cluster",
    "blame_json",
    "critical_path",
    "flow_report",
    "render_blame",
    "BLAME_CATEGORIES",
    "DEFAULT_EDGE_CAPACITY",
    "render_report",
    "chrome_trace",
    "export_chrome_trace",
    "endpoint_obs",
    "set_default_observability",
    "DEFAULT_TRACE_CAPACITY",
    "SEG_WRITE", "SEG_CONSUME", "FOOTER_POLL", "PREREAD", "CREDIT",
    "BACKOFF", "RETRANSMIT", "REROUTE", "FAULT_INJECT", "FAULT_DETECT",
    "FLOW_CLOSE", "ECN_MARK", "RATE_CHANGE",
]
