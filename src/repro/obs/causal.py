"""Causal edges and the offline critical-path engine (``repro.obs``).

When ``cluster.enable_observability(causal=True)`` is on, every layer
that makes a flow wait records a **causal edge** — a
``(t_child, t_parent, category, node, src_node, tid, flow)`` tuple
meaning "the event at ``t_child`` could not have happened before
``t_parent`` because of ``category``". Edges land in per-node bounded
logs (oldest overwritten, ``dropped`` counted) and obey the plane's
determinism contract verbatim: recording reads ``env.now``, schedules
zero kernel events and draws zero RNG, so the simulated timeline is
bit-identical with causal recording on or off
(``fingerprint.py --with-obs`` asserts it for all 15 scenarios).

The engine in this module is pure offline analysis. Starting from a
flow's close marker it walks edges **backward**: at cursor ``t`` it
picks the edge with the largest ``t_child <= t`` (deterministic
tie-break below), charges the gap ``t_child .. t`` to ``cpu``, charges
the edge's span to its category, and jumps to ``t_parent``. Because
every recorded edge has ``t_parent < t_child`` the cursor strictly
decreases, so the walk terminates with an **exact decomposition** of
``[t_open, t_close]`` into the eight blame categories.

Tie-break (same ``t_child``): smaller ``t_parent`` first (explains more
time), then category priority (wire, nic_arb, fault_backoff,
congestion_holdoff, ecn_pacing, credit_stall), then smaller node id,
then recording order. Every key is a pure function of the simulated
run, so the critical path — and the blame JSON — is byte-identical
across reruns and across ``REPRO_SHARDS`` values.

Two record kinds are *context*, never walked:

- ``seg`` spans (segment write -> consume) feed the per-target slack
  ranking; walking them would mask the finer per-WQE edges inside.
- ``shard_crossing`` spans exist only on sharded kernels. Attributing
  them would make blame depend on the shard map, breaking the
  shard-count invariance the determinism tests pin; the analyzer
  reports crossing counts separately instead, and the blame category
  is structurally 0.0.
"""

from __future__ import annotations

import json
from bisect import bisect_right

# -- edge categories (see docs/observability.md, "Critical path & blame") ----
WIRE = "wire"                            #: link HOL + serialization + flight + ack
NIC_ARB = "nic_arb"                      #: NIC engine arbitration + processing
CPU = "cpu"                              #: walk residual: compute/poll gaps
CREDIT_STALL = "credit_stall"            #: credit waits, ring-full polls/backoffs
CONGESTION_HOLDOFF = "congestion_holdoff"  #: PFC hold-off at a bounded egress queue
ECN_PACING = "ecn_pacing"                #: DCQCN/UD rate-limiter pacing delay
FAULT_BACKOFF = "fault_backoff"          #: outage heal waits, detection-bound flushes
SHARD_CROSSING = "shard_crossing"        #: lane-crossing hop (context, never walked)
SEG_SPAN = "seg"                         #: segment write->consume (context)

#: Every key present in a blame breakdown, in render order.
BLAME_CATEGORIES = (WIRE, NIC_ARB, CPU, CREDIT_STALL, CONGESTION_HOLDOFF,
                    ECN_PACING, FAULT_BACKOFF, SHARD_CROSSING)

#: Categories the backward walk may traverse.
WALK_CATEGORIES = frozenset((WIRE, NIC_ARB, CREDIT_STALL,
                             CONGESTION_HOLDOFF, ECN_PACING, FAULT_BACKOFF))

#: Tie-break order for edges sharing ``(t_child, t_parent)``.
_PRIORITY = {WIRE: 0, NIC_ARB: 1, FAULT_BACKOFF: 2, CONGESTION_HOLDOFF: 3,
             ECN_PACING: 4, CREDIT_STALL: 5}

#: Default per-node edge-log capacity (records kept; oldest overwritten).
DEFAULT_EDGE_CAPACITY = 65536

_KNOWN_CATEGORIES = frozenset(BLAME_CATEGORIES) | {SEG_SPAN}


class CausalError(ValueError):
    """Malformed causal section or unanalyzable flow."""


class _EdgeLog:
    """Bounded per-node edge ring (mirrors ``FlowTracer``)."""

    __slots__ = ("capacity", "ring", "next")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.ring: list = []
        self.next = 0

    def append(self, record: tuple) -> None:
        ring = self.ring
        if len(ring) < self.capacity:
            ring.append(record)
        else:
            ring[self.next % self.capacity] = record
        self.next += 1

    @property
    def dropped(self) -> int:
        return max(0, self.next - len(self.ring))

    def records(self) -> list:
        """Records in recording (= simulated-time) order."""
        ring = self.ring
        if len(ring) < self.capacity:
            return list(ring)
        head = self.next % self.capacity
        return ring[head:] + ring[:head]


class CausalRecorder:
    """Per-cluster causal-edge store (``cluster.obs.causal``).

    Hot paths cache this object like ``node.metrics`` (one ``is None``
    check when the plane is off) and call :meth:`edge` with explicit
    simulated timestamps, so recording order equals simulated order and
    per-node logs are bit-identical across shard counts.
    """

    __slots__ = ("env", "capacity", "logs", "closes", "opens")

    def __init__(self, env, capacity: int = DEFAULT_EDGE_CAPACITY) -> None:
        self.env = env
        self.capacity = capacity
        self.logs: dict[int, _EdgeLog] = {}
        #: ``flow -> [(t, node_id), ...]`` close markers, in event order.
        self.closes: dict[str, list] = {}
        #: ``flow -> earliest endpoint-open time`` (the walk's floor).
        self.opens: dict[str, float] = {}

    # -- recording --------------------------------------------------------
    def edge(self, t_child: float, t_parent: float, category: str,
             node_id: int, tid: str, flow: "str | None" = None,
             src_node_id: "int | None" = None) -> None:
        """Record one edge. Zero/negative spans are skipped — they carry
        no blame and would stall the backward walk."""
        if t_child <= t_parent:
            return
        log = self.logs.get(node_id)
        if log is None:
            log = self.logs[node_id] = _EdgeLog(self.capacity)
        log.append((t_child, t_parent, category, node_id,
                    node_id if src_node_id is None else src_node_id,
                    tid, flow))

    def sleep_edge(self, delay: float, category: str, node_id: int,
                   tid: str, flow: "str | None" = None) -> None:
        """Record an edge for a sleep of known duration starting now."""
        now = self.env.now
        self.edge(now + delay, now, category, node_id, tid, flow)

    def open(self, flow: str, node_id: int) -> None:
        """Stamp a flow endpoint opening (keeps the earliest time)."""
        now = self.env.now
        previous = self.opens.get(flow)
        if previous is None or now < previous:
            self.opens[flow] = now

    def close(self, flow: str, node_id: int) -> None:
        """Stamp a flow close marker (source close posted / target
        drained the close footer). The walk starts from the latest."""
        self.closes.setdefault(flow, []).append((self.env.now, node_id))

    # -- reading ----------------------------------------------------------
    def edges(self) -> list:
        """Every recorded edge, ordered by ``(node_id, record order)``."""
        out: list = []
        for node_id in sorted(self.logs):
            out.extend(self.logs[node_id].records())
        return out

    def dropped(self) -> dict[int, int]:
        """Per-node dropped-edge counts (only nodes that dropped)."""
        return {node_id: log.dropped
                for node_id, log in sorted(self.logs.items())
                if log.dropped}

    def export(self) -> dict:
        """JSON-safe dict: what ``chrome_trace`` embeds as
        ``"reproCausal"`` and ``python -m repro.obs.analyze`` consumes."""
        return {
            "edges": [list(record) for record in self.edges()],
            "closes": {flow: [[t, node] for t, node in marks]
                       for flow, marks in sorted(self.closes.items())},
            "opens": dict(sorted(self.opens.items())),
            "dropped": {str(node): count
                        for node, count in self.dropped().items()},
            "capacity": self.capacity,
        }


# -- validation (the CI hard gate) -------------------------------------------
def validate_export(export: dict) -> None:
    """Raise :class:`CausalError` if ``export`` is malformed: wrong edge
    arity or types, unknown category, or a non-positive span."""
    if not isinstance(export, dict):
        raise CausalError("causal section must be an object")
    edges = export.get("edges")
    if not isinstance(edges, list):
        raise CausalError("causal section has no edge list")
    for index, edge in enumerate(edges):
        if not isinstance(edge, (list, tuple)) or len(edge) != 7:
            raise CausalError(f"edge {index}: expected 7 fields, got "
                              f"{edge!r}")
        t_child, t_parent, category, node, src_node, tid, flow = edge
        if not isinstance(t_child, (int, float)) \
                or not isinstance(t_parent, (int, float)):
            raise CausalError(f"edge {index}: non-numeric timestamps")
        if t_child <= t_parent:
            raise CausalError(
                f"edge {index}: non-positive span "
                f"(t_child={t_child} <= t_parent={t_parent})")
        if category not in _KNOWN_CATEGORIES:
            raise CausalError(f"edge {index}: unknown category "
                              f"{category!r}")
        if not isinstance(node, int) or not isinstance(src_node, int):
            raise CausalError(f"edge {index}: node ids must be ints")
        if not isinstance(tid, str):
            raise CausalError(f"edge {index}: tid must be a string")
        if flow is not None and not isinstance(flow, str):
            raise CausalError(f"edge {index}: flow must be a string or "
                              f"null")
    closes = export.get("closes")
    if not isinstance(closes, dict):
        raise CausalError("causal section has no close-marker map")
    for flow, marks in closes.items():
        for mark in marks:
            if not isinstance(mark, (list, tuple)) or len(mark) != 2:
                raise CausalError(f"close marker of {flow!r} malformed: "
                                  f"{mark!r}")


# -- the backward walk --------------------------------------------------------
def critical_path(edges, t_close: float, t_open: float = 0.0) -> list:
    """Exact critical path of ``[t_open, t_close]``: a chronological list
    of ``{"category", "start", "end", "node", "src_node", "tid"}`` steps
    covering the interval with no overlap (gaps are ``cpu`` steps)."""
    walkable = []
    for index, edge in enumerate(edges):
        t_child, t_parent, category = edge[0], edge[1], edge[2]
        if category not in WALK_CATEGORIES:
            continue
        if t_child <= t_open or t_child > t_close:
            continue
        node = edge[3]
        # Sort key: larger t_child wins; ties prefer the edge explaining
        # more time, then category priority, then node id, then order.
        walkable.append((t_child, -t_parent, -_PRIORITY[category],
                         -node, -index, edge))
    walkable.sort()
    t_childs = [entry[0] for entry in walkable]
    steps: list = []
    cursor = t_close
    last_node = -1
    position = bisect_right(t_childs, cursor)
    while cursor > t_open and position > 0:
        edge = walkable[position - 1][5]
        t_child, t_parent, category, node, src_node, tid, _flow = edge
        if t_child <= t_open:
            break
        if t_child < cursor:
            steps.append({"category": CPU, "start": t_child, "end": cursor,
                          "node": node if last_node < 0 else last_node,
                          "src_node": node, "tid": tid})
        start = t_parent if t_parent > t_open else t_open
        steps.append({"category": category, "start": start, "end": t_child,
                      "node": node, "src_node": src_node, "tid": tid})
        last_node = src_node
        cursor = start
        position = bisect_right(t_childs, cursor)
    if cursor > t_open:
        steps.append({"category": CPU, "start": t_open, "end": cursor,
                      "node": last_node if last_node >= 0 else 0,
                      "src_node": last_node if last_node >= 0 else 0,
                      "tid": "open"})
    steps.reverse()
    return steps


def blame_breakdown(steps) -> dict:
    """Sum the critical-path steps per category (all eight keys present;
    ``shard_crossing`` is structurally 0.0 — see the module docstring)."""
    blame = {category: 0.0 for category in BLAME_CATEGORIES}
    for step in steps:
        blame[step["category"]] += step["end"] - step["start"]
    return blame


def _seg_spans(edges, flow: str) -> list:
    return [edge for edge in edges
            if edge[2] == SEG_SPAN and edge[6] == flow]


def straggler_ranking(edges, flow: str, t_close: float) -> list:
    """Per-target slack ranking from the flow's segment spans: for each
    consuming node, its last consume time and the slack to flow close.
    The straggler — the target that finished last — sorts first
    (tie-break: smaller node id)."""
    per_node: dict[int, dict] = {}
    for t_child, t_parent, _cat, node, _src, _tid, _flow in \
            _seg_spans(edges, flow):
        entry = per_node.get(node)
        if entry is None:
            entry = per_node[node] = {
                "node": node, "segments": 0, "span_ns": 0.0,
                "last_finish_ns": 0.0}
        entry["segments"] += 1
        entry["span_ns"] += t_child - t_parent
        if t_child > entry["last_finish_ns"]:
            entry["last_finish_ns"] = t_child
    ranking = []
    for node in sorted(per_node):
        entry = per_node[node]
        entry["slack_ns"] = t_close - entry["last_finish_ns"]
        ranking.append(entry)
    ranking.sort(key=lambda entry: (entry["slack_ns"], entry["node"]))
    return ranking


def hot_targets(edges) -> list:
    """Nodes ranked by total congestion hold-off charged against their
    downlink (largest first; tie-break: smaller node id)."""
    per_node: dict[int, float] = {}
    for t_child, t_parent, category, node, _src, _tid, _flow in edges:
        if category == CONGESTION_HOLDOFF:
            per_node[node] = per_node.get(node, 0.0) + (t_child - t_parent)
    ranking = [{"node": node, "holdoff_ns": total}
               for node, total in sorted(per_node.items())]
    ranking.sort(key=lambda entry: (-entry["holdoff_ns"], entry["node"]))
    return ranking


def shard_crossing_stats(edges) -> dict:
    """Context stats for lane crossings (kept out of the blame JSON —
    they exist only on sharded kernels)."""
    count = 0
    total = 0.0
    for t_child, t_parent, category, _node, _src, _tid, _flow in edges:
        if category == SHARD_CROSSING:
            count += 1
            total += t_child - t_parent
    return {"count": count, "span_ns": total}


# -- flow reports -------------------------------------------------------------
def flows(export: dict) -> list:
    """Flows with at least one close marker, sorted by name."""
    return sorted(export.get("closes", {}))


def default_flow(export: dict) -> str:
    """The flow that closed last (tie-break: smaller name)."""
    closes = export.get("closes", {})
    if not closes:
        raise CausalError("no FLOW_CLOSE markers recorded — did the flow "
                          "run with enable_observability(causal=True)?")
    best = None
    for flow in sorted(closes):
        t_close = max(t for t, _node in closes[flow])
        if best is None or t_close > best[0]:
            best = (t_close, flow)
    return best[1]


def flow_report(export: dict, flow: "str | None" = None,
                ring_dropped: "dict | None" = None) -> dict:
    """Blame report for one flow from a causal export.

    ``ring_dropped`` optionally maps flow name -> dropped trace-ring
    event count (from ``chrome_trace`` metadata) so the report can warn
    when the analyzed flow's trace ring truncated.
    """
    if flow is None:
        flow = default_flow(export)
    closes = export.get("closes", {})
    if flow not in closes:
        raise CausalError(f"flow {flow!r} recorded no close marker "
                          f"(known flows: {flows(export)})")
    t_close = max(t for t, _node in closes[flow])
    t_open = export.get("opens", {}).get(flow, 0.0)
    edges = [tuple(edge) for edge in export.get("edges", ())
             if edge[6] is None or edge[6] == flow]
    steps = critical_path(edges, t_close, t_open)
    blame = blame_breakdown(steps)
    warnings = []
    dropped = export.get("dropped", {})
    if dropped:
        path_nodes = sorted({step["node"] for step in steps})
        truncated = [node for node in path_nodes
                     if dropped.get(str(node), 0) or dropped.get(node, 0)]
        if truncated:
            warnings.append(
                f"critical path crosses truncated edge logs on nodes "
                f"{truncated} — oldest edges were overwritten; "
                f"early-path blame may be understated")
    if ring_dropped:
        lost = ring_dropped.get(flow, 0)
        if lost:
            warnings.append(
                f"trace ring of flow {flow!r} dropped {lost} events — "
                f"raise trace_capacity for a complete event timeline")
    return {
        "flow": flow,
        "t_open_ns": t_open,
        "t_close_ns": t_close,
        "total_ns": t_close - t_open,
        "blame": blame,
        "path_steps": len(steps),
        "stragglers": straggler_ranking(edges, flow, t_close),
        "hot_targets": hot_targets(edges),
        "warnings": warnings,
    }


def blame_json(report: dict) -> str:
    """Canonical JSON for a flow report — byte-identical across reruns
    and across ``REPRO_SHARDS`` values for the same seed (the
    determinism tests compare this string)."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def analyze_cluster(cluster, flow: "str | None" = None) -> dict:
    """In-process :func:`flow_report` for a cluster whose observability
    plane ran with ``causal=True``."""
    plane = getattr(cluster, "obs", None)
    recorder = plane.causal if plane is not None else None
    if recorder is None:
        raise CausalError(
            "causal recording is off — call "
            "cluster.enable_observability(causal=True) before the run")
    ring_dropped = {tracer.flow: tracer.dropped
                    for tracer in plane.tracers.values()}
    return flow_report(recorder.export(), flow, ring_dropped=ring_dropped)


def render_blame(report: dict) -> str:
    """Human-readable blame table + top-5 straggler report."""
    lines = [f"=== critical path: flow {report['flow']!r} ===",
             f"window: {report['t_open_ns']:.1f} .. "
             f"{report['t_close_ns']:.1f} ns "
             f"(total {report['total_ns']:.1f} ns, "
             f"{report['path_steps']} steps)"]
    total = report["total_ns"] or 1.0
    lines.append(f"{'category':<20} {'ns':>16} {'share':>8}")
    for category in BLAME_CATEGORIES:
        value = report["blame"][category]
        lines.append(f"{category:<20} {value:>16.1f} "
                     f"{100.0 * value / total:>7.1f}%")
    stragglers = report["stragglers"][:5]
    if stragglers:
        lines.append("top targets by slack (straggler first):")
        for entry in stragglers:
            lines.append(
                f"  node{entry['node']}: last_finish="
                f"{entry['last_finish_ns']:.1f}ns "
                f"slack={entry['slack_ns']:.1f}ns "
                f"segments={entry['segments']}")
    hot = report["hot_targets"][:5]
    if hot:
        lines.append("hot targets by congestion hold-off:")
        for entry in hot:
            lines.append(f"  node{entry['node']}: "
                         f"holdoff={entry['holdoff_ns']:.1f}ns")
    for warning in report["warnings"]:
        lines.append(f"WARNING: {warning}")
    return "\n".join(lines)
