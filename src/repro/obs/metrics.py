"""Counters and sim-time histograms (the metrics half of ``repro.obs``).

Design constraints, in priority order:

1. **Determinism** — recording a metric never schedules a kernel event,
   never draws from an RNG, and never reads the wall clock. Histograms
   are driven off ``env.now`` differences, which are pure functions of
   the simulated run, so two same-seed runs produce bit-identical
   snapshots (``fingerprint.py --with-obs`` asserts the stronger claim:
   the simulated timeline itself does not move).
2. **Near-zero overhead when disabled** — nothing in this module runs
   unless observability was enabled on the cluster. Hot paths cache the
   registry at construction (``self._metrics = node.metrics``, default
   ``None``) and guard every instrumentation point with one attribute
   check.
3. **Cheap when enabled** — a counter bump is one dict store; a
   histogram record is one ``bit_length`` call plus five stores. No
   locks (the simulator is single-threaded), no string formatting until
   :meth:`MetricsRegistry.report` is asked for. Counters that mirror an
   always-on tally the hot path maintains anyway (``tuples_sent``,
   ``segments_sent``, ``CompletionQueue.pushed``, …) are not bumped per
   event at all: the owner registers a **collector** and the registry
   harvests the absolute value at read time (:meth:`get`,
   :meth:`snapshot`, :meth:`report`), so those names cost zero on the
   hot path.
"""

from __future__ import annotations


class Histogram:
    """Fixed-bucket power-of-two histogram with count/sum/min/max.

    Bucket ``i`` holds values ``v`` with ``int(v).bit_length() == i``,
    i.e. ``v == 0`` lands in bucket 0, ``1`` in bucket 1, ``2-3`` in
    bucket 2, ``4-7`` in bucket 3, and so on. Power-of-two buckets keep
    recording branch-free and make snapshots seed-stable: the bucket of
    a latency is a pure function of the simulated value.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: "int | None" = None
        self.max: "int | None" = None
        self.buckets: dict[int, int] = {}

    def record(self, value: float) -> None:
        """Record one sample (negative samples clamp to zero)."""
        v = int(value)
        if v < 0:
            v = 0
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        bucket = v.bit_length()
        buckets = self.buckets
        buckets[bucket] = buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Deterministic percentile estimate from the power-of-two
        buckets, **upper-bound convention**: the estimate is the largest
        value of the smallest bucket whose cumulative count reaches
        ``ceil(p * count)`` — i.e. ``2**bucket - 1`` (bucket 0 -> 0),
        clamped to the observed ``max``. The true percentile is never
        above the estimate. Pure integer arithmetic on the bucket
        counts, so same-seed runs report bit-identical percentiles."""
        if not self.count:
            return 0
        if p <= 0.0:
            return self.min or 0
        need = -((-int(p * self.count * 1000000)) // 1000000)  # ceil
        if need > self.count:
            need = self.count
        cumulative = 0
        for bucket in sorted(self.buckets):
            cumulative += self.buckets[bucket]
            if cumulative >= need:
                upper = (1 << bucket) - 1 if bucket else 0
                return min(upper, self.max)
        return self.max or 0

    def percentiles(self) -> dict:
        """The p50/p90/p99 trio shown in reports."""
        return {"p50": self.percentile(0.50),
                "p90": self.percentile(0.90),
                "p99": self.percentile(0.99)}

    def snapshot(self) -> dict:
        """JSON-friendly dict view (buckets keyed by bit length)."""
        snap = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": dict(sorted(self.buckets.items())),
        }
        snap.update(self.percentiles())
        return snap

    def __repr__(self) -> str:
        return (f"<Histogram n={self.count} mean={self.mean:.1f} "
                f"min={self.min} max={self.max}>")


class MetricsRegistry:
    """Per-node registry of named counters and histograms.

    Metric names are dot-namespaced strings (``core.tuples_pushed``,
    ``rdma.doorbell_trains``, …) — see ``docs/observability.md`` for the
    full catalog. Counters are created on first increment; reading an
    absent counter via :meth:`get` returns 0.

    Counter values come from two places, merged at read time:

    - ``counters`` — live increments via :meth:`inc` (cold/rare events:
      backoff rounds, failures, CQ errors, …).
    - ``collectors`` — zero-argument callables returning
      ``(name, absolute_value)`` pairs harvested from always-on tallies
      the hot path maintains regardless of observability (channel
      ``tuples_sent``/``segments_sent``, QP WQE tallies, CQ ``pushed``).
      Registering a collector instead of calling :meth:`inc` per event
      makes those names free on the hot path; contributions for the
      same name (e.g. several channels on one node) are summed.
    """

    __slots__ = ("node_id", "counters", "histograms", "collectors")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}
        self.collectors: list = []

    # -- recording --------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    def histogram(self, name: str) -> Histogram:
        """Get (or create) the histogram called ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name).record(value)

    def add_collector(self, collector) -> None:
        """Register a read-time counter source: a zero-argument callable
        returning an iterable of ``(name, absolute_value)`` pairs. Called
        on every read (:meth:`get`/:meth:`snapshot`/:meth:`report`), so
        collectors must be cheap, pure reads of always-on tallies."""
        self.collectors.append(collector)

    # -- reading ----------------------------------------------------------
    def _merged_counters(self) -> dict:
        """Live counters plus every collector's harvest, summed by name.
        Zero-valued harvested names are dropped so idle sources do not
        clutter snapshots with rows that never fired."""
        merged = dict(self.counters)
        for collector in self.collectors:
            for name, value in collector():
                if value:
                    merged[name] = merged.get(name, 0) + value
        return merged

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented),
        including harvested collector contributions."""
        value = self.counters.get(name, 0)
        for collector in self.collectors:
            for harvested_name, harvested in collector():
                if harvested_name == name:
                    value += harvested
        return value

    def snapshot(self) -> dict:
        """JSON-friendly dict of every counter and histogram."""
        return {
            "counters": dict(sorted(self._merged_counters().items())),
            "histograms": {name: hist.snapshot() for name, hist
                           in sorted(self.histograms.items())},
        }

    def report(self) -> str:
        """Compact text table of this registry's metrics."""
        lines = [f"node {self.node_id}"]
        for name, value in sorted(self._merged_counters().items()):
            lines.append(f"  {name:<40} {value:>14}")
        for name, hist in sorted(self.histograms.items()):
            pct = hist.percentiles()
            lines.append(
                f"  {name:<40} {hist.count:>14}  "
                f"mean={hist.mean:.0f} min={hist.min} max={hist.max} "
                f"p50<={pct['p50']} p90<={pct['p90']} p99<={pct['p99']}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<MetricsRegistry node={self.node_id} "
                f"counters={len(self.counters)} "
                f"histograms={len(self.histograms)}>")


def render_report(snapshot: dict) -> str:
    """Render ``Cluster.metrics_snapshot()`` output as one text table.

    Sections: per-node flow/RDMA metrics (only nodes that recorded
    anything), then the always-on infrastructure tallies (NICs, links,
    fabric) harvested from the simulator's built-in counters.
    """
    lines = ["=== metrics report ==="]
    nodes = snapshot.get("nodes", {})
    if not nodes:
        lines.append("(observability disabled: no per-node registries)")
    for node_id in sorted(nodes):
        entry = nodes[node_id]
        lines.append(f"node {node_id}")
        for name, value in sorted(entry.get("counters", {}).items()):
            lines.append(f"  {name:<40} {value:>14}")
        for name, hist in sorted(entry.get("histograms", {}).items()):
            count, total = hist["count"], hist["sum"]
            mean = total / count if count else 0.0
            line = (f"  {name:<40} {count:>14}  mean={mean:.0f} "
                    f"min={hist['min']} max={hist['max']}")
            if "p50" in hist:
                line += (f" p50<={hist['p50']} p90<={hist['p90']} "
                         f"p99<={hist['p99']}")
            lines.append(line)
    nics = snapshot.get("nics", {})
    if nics:
        lines.append("nics")
        for node_id in sorted(nics):
            stats = nics[node_id]
            lines.append(
                f"  node{node_id}: wqes={stats['wqes_processed']} "
                f"bytes_posted={stats['bytes_posted']} "
                f"doorbell_trains={stats['doorbell_trains']} "
                f"rx_dropped={stats['rx_dropped_no_recv']} "
                f"engine_wait={stats.get('engine_wait_ns', 0)}ns")
    links = snapshot.get("links", {})
    if links:
        lines.append("links")
        for name in sorted(links):
            stats = links[name]
            lines.append(
                f"  {name}: bytes={stats['bytes_carried']} "
                f"messages={stats['messages_carried']} "
                f"trains={stats['trains_carried']} "
                f"hol_wait={stats.get('hol_wait_ns', 0)}ns")
    fabric = snapshot.get("fabric")
    if fabric:
        lines.append("fabric")
        lines.append(
            f"  unicast={fabric['unicast_count']} "
            f"trains={fabric['unicast_trains']} "
            f"multicast={fabric['multicast_count']} "
            f"multicast_drops={fabric['multicast_drops']} "
            f"fault_drops={fabric['fault_drops']}")
    rings = snapshot.get("trace_rings", {})
    if rings:
        lines.append("trace rings")
        for flow in sorted(rings):
            stats = rings[flow]
            line = (f"  {flow}: kept={stats['kept']} "
                    f"dropped={stats['dropped']} "
                    f"capacity={stats['capacity']}")
            if stats["dropped"]:
                line += "  (TRUNCATED: oldest events overwritten)"
            lines.append(line)
    causal = snapshot.get("causal")
    if causal:
        lines.append("causal edge logs")
        lines.append(f"  edges={causal['edges']} flows_closed="
                     f"{causal['flows_closed']}")
        for node, dropped in sorted(causal.get("dropped", {}).items()):
            lines.append(f"  node{node}: dropped={dropped} "
                         f"(TRUNCATED edge log)")
    return "\n".join(lines)
