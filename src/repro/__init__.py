"""repro — a full reproduction of *DFI: The Data Flow Interface for
High-Speed Networks* (Thostrup et al., SIGMOD 2021).

The package layers:

* :mod:`repro.simnet` — deterministic discrete-event network simulator
  (the InfiniBand-EDR-testbed substitute);
* :mod:`repro.rdma` — RDMA verbs on the simulator (memory regions, RC/UD
  queue pairs, one-sided write/read/atomics, multicast);
* :mod:`repro.mpi` — the MPI baseline the paper compares against;
* :mod:`repro.core` — DFI itself: shuffle, replicate and combiner flows;
* :mod:`repro.apps` — the paper's use cases (distributed joins, consensus)
  and perftest-style baselines;
* :mod:`repro.workloads` — YCSB and synthetic table generators;
* :mod:`repro.bench` — the harness regenerating each paper figure.

Quickstart: see ``examples/quickstart.py`` and the README.
"""

from repro.common import HardwareProfile, MpiProfile
from repro.core import (
    FLOW_END,
    AggregationSpec,
    DfiRuntime,
    Endpoint,
    FlowDescriptor,
    FlowOptions,
    FlowRegistry,
    FlowType,
    GapNotification,
    Optimization,
    Ordering,
    Schema,
)
from repro.simnet import Cluster

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "HardwareProfile",
    "MpiProfile",
    "DfiRuntime",
    "FlowRegistry",
    "FlowDescriptor",
    "FlowOptions",
    "FlowType",
    "Optimization",
    "Ordering",
    "AggregationSpec",
    "GapNotification",
    "Schema",
    "Endpoint",
    "FLOW_END",
    "__version__",
]
