"""Multiprocess fan-out for independent simulator runs.

Every cluster in this repo is a self-contained, seeded universe: two runs
with different seeds share no state, so a seed sweep is embarrassingly
parallel. This module farms such runs across host cores and merges the
per-seed results back in deterministic (case) order:

* :func:`fan_out` — generic ordered ``Pool.map`` over picklable cases,
  with a serial fallback (``processes=1`` or a single case) so results
  never depend on whether multiprocessing was available;
* :func:`run_chaos_case` — one chaos-matrix cell (seed x flow type x
  optimization), executed **twice** to assert bit-identical outcomes,
  mirroring ``tests/test_chaos_faults.py``;
* :func:`run_bench_script` — one benchmark script in a subprocess (each
  bench script is already a standalone program writing its own JSON).

Wall-clock numbers from benches run concurrently share host cores and
are noisier than solo runs; the chaos and fingerprint workloads are
timing-free (simulated metrics only) and merge losslessly.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys

#: Chaos-matrix defaults — keep in lockstep with tests/test_chaos_faults.py.
CHAOS_SEEDS = range(5)
CHAOS_FLOW_TYPES = ("shuffle", "replicate", "combiner")
CHAOS_MODES = ("bw", "lat")
#: Congestion dimension: plain cells plus cells with an active congestion
#: plane whose band is tight enough to throttle the 256-byte chaos
#: segments (mirrors ``CHAOS_CONGESTION`` in tests/test_chaos_faults.py).
CHAOS_CONGESTED = (False, True)
_CHAOS_HORIZON = 8_000_000.0
_CHAOS_DETECTION = 60_000.0

#: Legible chaos outcomes; anything else (or a process still blocked at
#: the horizon) is a failure of the no-hang invariant.
CHAOS_ALLOWED = {"completed", "killed", "FlowPeerFailedError",
                 "FlowTimeoutError", "FlowAbortedError"}


def default_processes(case_count: int) -> int:
    """Worker count: one per case, capped at the host's cores."""
    return max(1, min(case_count, os.cpu_count() or 1))


def fan_out(worker, cases, processes: "int | None" = None) -> list:
    """Run ``worker`` over ``cases`` across processes; results come back
    in case order regardless of completion order, so a merged report is
    reproducible for a fixed case list.

    ``worker`` must be a module-level function and every case picklable.
    With one worker (or one case) the map runs serially in-process —
    identical results, no pool overhead.
    """
    cases = list(cases)
    if processes is None:
        processes = default_processes(len(cases))
    if processes <= 1 or len(cases) <= 1:
        return [worker(case) for case in cases]
    # Fork keeps the already-imported simulator warm in the children;
    # fall back to the platform default where fork is unavailable.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        context = multiprocessing.get_context()
    with context.Pool(processes=min(processes, len(cases))) as pool:
        return pool.map(worker, cases)


# -- chaos sweep -------------------------------------------------------------

def chaos_cases(seeds=CHAOS_SEEDS, flow_types=CHAOS_FLOW_TYPES,
                modes=CHAOS_MODES, congested=CHAOS_CONGESTED) -> list:
    """The full chaos matrix as picklable ``(seed, flow, mode,
    congested)`` cases."""
    return [(seed, flow_type, mode, cc)
            for seed in seeds
            for flow_type in flow_types
            for mode in modes
            for cc in congested]


def _chaos_congestion_config():
    from repro.simnet import CongestionConfig
    return CongestionConfig(
        queue_capacity=512, kmin=64, kmax=256, min_rate_fraction=0.05,
        cnp_interval=8_000.0, recovery_period=8_000.0, ai_fraction=0.02,
        hai_fraction=0.1, recovery_jitter=0.1)


def _chaos_once(seed: int, flow_type: str, mode: str,
                congested: bool = False):
    """One seeded chaos run; returns JSON-safe (outcomes, counts, now).

    Same topology, fault plan, and endpoint logic as the tier-1 chaos
    suite; raises ``RuntimeError`` on a hang instead of a test assert.
    """
    from repro.common.errors import (
        FlowAbortedError,
        FlowPeerFailedError,
        FlowTimeoutError,
    )
    from repro.core import (
        FLOW_END,
        AggregationSpec,
        DfiRuntime,
        FlowOptions,
        Optimization,
        Schema,
    )
    from repro.simnet import Cluster, FaultPlan

    flow_errors = (FlowPeerFailedError, FlowTimeoutError, FlowAbortedError)
    optimization = (Optimization.LATENCY if mode == "lat"
                    else Optimization.BANDWIDTH)
    schema = Schema(("key", "uint64"), ("value", "uint64"))
    cluster = Cluster(node_count=5, seed=seed)
    plan = FaultPlan.random(seed, node_ids=range(5), start=50_000.0,
                            horizon=800_000.0, entry_count=3,
                            protected=(0,))
    cluster.install_faults(plan, detection_timeout=_CHAOS_DETECTION)
    dfi = DfiRuntime(cluster)
    options = FlowOptions(
        segment_size=256, source_segments=4, target_segments=8,
        credit_threshold=2, peer_timeout=200_000.0,
        max_backoff_retries=32, max_retransmits=8,
        on_target_failure="reroute" if seed % 2 else "abort",
        multicast=(flow_type == "replicate"
                   and optimization is Optimization.LATENCY),
        congestion=_chaos_congestion_config() if congested else None)

    if flow_type == "shuffle":
        dfi.init_shuffle_flow("chaos", ["node1|0", "node2|0"],
                              ["node3|0", "node4|0"], schema,
                              shuffle_key="key", optimization=optimization,
                              options=options)
        sources = [(1, 0), (2, 1)]
        targets = [(3, 0), (4, 1)]
    elif flow_type == "replicate":
        dfi.init_replicate_flow("chaos", ["node1|0"],
                                ["node2|0", "node3|0", "node4|0"], schema,
                                optimization=optimization, options=options)
        sources = [(1, 0)]
        targets = [(2, 0), (3, 1), (4, 2)]
    else:
        dfi.init_combiner_flow("chaos", ["node1|0", "node2|0", "node3|0"],
                               "node4|0", schema,
                               aggregation=AggregationSpec("sum", "key",
                                                           "value"),
                               optimization=optimization, options=options)
        sources = [(1, 0), (2, 1), (3, 2)]
        targets = [(4, 0)]

    outcomes: dict = {}
    counts: dict = {}

    def source_thread(key, index):
        try:
            source = yield from dfi.open_source("chaos", index)
            for i in range(600):
                yield from source.push((i, 1))
            yield from source.close()
            outcomes[key] = "completed"
        except flow_errors as exc:
            outcomes[key] = type(exc).__name__

    def target_thread(key, index):
        counts[key] = 0
        try:
            target = yield from dfi.open_target("chaos", index)
            if flow_type == "combiner":
                while (yield from target.consume_step()) is not FLOW_END:
                    pass
                counts[key] = target.tuples_aggregated
            else:
                while True:
                    item = yield from target.consume()
                    if item is FLOW_END:
                        break
                    counts[key] += 1
            outcomes[key] = "completed"
        except flow_errors as exc:
            outcomes[key] = type(exc).__name__

    procs = {}
    for node_id, index in sources:
        key = f"src{index}"
        procs[key] = cluster.node(node_id).spawn(source_thread(key, index))
    for node_id, index in targets:
        key = f"tgt{index}"
        procs[key] = cluster.node(node_id).spawn(target_thread(key, index))
    cluster.run(until=_CHAOS_HORIZON)

    for key, proc in procs.items():
        if key not in outcomes:
            if proc.is_alive:
                raise RuntimeError(
                    f"hang: endpoint {key} still blocked at the horizon "
                    f"(seed={seed}, flow={flow_type}, mode={mode}, "
                    f"congested={congested})")
            outcomes[key] = "killed"
    return outcomes, counts, cluster.now


def run_chaos_case(case) -> dict:
    """Worker: one chaos cell run twice; merges the no-hang and
    bit-reproducibility invariants into a JSON-safe per-seed record."""
    seed, flow_type, mode, congested = (case if len(case) == 4
                                        else (*case, False))
    first = _chaos_once(seed, flow_type, mode, congested)
    second = _chaos_once(seed, flow_type, mode, congested)
    outcomes, counts, now = first
    return {
        "seed": seed,
        "flow": flow_type,
        "mode": mode,
        "congested": congested,
        "outcomes": outcomes,
        "tuple_counts": counts,
        "final_time_ns": now,
        "deterministic": first == second,
        "legible": set(outcomes.values()) <= CHAOS_ALLOWED,
    }


# -- benchmark scripts -------------------------------------------------------

def run_bench_script(case) -> dict:
    """Worker: run one standalone bench script; returns its exit status
    and output tail. ``case`` is ``(script_path, argv_tail, env_extra)``.
    """
    script, argv, env_extra = case
    env = dict(os.environ)
    env.update(env_extra or {})
    proc = subprocess.run(
        [sys.executable, script, *argv],
        capture_output=True, text=True, env=env)
    tail = (proc.stdout + proc.stderr).strip().splitlines()[-12:]
    return {
        "script": os.path.basename(script),
        "args": list(argv),
        "returncode": proc.returncode,
        "output_tail": tail,
    }
