"""Benchmark harness regenerating every table and figure of the paper's
evaluation (Section 6). One module per measurement family; the pytest
entry points live in ``benchmarks/``."""

from repro.bench.reporting import Table, format_gib_s, format_us

__all__ = ["Table", "format_gib_s", "format_us"]
