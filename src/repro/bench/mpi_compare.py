"""Measurement routines for Experiment 2: DFI vs. MPI (Figs. 10-12)."""

from __future__ import annotations

from repro.common.config import HardwareProfile
from repro.core import (
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Optimization,
    Schema,
)
from repro.mpi import Communicator, MpiRuntime, ThreadingLevel
from repro.simnet import Cluster


def _schema(tuple_size: int) -> Schema:
    return Schema(("key", "uint64"), ("pad", tuple_size - 8)) \
        if tuple_size > 8 else Schema(("key", "uint64"))


# -- Fig. 10a/10b: point-to-point transfer of a fixed table ---------------------

def dfi_p2p_runtime(tuple_size: int, table_bytes: int, threads: int = 1,
                    optimization: Optimization = Optimization.BANDWIDTH,
                    ) -> float:
    """Transfer ``table_bytes`` node0 -> node1 through a DFI shuffle flow
    with ``threads`` sender threads; returns the runtime in ns."""
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    schema = _schema(tuple_size)
    sources = [Endpoint(0, t) for t in range(threads)]
    targets = [Endpoint(1, t) for t in range(threads)]
    options = FlowOptions(segment_size=max(8192, tuple_size),
                          source_segments=8, target_segments=16,
                          credit_threshold=8)
    dfi.init_shuffle_flow("p2p", sources, targets, schema,
                          shuffle_key="key", optimization=optimization,
                          options=options)
    per_source = table_bytes // tuple_size // threads
    pad = b"x" * (tuple_size - 8)
    done = {"t": 0.0}

    def source_thread(index):
        source = yield from dfi.open_source("p2p", index)
        for i in range(per_source):
            yield from source.push((i, pad))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("p2p", index)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                done["t"] = max(done["t"], cluster.now)
                return

    for t in range(threads):
        cluster.env.process(source_thread(t))
        cluster.env.process(target_thread(t))
    cluster.run()
    return done["t"]


def mpi_p2p_runtime(tuple_size: int, table_bytes: int, threads: int = 1,
                    multiprocess: bool = False) -> float:
    """Transfer ``table_bytes`` node0 -> node1 with per-tuple MPI
    Send/Recv. ``threads`` sender threads share one rank
    (MPI_THREAD_MULTIPLE) unless ``multiprocess`` gives each its own rank.
    Returns the runtime in ns."""
    cluster = Cluster(node_count=2)
    if multiprocess:
        runtime = MpiRuntime(cluster, ranks_per_node=threads)
        pairs = [(w, threads + w) for w in range(threads)]
    else:
        level = (ThreadingLevel.MULTIPLE if threads > 1
                 else ThreadingLevel.SINGLE)
        runtime = MpiRuntime(cluster, ranks_per_node=1, threading=level)
        pairs = [(0, 1)] * threads
    per_thread = table_bytes // tuple_size // threads
    done = {"t": 0.0}

    def sender(comm, dest):
        for i in range(per_thread):
            yield from comm.send(dest, i, size=tuple_size)

    def receiver(comm, expected):
        for _ in range(expected):
            yield from comm.recv()
        done["t"] = max(done["t"], cluster.now)

    if multiprocess:
        for send_rank, recv_rank in pairs:
            cluster.env.process(sender(Communicator(runtime, send_rank),
                                       recv_rank))
            cluster.env.process(receiver(Communicator(runtime, recv_rank),
                                         per_thread))
    else:
        comm0 = Communicator(runtime, 0)
        for _send_rank, _recv_rank in pairs:
            cluster.env.process(sender(comm0, 1))
        cluster.env.process(receiver(Communicator(runtime, 1),
                                     per_thread * threads))
    cluster.run()
    return done["t"]


# -- Fig. 11: pipelined (streaming) shuffling, 8:8 -----------------------------

def mpi_alltoall_pipelined_runtime(tuple_size: int, table_bytes: int,
                                   nodes: int = 8,
                                   mini_batch_tuples: int = 8) -> float:
    """Shuffle a table with one MPI_Alltoall call per mini-batch of
    ``mini_batch_tuples`` tuples (the paper's streaming-MPI setup);
    returns the runtime in ns."""
    cluster = Cluster(node_count=nodes)
    runtime = MpiRuntime(cluster, ranks_per_node=1)
    per_rank = table_bytes // tuple_size // nodes
    calls = per_rank // mini_batch_tuples
    chunk_size = max(1, mini_batch_tuples // nodes) * tuple_size
    done = {"t": 0.0}

    def rank_proc(rank):
        comm = Communicator(runtime, rank)
        for _ in range(calls):
            chunks = [(None, chunk_size) for _ in range(nodes)]
            yield from comm.alltoall(chunks)
        done["t"] = max(done["t"], cluster.now)

    for rank in range(nodes):
        cluster.env.process(rank_proc(rank))
    cluster.run()
    return done["t"]


def dfi_shuffle_88_runtime(tuple_size: int, table_bytes: int,
                           nodes: int = 8,
                           profile: HardwareProfile = HardwareProfile(),
                           segment_size: int = 8192) -> float:
    """Shuffle a table through an 8:8 DFI flow, one thread per node,
    scanning and pushing tuple-wise; returns the runtime in ns."""
    cluster = Cluster(node_count=nodes, profile=profile)
    dfi = DfiRuntime(cluster)
    schema = _schema(tuple_size)
    endpoints = [Endpoint(n, 0) for n in range(nodes)]
    options = FlowOptions(segment_size=max(segment_size, tuple_size),
                          source_segments=8, target_segments=16,
                          credit_threshold=8)
    dfi.init_shuffle_flow("f11", endpoints, endpoints, schema,
                          shuffle_key="key", options=options)
    per_rank = table_bytes // tuple_size // nodes
    pad = b"x" * (tuple_size - 8)
    done = {"t": 0.0}

    def source_thread(index):
        source = yield from dfi.open_source("f11", index)
        for i in range(per_rank):
            yield from source.push((i * nodes + index, pad))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("f11", index)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                done["t"] = max(done["t"], cluster.now)
                return

    for index in range(nodes):
        cluster.env.process(source_thread(index))
        cluster.env.process(target_thread(index))
    cluster.run()
    return done["t"]


# -- Fig. 12: batched collective shuffling with a straggler -------------------

#: Per-tuple cost of the scan + local pre-partition pass feeding the
#: batched MPI_Alltoall (matching the DFI push-path per-tuple cost).
_SCAN_COST_PER_TUPLE = 16.0


def mpi_alltoall_batched_runtime(table_bytes: int, nodes: int = 8,
                                 tuple_size: int = 64,
                                 straggler_scale: float = 1.0) -> float:
    """Fig. 12's MPI side: every rank first scans and pre-partitions its
    whole table locally, then a single bulk-synchronous MPI_Alltoall moves
    the data. A straggler (CPU scale < 1 on the last node) delays the
    collective for everyone; returns the runtime in ns."""
    profile = HardwareProfile()
    if straggler_scale != 1.0:
        profile = profile.with_straggler(nodes - 1, straggler_scale)
    cluster = Cluster(node_count=nodes, profile=profile)
    runtime = MpiRuntime(cluster, ranks_per_node=1)
    per_rank = table_bytes // tuple_size // nodes
    chunk_bytes = per_rank * tuple_size // nodes
    done = {"t": 0.0}

    def rank_proc(rank):
        comm = Communicator(runtime, rank)
        # Local scan + pre-partition on the shuffle key (CPU-bound, runs
        # at the node's frequency — the straggler takes twice as long).
        yield comm.node.compute(per_rank * _SCAN_COST_PER_TUPLE)
        chunks = [(None, chunk_bytes) for _ in range(nodes)]
        yield from comm.alltoall(chunks)
        done["t"] = max(done["t"], cluster.now)

    for rank in range(nodes):
        cluster.env.process(rank_proc(rank))
    cluster.run()
    return done["t"]


def dfi_shuffle_straggler_runtime(table_bytes: int, nodes: int = 8,
                                  tuple_size: int = 64,
                                  straggler_scale: float = 1.0,
                                  segment_size: int = 8192) -> float:
    """Fig. 12's DFI side: the same shuffle, but tuples stream into the
    flow *while* the scan runs, so transfer hides behind the straggler's
    slow scan instead of waiting for it; returns the runtime in ns."""
    profile = HardwareProfile()
    if straggler_scale != 1.0:
        profile = profile.with_straggler(nodes - 1, straggler_scale)
    return dfi_shuffle_88_runtime(tuple_size, table_bytes, nodes=nodes,
                                  profile=profile,
                                  segment_size=segment_size)
