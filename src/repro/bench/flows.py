"""Measurement routines for Experiment 1 (Figs. 7-9, Section 6.1.4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import HardwareProfile
from repro.core import (
    FLOW_END,
    AggregationSpec,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Optimization,
    Ordering,
    Schema,
)
from repro.simnet import Cluster


def _payload_schema(tuple_size: int) -> Schema:
    """A (key, pad) schema of exactly ``tuple_size`` bytes."""
    if tuple_size < 16:
        return Schema(("key", "uint64"), ("pad", tuple_size - 8)) \
            if tuple_size > 8 else Schema(("key", "uint64"))
    return Schema(("key", "uint64"), ("pad", tuple_size - 8))


@dataclass
class BandwidthMeasurement:
    """Result of one bandwidth run."""

    payload_bytes: int
    elapsed_ns: float

    @property
    def bytes_per_ns(self) -> float:
        return self.payload_bytes / self.elapsed_ns


def measure_shuffle_bandwidth(tuple_size: int, source_threads: int,
                              target_nodes: int = 8,
                              total_bytes: int = 4 << 20,
                              options: FlowOptions = FlowOptions(),
                              profile: HardwareProfile = HardwareProfile(),
                              optimization: Optimization = Optimization.BANDWIDTH,
                              ) -> BandwidthMeasurement:
    """Fig. 7a: sender bandwidth of a 1:``target_nodes`` shuffle flow."""
    cluster = Cluster(node_count=1 + target_nodes, profile=profile)
    dfi = DfiRuntime(cluster)
    schema = _payload_schema(tuple_size)
    sources = [Endpoint(0, t) for t in range(source_threads)]
    targets = [Endpoint(1 + n, 0) for n in range(target_nodes)]
    dfi.init_shuffle_flow("bw", sources, targets, schema,
                          shuffle_key="key", options=options,
                          optimization=optimization)
    per_source = total_bytes // tuple_size // source_threads
    pad = b"x" * (tuple_size - 8)
    window = {"start": None, "end": 0.0}

    def source_thread(index):
        source = yield from dfi.open_source("bw", index)
        if window["start"] is None:
            window["start"] = cluster.now
        for i in range(per_source):
            yield from source.push((i, pad))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("bw", index)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                window["end"] = max(window["end"], cluster.now)
                return

    for t in range(source_threads):
        cluster.env.process(source_thread(t))
    for n in range(target_nodes):
        cluster.env.process(target_thread(n))
    cluster.run()
    payload = per_source * source_threads * tuple_size
    return BandwidthMeasurement(payload, window["end"] - window["start"])


def measure_shuffle_rtt(tuple_size: int, target_nodes: int,
                        iterations: int = 200,
                        profile: HardwareProfile = HardwareProfile(),
                        ) -> list[float]:
    """Fig. 7b: request/response round trip over two latency-optimized
    shuffle flows, shuffling requests across ``target_nodes`` servers."""
    cluster = Cluster(node_count=1 + target_nodes, profile=profile)
    dfi = DfiRuntime(cluster)
    schema = _payload_schema(max(tuple_size, 16))
    client = [Endpoint(0, 0)]
    servers = [Endpoint(1 + n, 0) for n in range(target_nodes)]
    options = FlowOptions(target_segments=64, credit_threshold=16)
    dfi.init_shuffle_flow("ping", client, servers, schema,
                          shuffle_key="key",
                          optimization=Optimization.LATENCY,
                          options=options)
    dfi.init_shuffle_flow("pong", servers, client, schema,
                          shuffle_key="key",
                          optimization=Optimization.LATENCY,
                          options=options)
    pad = b"x" * (schema.tuple_size - 8)
    rtts: list[float] = []

    def client_proc(env):
        ping = yield from dfi.open_source("ping", 0)
        pong = yield from dfi.open_target("pong", 0)
        for i in range(iterations):
            start = env.now
            yield from ping.push((i, pad), target=i % target_nodes)
            response = yield from pong.consume()
            assert response is not FLOW_END
            rtts.append(env.now - start)
        yield from ping.close()
        while (yield from pong.consume()) is not FLOW_END:
            pass

    def server_proc(index):
        ping = yield from dfi.open_target("ping", index)
        pong = yield from dfi.open_source("pong", index)
        while True:
            request = yield from ping.consume()
            if request is FLOW_END:
                yield from pong.close()
                return
            yield from pong.push(request, target=0)

    cluster.env.process(client_proc(cluster.env))
    for n in range(target_nodes):
        cluster.env.process(server_proc(n))
    cluster.run()
    return rtts


def measure_scaleout_bandwidth(servers: int, threads_per_server: int,
                               bytes_per_source: int = 1 << 20,
                               tuple_size: int = 256,
                               options: FlowOptions = FlowOptions(
                                   segment_size=4096, source_segments=32,
                                   target_segments=16, credit_threshold=8),
                               ) -> BandwidthMeasurement:
    """Fig. 7c: aggregated sender bandwidth of an N:N shuffle where every
    server runs sources and targets."""
    cluster = Cluster(node_count=servers)
    dfi = DfiRuntime(cluster)
    schema = _payload_schema(tuple_size)
    endpoints = [Endpoint(node, t) for node in range(servers)
                 for t in range(threads_per_server)]
    dfi.init_shuffle_flow("scale", endpoints, endpoints, schema,
                          shuffle_key="key", options=options)
    per_source = bytes_per_source // tuple_size
    pad = b"x" * (tuple_size - 8)
    window = {"start": None, "end": 0.0}

    def source_thread(index):
        source = yield from dfi.open_source("scale", index)
        if window["start"] is None:
            window["start"] = cluster.now
        for i in range(per_source):
            yield from source.push((i * len(endpoints) + index, pad))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("scale", index)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                window["end"] = max(window["end"], cluster.now)
                return

    for index in range(len(endpoints)):
        cluster.env.process(source_thread(index))
        cluster.env.process(target_thread(index))
    cluster.run()
    payload = per_source * len(endpoints) * tuple_size
    return BandwidthMeasurement(payload, window["end"] - window["start"])


def measure_replicate_bandwidth(tuple_size: int, source_threads: int,
                                multicast: bool, target_nodes: int = 8,
                                total_bytes: int = 2 << 20,
                                ) -> BandwidthMeasurement:
    """Figs. 8a/8b: *aggregated receiver* bandwidth of a 1:8 replicate
    flow, naive one-sided vs. switch multicast."""
    cluster = Cluster(node_count=1 + target_nodes)
    dfi = DfiRuntime(cluster)
    schema = _payload_schema(tuple_size)
    sources = [Endpoint(0, t) for t in range(source_threads)]
    targets = [Endpoint(1 + n, 0) for n in range(target_nodes)]
    dfi.init_replicate_flow(
        "rep", sources, targets, schema,
        options=FlowOptions(multicast=multicast, source_segments=4,
                            target_segments=16, credit_threshold=8))
    per_source = total_bytes // tuple_size // source_threads
    pad = b"x" * (tuple_size - 8)
    window = {"start": None, "end": 0.0}
    received = [0]

    def source_thread(index):
        source = yield from dfi.open_source("rep", index)
        if window["start"] is None:
            window["start"] = cluster.now
        for i in range(per_source):
            yield from source.push((i, pad))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("rep", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                window["end"] = max(window["end"], cluster.now)
                return
            received[0] += 1

    for t in range(source_threads):
        cluster.env.process(source_thread(t))
    for n in range(target_nodes):
        cluster.env.process(target_thread(n))
    cluster.run()
    return BandwidthMeasurement(received[0] * tuple_size,
                                window["end"] - window["start"])


def measure_replicate_rtt(tuple_size: int, target_nodes: int,
                          multicast: bool, iterations: int = 200,
                          ) -> list[float]:
    """Fig. 8c: time until *all* targets answered one replicated request."""
    cluster = Cluster(node_count=1 + target_nodes)
    dfi = DfiRuntime(cluster)
    schema = _payload_schema(max(tuple_size, 16))
    client = [Endpoint(0, 0)]
    servers = [Endpoint(1 + n, 0) for n in range(target_nodes)]
    dfi.init_replicate_flow(
        "req", client, servers, schema,
        optimization=Optimization.LATENCY,
        options=FlowOptions(multicast=multicast, target_segments=64,
                            credit_threshold=16))
    dfi.init_shuffle_flow(
        "resp", servers, client, schema, shuffle_key="key",
        optimization=Optimization.LATENCY,
        options=FlowOptions(target_segments=64, credit_threshold=16))
    pad = b"x" * (schema.tuple_size - 8)
    rtts: list[float] = []

    def client_proc(env):
        request = yield from dfi.open_source("req", 0)
        responses = yield from dfi.open_target("resp", 0)
        for i in range(iterations):
            start = env.now
            yield from request.push((i, pad))
            for _ in range(target_nodes):
                response = yield from responses.consume()
                assert response is not FLOW_END
            rtts.append(env.now - start)
        yield from request.close()
        while (yield from responses.consume()) is not FLOW_END:
            pass

    def server_proc(index):
        requests = yield from dfi.open_target("req", index)
        responses = yield from dfi.open_source("resp", index)
        while True:
            item = yield from requests.consume()
            if item is FLOW_END:
                yield from responses.close()
                return
            yield from responses.push(item, target=0)

    cluster.env.process(client_proc(cluster.env))
    for n in range(target_nodes):
        cluster.env.process(server_proc(n))
    cluster.run()
    return rtts


def measure_combiner_bandwidth(tuple_size: int, threads_per_sender: int,
                               sender_nodes: int = 8,
                               total_bytes: int = 4 << 20,
                               ) -> BandwidthMeasurement:
    """Fig. 9: aggregated sender bandwidth of an N:1 combiner flow with a
    SUM aggregation — the target's in-going link is the natural limit."""
    cluster = Cluster(node_count=1 + sender_nodes)
    dfi = DfiRuntime(cluster)
    if tuple_size < 16:
        raise ValueError("combiner tuples need key + value (>= 16 B)")
    fields = [("group", "uint64"), ("value", "uint64")]
    if tuple_size > 16:
        fields.append(("pad", tuple_size - 16))
    schema = Schema(*fields)
    sources = [Endpoint(1 + n, t) for n in range(sender_nodes)
               for t in range(threads_per_sender)]
    dfi.init_combiner_flow(
        "agg", sources, Endpoint(0, 0), schema,
        aggregation=AggregationSpec("sum", "group", "value"),
        options=FlowOptions(source_segments=4, target_segments=16,
                            credit_threshold=8))
    per_source = total_bytes // tuple_size // len(sources)
    pad = (b"x" * (tuple_size - 16),) if tuple_size > 16 else ()
    window = {"start": None, "end": 0.0}

    def source_thread(index):
        source = yield from dfi.open_source("agg", index)
        if window["start"] is None:
            window["start"] = cluster.now
        for i in range(per_source):
            yield from source.push((i % 64, 1, *pad))
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("agg")
        yield from target.consume_all()
        window["end"] = cluster.now

    for index in range(len(sources)):
        cluster.env.process(source_thread(index))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    payload = per_source * len(sources) * tuple_size
    return BandwidthMeasurement(payload, window["end"] - window["start"])


def run_shuffle_mesh(groups: int, group_size: int, tuple_size: int = 64,
                     tuples_per_source: int = 256, shards: int | None = None,
                     seed: int = 0,
                     options: FlowOptions = FlowOptions(
                         source_segments=4, target_segments=16,
                         credit_threshold=8),
                     ) -> dict:
    """Grouped shuffle mesh: ``groups`` concurrent ``group_size``:
    ``group_size`` shuffle flows on one ``groups × group_size``-node
    cluster (rack-aligned shards via :meth:`Cluster.racked`).

    The scale scenario for the sharded kernel: 8×8 is the 64-node kernel
    bench's flow-shaped event mix; 32×8 is the 256-node, 32-concurrent-
    flow acceptance scenario of ``bench_sharded.py``. Every flow stays
    inside its group, so with rack-aligned shards cross-shard mailbox
    traffic is near zero — the honest best case for batch draining.
    Returns sim/wall measurements plus the cluster (callers read
    ``cluster.metrics_snapshot()``; sim metrics are bit-identical for
    any ``shards``).
    """
    import time as _time

    cluster = Cluster.racked(groups, group_size, seed=seed, shards=shards)
    dfi = DfiRuntime(cluster)
    schema = _payload_schema(tuple_size)
    pad = b"x" * (tuple_size - 8)
    done = {"flows": 0}
    for group in range(groups):
        base = group * group_size
        endpoints = [Endpoint(base + n, 0) for n in range(group_size)]
        dfi.init_shuffle_flow(f"mesh{group}", endpoints, endpoints, schema,
                              shuffle_key="key", options=options)

    def source_thread(flow, index, node_id):
        source = yield from dfi.open_source(flow, index)
        batch = 32
        for start in range(0, tuples_per_source, batch):
            rows = [((start + i) * 1315423911 + index + node_id, pad)
                    for i in range(min(batch, tuples_per_source - start))]
            yield from source.push_batch(rows)
        yield from source.close()

    def target_thread(flow, index):
        target = yield from dfi.open_target(flow, index)
        received = 0
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                done["flows"] += 1
                return
            received += len(batch)

    for group in range(groups):
        base = group * group_size
        flow = f"mesh{group}"
        for index in range(group_size):
            node = cluster.node(base + index)
            node.spawn(source_thread(flow, index, node.node_id))
            node.spawn(target_thread(flow, index))
    wall_start = _time.perf_counter()
    cluster.run()
    wall = _time.perf_counter() - wall_start
    assert done["flows"] == groups * group_size
    return {
        "nodes": cluster.node_count,
        "shards": cluster.shard_count,
        "flows": groups,
        "tuples": groups * group_size * tuples_per_source,
        "sim_ns": cluster.now,
        "wall_seconds": wall,
        "cluster": cluster,
    }


def measure_incast(senders: int, tuple_size: int = 64,
                   bytes_per_sender: int = 256 << 10,
                   options: FlowOptions = FlowOptions(),
                   optimization: Optimization = Optimization.BANDWIDTH,
                   seed: int = 0) -> dict:
    """N:1 incast: ``senders`` *distinct* source nodes all shuffling into
    one target node — the classic fan-in pathology (the target's downlink
    is the shared egress queue every sender piles onto).

    Unlike :func:`measure_shuffle_bandwidth` (whose source threads share
    node 0, stressing the *uplink*), every sender here has its own
    uplink, so contention concentrates exactly where ECN marking and
    DCQCN throttling act. Returns the completion window, per-sender
    finish times, and the cluster (read ``metrics_snapshot()`` /
    ``cluster.congestion.stats()`` for queue and mark detail).
    """
    cluster = Cluster(node_count=1 + senders, seed=seed)
    dfi = DfiRuntime(cluster)
    schema = _payload_schema(tuple_size)
    sources = [Endpoint(1 + n, 0) for n in range(senders)]
    dfi.init_shuffle_flow("incast", sources, [Endpoint(0, 0)], schema,
                          shuffle_key="key", options=options,
                          optimization=optimization)
    per_source = bytes_per_sender // tuple_size
    pad = b"x" * (tuple_size - 8)
    window = {"start": None, "end": 0.0}
    finishes = [0.0] * senders
    consumed = [0]

    def source_thread(index):
        source = yield from dfi.open_source("incast", index)
        if window["start"] is None:
            window["start"] = cluster.now
        batch = 64
        for start in range(0, per_source, batch):
            rows = [(start + i, pad)
                    for i in range(min(batch, per_source - start))]
            yield from source.push_batch(rows, target=0)
        yield from source.close()
        finishes[index] = cluster.now

    def target_thread():
        target = yield from dfi.open_target("incast", 0)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                window["end"] = cluster.now
                return
            consumed[0] += len(batch)

    for n in range(senders):
        cluster.node(1 + n).spawn(source_thread(n))
    cluster.node(0).spawn(target_thread())
    cluster.run()
    assert consumed[0] == per_source * senders
    return {
        "senders": senders,
        "payload_bytes": per_source * senders * tuple_size,
        "elapsed_ns": window["end"] - window["start"],
        "finish_ns": finishes,
        "cluster": cluster,
    }


def measure_fairness(tenants: int, tuple_size: int = 64,
                     bytes_per_tenant: int = 128 << 10,
                     options: FlowOptions = FlowOptions(),
                     seed: int = 0) -> dict:
    """Many-tenant fairness: ``tenants`` independent 1:1 shuffle flows,
    each from its own source node into its own target *thread* on one
    shared target node. Every tenant pushes the same byte count, so with
    a fair fabric the per-tenant throughputs cluster tightly; Jain's
    index over them quantifies how far elephants starve mice. Returns
    per-tenant elapsed times, throughputs, the index, and the cluster."""
    cluster = Cluster(node_count=1 + tenants, seed=seed)
    dfi = DfiRuntime(cluster)
    schema = _payload_schema(tuple_size)
    for tenant in range(tenants):
        dfi.init_shuffle_flow(
            f"tenant{tenant}", [Endpoint(1 + tenant, 0)],
            [Endpoint(0, tenant)], schema, shuffle_key="key",
            options=options)
    per_tenant = bytes_per_tenant // tuple_size
    pad = b"x" * (tuple_size - 8)
    elapsed = [0.0] * tenants

    def source_thread(tenant):
        source = yield from dfi.open_source(f"tenant{tenant}", 0)
        batch = 64
        for start in range(0, per_tenant, batch):
            rows = [(start + i, pad)
                    for i in range(min(batch, per_tenant - start))]
            yield from source.push_batch(rows, target=0)
        yield from source.close()

    def target_thread(tenant):
        target = yield from dfi.open_target(f"tenant{tenant}", 0)
        start = cluster.now
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                elapsed[tenant] = cluster.now - start
                return

    for tenant in range(tenants):
        cluster.node(1 + tenant).spawn(source_thread(tenant))
        cluster.node(0).spawn(target_thread(tenant))
    cluster.run()
    throughputs = [per_tenant * tuple_size / t for t in elapsed]
    total = sum(throughputs)
    square_sum = sum(x * x for x in throughputs)
    jain = total * total / (tenants * square_sum) if square_sum else 1.0
    return {
        "tenants": tenants,
        "elapsed_ns": elapsed,
        "throughputs": throughputs,
        "jain_index": jain,
        "makespan_ns": max(elapsed),
        "cluster": cluster,
    }


def measure_victim(elephant_senders: int = 8,
                   elephant_bytes_per_sender: int = 512 << 10,
                   victim_bytes: int = 32 << 10, tuple_size: int = 64,
                   victim_start_ns: float = 50_000.0,
                   options: FlowOptions = FlowOptions(),
                   seed: int = 0) -> dict:
    """Victim-flow-behind-elephant: an ``elephant_senders``:1 bulk incast
    (nodes 1..N → node 0, thread 0) has already filled node 0's egress
    queue when a short flow (node N+1 → node 0, thread 1) starts at
    ``victim_start_ns``. A single bulk sender cannot build a queue — the
    source CPU is the bottleneck below line rate — so the elephant must
    be a fan-in. On an ideal pipe the victim's packets wait behind the
    elephant's unbounded backlog; with bounded queues + DCQCN the
    elephant is throttled toward the ECN band and the victim's
    completion time stays within a small factor of the uncongested
    baseline (bounded inflation — the scenario-suite assertion). Returns
    both completion times and the cluster."""
    victim_node = 1 + elephant_senders
    cluster = Cluster(node_count=victim_node + 1, seed=seed)
    dfi = DfiRuntime(cluster)
    schema = _payload_schema(tuple_size)
    dfi.init_shuffle_flow(
        "elephant", [Endpoint(1 + n, 0) for n in range(elephant_senders)],
        [Endpoint(0, 0)], schema, shuffle_key="key", options=options)
    dfi.init_shuffle_flow("victim", [Endpoint(victim_node, 0)],
                          [Endpoint(0, 1)], schema, shuffle_key="key",
                          options=options)
    pad = b"x" * (tuple_size - 8)
    done = {}

    def source_thread(flow, index, total_bytes, delay):
        if delay:
            yield cluster.env.timeout(delay)
        source = yield from dfi.open_source(flow, index)
        done.setdefault(f"{flow}_start", cluster.now)
        count = total_bytes // tuple_size
        batch = 64
        for start in range(0, count, batch):
            rows = [(start + i, pad)
                    for i in range(min(batch, count - start))]
            yield from source.push_batch(rows, target=0)
        yield from source.close()

    def target_thread(flow):
        target = yield from dfi.open_target(flow, 0)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                done[f"{flow}_end"] = cluster.now
                return

    for n in range(elephant_senders):
        cluster.node(1 + n).spawn(source_thread(
            "elephant", n, elephant_bytes_per_sender, 0.0))
    cluster.node(victim_node).spawn(source_thread(
        "victim", 0, victim_bytes, victim_start_ns))
    cluster.node(0).spawn(target_thread("elephant"))
    cluster.node(0).spawn(target_thread("victim"))
    cluster.run()
    return {
        "victim_elapsed_ns": done["victim_end"] - done["victim_start"],
        "elephant_elapsed_ns": (done["elephant_end"]
                                - done["elephant_start"]),
        "cluster": cluster,
    }


def flow_memory_per_node(servers: int, threads_per_server: int,
                         options: FlowOptions = FlowOptions()) -> int:
    """Section 6.1.4: buffer bytes per node of an N:N shuffle deployment,
    from the protocol's ring-accounting (no data transfer needed).

    Per node: (local sources x all targets) send rings plus
    (local targets x all sources) receive rings.
    """
    endpoints = servers * threads_per_server
    slot = options.segment_size + 16
    send_rings = threads_per_server * endpoints
    recv_rings = threads_per_server * endpoints
    return (send_rings * options.source_segments
            + recv_rings * options.target_segments) * slot
