"""Result tables for the benchmark harness.

Every bench prints the same rows/series the paper's figure shows, plus the
paper's qualitative expectation, so EXPERIMENTS.md can be assembled from
the bench output directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.common.units import GIB, SECONDS

#: Directory where benches persist their tables.
RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results")


def format_gib_s(bytes_per_ns: float) -> str:
    return f"{bytes_per_ns * SECONDS / GIB:8.2f} GiB/s"


def format_us(ns: float) -> str:
    return f"{ns / 1e3:8.2f} us"


@dataclass
class Table:
    """A printable result table for one experiment."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        rendered_rows = []
        for row in self.rows:
            cells = [str(cell) for cell in row]
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
            rendered_rows.append(cells)
        header = " | ".join(col.ljust(w)
                            for col, w in zip(self.columns, widths))
        divider = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.experiment}: {self.title} ==", header, divider]
        for cells in rendered_rows:
            lines.append(" | ".join(c.ljust(w)
                                    for c, w in zip(cells, widths)))
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def save(self) -> str:
        """Persist under benchmarks/results/<experiment>.txt; returns
        the path."""
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{self.experiment}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render() + "\n")
        return path

    def emit(self) -> str:
        """Save and return the rendered table (callers print it)."""
        self.save()
        return self.render()
