"""Deterministic random-number helpers.

Every stochastic component of the simulator (backoff jitter, multicast loss,
workload generators) draws from a stream derived from a single experiment
seed, so complete runs are bit-for-bit reproducible.
"""

from __future__ import annotations

import random


def derive_rng(seed: int, *scope: object) -> random.Random:
    """Return a :class:`random.Random` seeded from ``seed`` and a scope tag.

    The scope tuple (e.g. ``("backoff", node_id, thread_id)``) keeps the
    streams of independent components decorrelated while staying
    deterministic for a fixed experiment seed.
    """
    return random.Random((seed, *[str(part) for part in scope]).__repr__())


class ZipfGenerator:
    """Zipfian integer generator over ``[0, item_count)``.

    Implements the Gray et al. rejection-free method used by YCSB so the
    key-popularity skew matches the original workload generator.
    """

    def __init__(self, item_count: int, theta: float = 0.99,
                 rng: random.Random | None = None) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self._items = item_count
        self._theta = theta
        self._rng = rng if rng is not None else random.Random(0)
        self._zetan = self._zeta(item_count, theta)
        self._alpha = 1.0 / (1.0 - theta)
        zeta2 = self._zeta(2, theta)
        self._eta = ((1 - (2.0 / item_count) ** (1 - theta))
                     / (1 - zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        """Draw the next zipf-distributed item index."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self._theta:
            return 1
        return int(self._items
                   * (self._eta * u - self._eta + 1) ** self._alpha)
