"""Unit constants and conversion helpers.

The simulator clock counts **nanoseconds** (as floats). All sizes are in
bytes. Bandwidths are stored as bytes per nanosecond, which conveniently
equals gigabytes per second (1 B/ns == 1 GB/s).
"""

from __future__ import annotations

# -- sizes (bytes) -----------------------------------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# -- time (nanoseconds) ------------------------------------------------------
NANOSECONDS = 1.0
MICROSECONDS = 1_000.0
MILLISECONDS = 1_000_000.0
SECONDS = 1_000_000_000.0

# -- bandwidth ---------------------------------------------------------------
#: One Gbps expressed in bytes per nanosecond (= 0.125 B/ns).
GBPS = 1e9 / 8 / SECONDS


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert a link speed in gigabits per second to bytes per nanosecond."""
    return gbps * GBPS


def bandwidth_gib_per_s(num_bytes: float, elapsed_ns: float) -> float:
    """Return the achieved bandwidth in GiB/s for a transfer of
    ``num_bytes`` bytes over ``elapsed_ns`` nanoseconds."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_ns}")
    bytes_per_second = num_bytes / (elapsed_ns / SECONDS)
    return bytes_per_second / GIB


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count, e.g. ``'8.0 KiB'``."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_time(ns: float) -> str:
    """Human-readable duration from nanoseconds, e.g. ``'12.5 us'``."""
    if ns < MICROSECONDS:
        return f"{ns:.0f} ns"
    if ns < MILLISECONDS:
        return f"{ns / MICROSECONDS:.2f} us"
    if ns < SECONDS:
        return f"{ns / MILLISECONDS:.2f} ms"
    return f"{ns / SECONDS:.3f} s"
