"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Invalid configuration value or inconsistent setup."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class RdmaError(ReproError):
    """Errors raised by the RDMA verbs layer (bad keys, QP state, ...)."""


class MemoryRegionError(RdmaError):
    """Out-of-bounds access or invalid remote key on a memory region."""


class QpStateError(RdmaError):
    """Operation not valid in the queue pair's current state."""


class QpFlushedError(RdmaError):
    """A posted work request completed in error: the transport gave up on
    the peer (RC retry budget exceeded — the peer crashed, or the path
    stayed down beyond the detection bound). The matching completion-queue
    entry carries ``WcStatus.RETRY_EXC_ERR`` / ``WcStatus.WR_FLUSH_ERR``."""


class FlowError(ReproError):
    """Errors raised by the DFI flow layer."""


class FlowClosedError(FlowError):
    """Push into (or misuse of) a flow that has already been closed."""


class FlowAbortedError(FlowError):
    """A source aborted the flow; raised from the targets' consume path
    (the fault-tolerance extension — paper Section 7 future work)."""


class FlowTimeoutError(FlowError):
    """A blocking flow operation made no progress within its configured
    bound (``FlowOptions.peer_timeout`` on the consume side,
    ``FlowOptions.max_backoff_retries`` on the ring-full push side) and
    the peer is not *known* to have failed — the peer may merely be slow
    or stalled. Compare :class:`FlowPeerFailedError`."""


class FlowPeerFailedError(FlowError):
    """A flow peer (source or target endpoint) is gone: its node crashed
    or the path to it stayed unreachable beyond the failure-detection
    bound. Raised from push/close on the source side (per the flow's
    ``on_target_failure`` policy) and from consume on the target side."""


class SchemaError(FlowError):
    """Tuple does not match the flow schema, or invalid schema definition."""


class RegistryError(FlowError):
    """Flow registry lookup/initialization failures (unknown or duplicate
    flow names, source/target index out of range, ...)."""


class MpiError(ReproError):
    """Errors raised by the MPI baseline runtime."""
