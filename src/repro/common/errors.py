"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Invalid configuration value or inconsistent setup."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class RdmaError(ReproError):
    """Errors raised by the RDMA verbs layer (bad keys, QP state, ...)."""


class MemoryRegionError(RdmaError):
    """Out-of-bounds access or invalid remote key on a memory region."""


class QpStateError(RdmaError):
    """Operation not valid in the queue pair's current state."""


class FlowError(ReproError):
    """Errors raised by the DFI flow layer."""


class FlowClosedError(FlowError):
    """Push into (or misuse of) a flow that has already been closed."""


class FlowAbortedError(FlowError):
    """A source aborted the flow; raised from the targets' consume path
    (the fault-tolerance extension — paper Section 7 future work)."""


class SchemaError(FlowError):
    """Tuple does not match the flow schema, or invalid schema definition."""


class RegistryError(FlowError):
    """Flow registry lookup/initialization failures (unknown or duplicate
    flow names, source/target index out of range, ...)."""


class MpiError(ReproError):
    """Errors raised by the MPI baseline runtime."""
