"""Shared utilities: units, errors, configuration, deterministic RNG."""

from repro.common.config import HardwareProfile, MpiProfile
from repro.common.errors import (
    ConfigurationError,
    FlowClosedError,
    FlowError,
    ReproError,
    RdmaError,
    RegistryError,
    SchemaError,
    SimulationError,
)
from repro.common.units import (
    GIB,
    GBPS,
    KIB,
    MIB,
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    SECONDS,
    bandwidth_gib_per_s,
    format_bytes,
    format_time,
    gbps_to_bytes_per_ns,
)

__all__ = [
    "HardwareProfile",
    "MpiProfile",
    "ReproError",
    "SimulationError",
    "RdmaError",
    "FlowError",
    "FlowClosedError",
    "RegistryError",
    "SchemaError",
    "ConfigurationError",
    "KIB",
    "MIB",
    "GIB",
    "GBPS",
    "NANOSECONDS",
    "MICROSECONDS",
    "MILLISECONDS",
    "SECONDS",
    "gbps_to_bytes_per_ns",
    "bandwidth_gib_per_s",
    "format_bytes",
    "format_time",
]
