"""Hardware and software calibration profiles.

The constants below anchor the simulator to the paper's evaluation cluster
(Section 6): 8 nodes, Mellanox ConnectX-5 InfiniBand EDR NICs (100 Gbps),
one SB7890 switch. They are deliberately explicit and overridable so that
experiments can model other fabrics.

See DESIGN.md Section 5 for the calibration rationale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.common.units import MICROSECONDS, gbps_to_bytes_per_ns

#: Kill switch for schema-specialized code generation (``exec``-compiled
#: pack/unpack/fold/route kernels, see :mod:`repro.core.schema`). Set
#: ``REPRO_NO_CODEGEN=1`` to force every hot path onto the generic,
#: pure-``struct`` fallback. Read once at import: the choice must be
#: process-global and stable, because kernels are cached per schema and a
#: mid-run flip would mix code paths within one simulation.
CODEGEN_ENABLED: bool = os.environ.get("REPRO_NO_CODEGEN", "") in ("", "0")


def _read_default_shards() -> int:
    raw = os.environ.get("REPRO_SHARDS", "")
    if raw in ("", "0", "1"):
        return 1
    try:
        shards = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SHARDS must be a positive integer, got {raw!r}") from None
    if shards < 1:
        raise ConfigurationError(
            f"REPRO_SHARDS must be a positive integer, got {raw!r}")
    return shards


#: Default shard count for new :class:`~repro.simnet.cluster.Cluster`
#: objects (``REPRO_SHARDS`` environment knob). 1 keeps the single-queue
#: kernel; >1 selects the sharded kernel
#: (:class:`~repro.simnet.shard.ShardedEnvironment`), which is clamped to
#: the node count and produces bit-identical simulated metrics (see
#: ``simnet/shard.py``). Read once at import, like ``CODEGEN_ENABLED``:
#: the kernel is chosen at cluster construction and must not flip mid-run.
DEFAULT_SHARDS: int = _read_default_shards()


def codegen_enabled() -> bool:
    """True when schema codegen kernels are active (the default).

    Generated kernels are wall-clock accelerators only — they produce
    bit-identical bytes, partitions and aggregates to the generic
    ``struct`` path and are never consulted for simulated-time decisions,
    so this toggle cannot move a single simulated timestamp.
    """
    return CODEGEN_ENABLED


#: Kill switch for the steady-state event-elision fast path (fused
#: segment-train macro-events in ``rdma/qp.py`` and the merged wake+poll
#: in ``core/shuffle.py``). Set ``REPRO_NO_FASTPATH=1`` to force every
#: flow onto the event-by-event path. Read once at import, like
#: ``CODEGEN_ENABLED``: endpoints capture the choice at construction and
#: a mid-run flip would mix scheduling styles within one simulation.
#: The fast path is a wall-clock accelerator only — it books the exact
#: same link/NIC reservations and fires every timing-visible action at
#: the same ``(time, seq)`` instants as the event-by-event path (see
#: DESIGN.md, "Steady-state event elision").
FASTPATH_ENABLED: bool = os.environ.get("REPRO_NO_FASTPATH", "") in ("", "0")


def fastpath_enabled() -> bool:
    """True when the steady-state event-elision fast path is active
    (the default). Flows de-elide dynamically — a fault plan or
    congestion plane turning active routes every subsequent flush back
    through the event-by-event train regardless of this flag."""
    return FASTPATH_ENABLED


@dataclass(frozen=True)
class HardwareProfile:
    """Physical model of one cluster: links, switch, NIC and CPU costs.

    All times are nanoseconds, all sizes bytes, bandwidths bytes/ns.
    """

    #: Per-port link bandwidth. 100 Gbps EDR = 12.5 GB/s = 11.64 GiB/s.
    link_bandwidth: float = gbps_to_bytes_per_ns(100.0)
    #: One-way propagation + switch forwarding latency per hop pair.
    wire_latency: float = 0.85 * MICROSECONDS
    #: NIC work-request processing *latency* (per WQE, non-inlined).
    nic_processing: float = 150.0
    #: NIC processing latency for inlined sends (payload inside the WQE).
    nic_processing_inline: float = 70.0
    #: NIC pipeline service interval: one WQE enters the pipeline every
    #: this many ns (~40M WQE/s — processing is pipelined, so the rate is
    #: far higher than 1/latency, as on real ConnectX-class NICs).
    nic_wqe_service: float = 25.0
    #: Largest payload that can be inlined into a work request.
    max_inline_size: int = 220
    #: Fixed CPU cost of pushing one tuple into a flow (branching, routing).
    cpu_tuple_overhead: float = 12.0
    #: CPU cost per byte copied into a send buffer (memcpy throughput).
    cpu_copy_per_byte: float = 0.065
    #: CPU cost of polling a local footer / completion queue once.
    cpu_poll_cost: float = 40.0
    #: CPU cost to post one RDMA work request from software.
    cpu_post_cost: float = 60.0
    #: Probability that a multicast (UD) packet is dropped in the fabric.
    multicast_loss_probability: float = 0.0
    #: Latency of a loopback transfer (same-node RDMA through the local NIC).
    loopback_latency: float = 200.0
    #: Effective copy bandwidth for loopback transfers (memory-bus bound,
    #: far above the wire speed).
    loopback_bandwidth: float = gbps_to_bytes_per_ns(400.0)
    #: Per-node CPU frequency scale factors, e.g. ``{3: 0.5}`` makes node 3 a
    #: straggler running at half speed. Nodes default to 1.0.
    cpu_frequency_scale: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise ConfigurationError("link_bandwidth must be positive")
        if self.wire_latency < 0:
            raise ConfigurationError("wire_latency must be non-negative")
        if not 0.0 <= self.multicast_loss_probability <= 1.0:
            raise ConfigurationError(
                "multicast_loss_probability must be in [0, 1]")
        for node, scale in self.cpu_frequency_scale.items():
            if scale <= 0:
                raise ConfigurationError(
                    f"cpu frequency scale for node {node} must be positive, "
                    f"got {scale}")

    def cpu_scale(self, node_id: int) -> float:
        """Frequency scale factor for ``node_id`` (1.0 unless overridden)."""
        return self.cpu_frequency_scale.get(node_id, 1.0)

    def with_straggler(self, node_id: int, scale: float) -> "HardwareProfile":
        """Return a copy of the profile with ``node_id`` slowed to
        ``scale`` times its CPU frequency (paper Fig. 12 setup)."""
        scales = dict(self.cpu_frequency_scale)
        scales[node_id] = scale
        return replace(self, cpu_frequency_scale=scales)

    def with_multicast_loss(self, probability: float) -> "HardwareProfile":
        """Return a copy with multicast loss injection enabled."""
        return replace(self, multicast_loss_probability=probability)


@dataclass(frozen=True)
class MpiProfile:
    """Software cost model for the MPI baseline (HPC-X-like behaviour).

    The constants encode the properties the paper's Experiment 2 measures:
    per-message software overhead with no batching, a process-global latch
    under ``MPI_THREAD_MULTIPLE`` whose contention grows with thread count,
    and shared-memory surcharges for the multi-process alternative.
    """

    #: Software overhead charged per MPI point-to-point message (matching,
    #: envelope handling). Applies to eager and rendezvous alike.
    per_message_overhead: float = 250.0
    #: Messages up to this size use the eager protocol (one copy, no
    #: handshake); larger messages pay a rendezvous round trip.
    eager_threshold: int = 8192
    #: Extra CPU copy cost per byte for eager sends (bounce buffer copy).
    eager_copy_per_byte: float = 0.10
    #: Time the process-global latch is held per MPI call when the runtime
    #: is initialized with ``MPI_THREAD_MULTIPLE``.
    thread_latch_hold: float = 400.0
    #: Additional latch hold per *contending* thread; models the quadratic
    #: collapse seen in the paper's Fig. 10b.
    thread_latch_contention: float = 450.0
    #: Per-byte surcharge for accessing shared data structures across
    #: process boundaries in multi-process mode.
    shm_access_per_byte: float = 0.012
    #: Synchronization overhead of entering one collective operation.
    collective_entry_overhead: float = 3_000.0

    def __post_init__(self) -> None:
        if self.eager_threshold < 0:
            raise ConfigurationError("eager_threshold must be non-negative")
        if self.per_message_overhead < 0:
            raise ConfigurationError(
                "per_message_overhead must be non-negative")


#: Default profile mirroring the paper's cluster.
DEFAULT_HARDWARE = HardwareProfile()
#: Default MPI software model.
DEFAULT_MPI = MpiProfile()
