"""Tests for RC/UD queue pairs: writes, reads, atomics, send/recv, multicast."""

import pytest

from repro.common import HardwareProfile
from repro.common.errors import MemoryRegionError, RdmaError
from repro.rdma import UD_MTU, MulticastGroup, Opcode, get_nic
from repro.rdma.qp import _ORDERED_TAIL
from repro.simnet import Cluster


def make_pair(node_count=2):
    cluster = Cluster(node_count=node_count)
    nic0 = get_nic(cluster.node(0))
    nic1 = get_nic(cluster.node(1))
    return cluster, nic0, nic1


# -- one-sided WRITE ---------------------------------------------------------

def test_write_lands_in_remote_memory():
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(256)
    qp = nic0.create_qp(cluster.node(1))

    def sender(env):
        wr = qp.post_write(b"payload!", remote.rkey, 100)
        yield wr.done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    assert remote.read(100, 8) == b"payload!"


def test_write_done_includes_ack_round_trip():
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(64)
    qp = nic0.create_qp(cluster.node(1))
    times = {}

    def sender(env):
        wr = qp.post_write(b"x" * 32, remote.rkey, 0)
        yield wr.done
        times["done"] = env.now

    cluster.env.process(sender(cluster.env))
    cluster.run()
    # done >= two wire latencies (there and ack back)
    assert times["done"] >= 2 * cluster.profile.wire_latency


def test_write_dma_commits_payload_before_footer():
    """The increasing-address DMA guarantee DFI's footer protocol needs:
    mid-flight, the head of a large write is visible while its tail is not."""
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(64 * 1024)
    qp = nic0.create_qp(cluster.node(1))
    size = 32 * 1024
    payload = bytes([0xAB]) * size

    def sender(env):
        wr = qp.post_write(payload, remote.rkey, 0)
        yield wr.done

    proc = cluster.env.process(sender(cluster.env))
    # Probe inside the window between the prefix commit (tail serialization
    # time before arrival) and the tail commit at arrival.
    serialization = size / cluster.profile.link_bandwidth
    arrival = (cluster.profile.nic_processing + cluster.profile.wire_latency
               + serialization)
    tail_window = _ORDERED_TAIL / cluster.profile.link_bandwidth
    probe_time = arrival - tail_window / 2
    cluster.run(until=probe_time)
    head_committed = remote.read(0, 1) == b"\xab"
    tail_committed = remote.read(size - 1, 1) == b"\xab"
    assert head_committed and not tail_committed
    cluster.run()
    assert remote.read(size - 1, 1) == b"\xab"
    assert proc.ok


def test_small_write_commits_atomically_with_tail():
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(128)
    qp = nic0.create_qp(cluster.node(1))
    payload = b"z" * _ORDERED_TAIL  # exactly the tail size: single commit

    def sender(env):
        yield qp.post_write(payload, remote.rkey, 0).done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    assert remote.read(0, len(payload)) == payload


def test_write_bounds_checked_at_post_time():
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(16)
    qp = nic0.create_qp(cluster.node(1))
    with pytest.raises(MemoryRegionError):
        qp.post_write(b"x" * 32, remote.rkey, 0)
    with pytest.raises(MemoryRegionError):
        qp.post_write(b"x", 424242, 0)


def test_zero_length_write_rejected():
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(16)
    qp = nic0.create_qp(cluster.node(1))
    with pytest.raises(RdmaError):
        qp.post_write(b"", remote.rkey, 0)


def test_selective_signaling():
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(1024)
    qp = nic0.create_qp(cluster.node(1))

    def sender(env):
        unsignaled = qp.post_write(b"a" * 8, remote.rkey, 0, signaled=False)
        signaled = qp.post_write(b"b" * 8, remote.rkey, 8, signaled=True,
                                 wr_id="wrap")
        yield unsignaled.done
        yield signaled.done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    completions = qp.send_cq.poll()
    assert len(completions) == 1
    assert completions[0].wr_id == "wrap"
    assert completions[0].opcode is Opcode.WRITE


def test_write_payload_snapshot_at_post_time():
    """Mutating the source buffer after posting must not corrupt the wire."""
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(64)
    qp = nic0.create_qp(cluster.node(1))
    buffer = bytearray(b"original")

    def sender(env):
        wr = qp.post_write(buffer, remote.rkey, 0)
        buffer[:] = b"CLOBBER!"
        yield wr.done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    assert remote.read(0, 8) == b"original"


def test_nic_engine_limits_message_rate():
    """Back-to-back tiny writes are paced by WQE processing time."""
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(4096)
    qp = nic0.create_qp(cluster.node(1))
    count = 100
    done_at = {}

    def sender(env):
        wrs = [qp.post_write(b"x", remote.rkey, i) for i in range(count)]
        yield env.all_of([wr.done for wr in wrs])
        done_at["t"] = env.now

    cluster.env.process(sender(cluster.env))
    cluster.run()
    min_expected = count * cluster.profile.nic_wqe_service
    assert done_at["t"] >= min_expected


# -- one-sided READ ----------------------------------------------------------

def test_read_fetches_remote_bytes():
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(64)
    remote.write(8, b"remote-data")
    local = nic0.register_memory(64)
    qp = nic0.create_qp(cluster.node(1))
    results = {}

    def reader(env):
        wr = qp.post_read(local, 0, remote.rkey, 8, 11)
        data = yield wr.done
        results["data"] = data

    cluster.env.process(reader(cluster.env))
    cluster.run()
    assert results["data"] == b"remote-data"
    assert local.read(0, 11) == b"remote-data"


def test_read_takes_a_full_round_trip():
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(64)
    local = nic0.register_memory(64)
    qp = nic0.create_qp(cluster.node(1))
    times = {}

    def reader(env):
        yield qp.post_read(local, 0, remote.rkey, 0, 8).done
        times["rtt"] = env.now

    cluster.env.process(reader(cluster.env))
    cluster.run()
    assert times["rtt"] >= 2 * cluster.profile.wire_latency


def test_read_snapshots_remote_state_at_request_arrival():
    """A write committed long after the read request arrives is not seen."""
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(64)
    remote.write(0, b"AAAA")
    local = nic0.register_memory(64)
    qp = nic0.create_qp(cluster.node(1))
    results = {}

    def reader(env):
        wr = qp.post_read(local, 0, remote.rkey, 0, 4)
        data = yield wr.done
        results["data"] = data

    def late_writer(env):
        # Mutate remote memory well after the request has arrived.
        yield env.timeout(10 * cluster.profile.wire_latency)
        remote.write(0, b"BBBB")

    cluster.env.process(reader(cluster.env))
    cluster.env.process(late_writer(cluster.env))
    cluster.run()
    assert results["data"] == b"AAAA"


def test_read_length_validation():
    cluster, nic0, nic1 = make_pair()
    remote = nic1.register_memory(16)
    local = nic0.register_memory(16)
    qp = nic0.create_qp(cluster.node(1))
    with pytest.raises(RdmaError):
        qp.post_read(local, 0, remote.rkey, 0, 0)
    with pytest.raises(MemoryRegionError):
        qp.post_read(local, 0, remote.rkey, 8, 16)


# -- atomics -----------------------------------------------------------------

def test_fetch_add_returns_old_and_increments():
    cluster, nic0, nic1 = make_pair()
    counter = nic1.register_memory(8)
    qp = nic0.create_qp(cluster.node(1))
    results = []

    def worker(env):
        for _ in range(3):
            old = yield qp.post_fetch_add(counter.rkey, 0, 1).done
            results.append(old)

    cluster.env.process(worker(cluster.env))
    cluster.run()
    assert results == [0, 1, 2]
    assert counter.read_u64(0) == 3


def test_concurrent_fetch_add_yields_unique_sequence_numbers():
    """The property the DFI tuple sequencer relies on."""
    cluster = Cluster(node_count=4)
    sequencer_nic = get_nic(cluster.node(0))
    counter = sequencer_nic.register_memory(8)
    drawn = []

    def client(env, node):
        qp = get_nic(node).create_qp(cluster.node(0))
        for _ in range(20):
            old = yield qp.post_fetch_add(counter.rkey, 0, 1).done
            drawn.append(old)

    for node_id in range(1, 4):
        node = cluster.node(node_id)
        node.spawn(client(cluster.env, node))
    cluster.run()
    assert sorted(drawn) == list(range(60))
    assert counter.read_u64(0) == 60


def test_compare_swap_over_the_wire():
    cluster, nic0, nic1 = make_pair()
    word = nic1.register_memory(8)
    word.write_u64(0, 5)
    qp = nic0.create_qp(cluster.node(1))
    results = []

    def worker(env):
        old = yield qp.post_compare_swap(word.rkey, 0, 5, 77).done
        results.append(old)
        old = yield qp.post_compare_swap(word.rkey, 0, 5, 88).done
        results.append(old)

    cluster.env.process(worker(cluster.env))
    cluster.run()
    assert results == [5, 77]
    assert word.read_u64(0) == 77


# -- two-sided SEND/RECV -------------------------------------------------------

def connected_pair(cluster, nic0, nic1):
    qp0 = nic0.create_qp(cluster.node(1))
    qp1 = nic1.create_qp(cluster.node(0))
    qp0.connect(qp1)
    return qp0, qp1


def test_send_recv_roundtrip():
    cluster, nic0, nic1 = make_pair()
    qp0, qp1 = connected_pair(cluster, nic0, nic1)
    rx = nic1.register_memory(256)
    qp1.post_recv(rx, 0, 256, wr_id="r0")

    def sender(env):
        yield qp0.post_send(b"two-sided", imm=42).done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    completions = qp1.recv_cq.poll()
    assert len(completions) == 1
    wc = completions[0]
    assert wc.wr_id == "r0"
    assert wc.byte_len == 9
    assert wc.imm == 42
    assert rx.read(0, 9) == b"two-sided"


def test_send_buffered_until_recv_posted():
    cluster, nic0, nic1 = make_pair()
    qp0, qp1 = connected_pair(cluster, nic0, nic1)
    rx = nic1.register_memory(64)

    def sender(env):
        yield qp0.post_send(b"early").done

    def receiver(env):
        yield env.timeout(100_000)
        qp1.post_recv(rx, 0, 64)

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    assert rx.read(0, 5) == b"early"
    assert len(qp1.recv_cq.poll()) == 1


def test_send_without_connect_rejected():
    cluster, nic0, nic1 = make_pair()
    qp = nic0.create_qp(cluster.node(1))
    with pytest.raises(RdmaError, match="unconnected"):
        qp.post_send(b"nope")


def test_connect_mismatched_pair_rejected():
    cluster = Cluster(node_count=3)
    nic0 = get_nic(cluster.node(0))
    nic2 = get_nic(cluster.node(2))
    qp0 = nic0.create_qp(cluster.node(1))
    qp2 = nic2.create_qp(cluster.node(0))
    with pytest.raises(RdmaError, match="mismatch"):
        qp0.connect(qp2)


def test_recv_buffer_too_small_raises():
    cluster, nic0, nic1 = make_pair()
    qp0, qp1 = connected_pair(cluster, nic0, nic1)
    rx = nic1.register_memory(64)
    qp1.post_recv(rx, 0, 4)

    def sender(env):
        yield qp0.post_send(b"way too large").done

    cluster.env.process(sender(cluster.env))
    with pytest.raises(RdmaError, match="receive buffer"):
        cluster.run()


# -- UD multicast ----------------------------------------------------------

def make_multicast(node_count=4, profile=None, seed=0):
    cluster = Cluster(node_count=node_count,
                      profile=profile or HardwareProfile(), seed=seed)
    group = MulticastGroup("grp")
    receivers = []
    for node_id in range(1, node_count):
        nic = get_nic(cluster.node(node_id))
        qp = nic.create_ud_qp()
        rx = nic.register_memory(UD_MTU * 8)
        for slot in range(8):
            qp.post_recv(rx, slot * UD_MTU, UD_MTU)
        group.join(qp)
        receivers.append((qp, rx))
    sender_qp = get_nic(cluster.node(0)).create_ud_qp()
    return cluster, group, sender_qp, receivers


def test_multicast_delivers_to_all_members():
    cluster, group, sender_qp, receivers = make_multicast()

    def sender(env):
        yield sender_qp.post_send_multicast(group, b"replicated").done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    for qp, rx in receivers:
        completions = qp.recv_cq.poll()
        assert len(completions) == 1
        assert rx.read(0, 10) == b"replicated"


def test_multicast_mtu_enforced():
    cluster, group, sender_qp, _ = make_multicast()
    with pytest.raises(RdmaError, match="MTU"):
        sender_qp.post_send_multicast(group, b"x" * (UD_MTU + 1))


def test_multicast_drop_when_no_recv_posted():
    cluster = Cluster(node_count=2)
    group = MulticastGroup("grp")
    rx_nic = get_nic(cluster.node(1))
    qp = rx_nic.create_ud_qp()  # no recvs posted
    group.join(qp)
    sender_qp = get_nic(cluster.node(0)).create_ud_qp()

    def sender(env):
        yield sender_qp.post_send_multicast(group, b"lost").done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    assert rx_nic.rx_dropped_no_recv == 1
    assert len(qp.recv_cq.poll()) == 0


def test_multicast_loss_injection_reaches_ud_layer():
    profile = HardwareProfile(multicast_loss_probability=0.5)
    cluster, group, sender_qp, receivers = make_multicast(
        node_count=3, profile=profile, seed=11)
    rounds = 60

    def sender(env):
        for _ in range(rounds):
            yield sender_qp.post_send_multicast(group, b"maybe").done
            yield env.timeout(1000)

    cluster.env.process(sender(cluster.env))
    cluster.run()
    delivered = sum(qp.recv_cq.pushed for qp, _rx in receivers)
    assert delivered < rounds * len(receivers)
    assert delivered > 0


def test_group_join_leave():
    cluster = Cluster(node_count=2)
    group = MulticastGroup("g")
    qp = get_nic(cluster.node(1)).create_ud_qp()
    group.join(qp)
    assert len(group) == 1
    with pytest.raises(RdmaError):
        group.join(qp)
    group.leave(qp)
    assert len(group) == 0
    with pytest.raises(RdmaError):
        group.leave(qp)


def test_multicast_to_empty_group_rejected():
    cluster = Cluster(node_count=2)
    group = MulticastGroup("empty")
    sender_qp = get_nic(cluster.node(0)).create_ud_qp()
    with pytest.raises(RdmaError, match="no members"):
        sender_qp.post_send_multicast(group, b"x")
