"""Tests for the observability plane's counters and histograms.

Three contracts from docs/observability.md are pinned here:

* **exactness** — counters agree with hand-computed ground truth on a
  flow whose segment arithmetic is done by hand;
* **determinism** — two same-seed runs produce bit-identical snapshots
  (histograms included: bucketing is a pure function of simulated time);
* **zero cost when off** — a run without ``enable_observability`` keeps
  ``cluster.obs`` / ``node.metrics`` at ``None`` and allocates no
  registries, so hot paths pay exactly one attribute check.
"""

import pytest

from repro.core import (
    FLOW_END,
    AggregationSpec,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Schema,
)
from repro.obs import Histogram, MetricsRegistry, render_report
from repro.simnet import Cluster

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))


def _run_two_segment_shuffle(enable_obs: bool = True):
    """16 x 16 B tuples through a 1:1 bandwidth shuffle with 128 B
    segments: exactly 8 tuples per segment, so the data is exactly two
    full segments plus the close-marker flush."""
    cluster = Cluster(node_count=2)
    if enable_obs:
        cluster.enable_observability()
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("obs", [Endpoint(0, 0)], [Endpoint(1, 0)],
                          SCHEMA, shuffle_key="key",
                          options=FlowOptions(segment_size=128))
    consumed = []

    def src():
        source = yield from dfi.open_source("obs", 0)
        for i in range(16):
            yield from source.push((i, i * 10))
        yield from source.close()

    def tgt():
        target = yield from dfi.open_target("obs", 0)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                break
            consumed.append(item)

    cluster.env.process(src())
    cluster.env.process(tgt())
    cluster.run()
    assert len(consumed) == 16
    return cluster


class TestCounterExactness:
    def test_two_segment_shuffle_counters(self):
        cluster = _run_two_segment_shuffle()
        src = cluster.node(0).metrics
        tgt = cluster.node(1).metrics
        # 16 tuples at 8 per segment: two full data segments, plus the
        # close() flush carrying the close marker = 3 flushes.
        assert src.get("core.tuples_pushed") == 16
        assert src.get("core.segments_flushed") == 3
        assert tgt.get("core.tuples_consumed") == 16
        assert tgt.get("core.segments_consumed") == 3
        # The first flush pays a cold footer read; the pipelined pre-read
        # covers the remaining two (paper Section 5.2).
        assert src.get("core.preread_misses") == 1
        assert src.get("core.preread_hits") == 2
        # Every flush is one posted WQE on the source NIC.
        assert src.get("rdma.wqes_posted") == 3

    def test_segment_latency_histogram_samples(self):
        cluster = _run_two_segment_shuffle()
        hist = cluster.node(1).metrics.histograms["core.seg_latency"]
        # One write->consume latency sample per drained segment, always
        # positive (consumption strictly follows the flush).
        assert hist.count == 3
        assert hist.min > 0
        assert hist.total >= 3 * hist.min

    def test_combiner_aggregation_counter(self):
        cluster = Cluster(node_count=3)
        cluster.enable_observability()
        dfi = DfiRuntime(cluster)
        dfi.init_combiner_flow(
            "agg", [Endpoint(1, 0), Endpoint(2, 0)], Endpoint(0, 0),
            SCHEMA, aggregation=AggregationSpec("sum", "key", "value"),
            options=FlowOptions(segment_size=256))
        out = {}

        def src(index):
            source = yield from dfi.open_source("agg", index)
            for i in range(50):
                yield from source.push((i % 4, 1))
            yield from source.close()

        def tgt():
            target = yield from dfi.open_target("agg")
            out["aggregates"] = yield from target.consume_all()

        for index in range(2):
            cluster.env.process(src(index))
        cluster.env.process(tgt())
        cluster.run()
        assert sum(out["aggregates"].values()) == 100
        assert cluster.node(0).metrics.get("core.tuples_aggregated") == 100
        assert cluster.node(0).metrics.get("core.tuples_consumed") == 100


class TestDeterminism:
    def test_same_seed_runs_snapshot_bit_identical(self):
        first = _run_two_segment_shuffle().metrics_snapshot()
        second = _run_two_segment_shuffle().metrics_snapshot()
        assert first == second

    def test_observability_does_not_move_simulated_time(self):
        bare = _run_two_segment_shuffle(enable_obs=False)
        with_obs = _run_two_segment_shuffle(enable_obs=True)
        assert bare.now == with_obs.now


class TestDisabledMode:
    def test_disabled_leaves_no_registries(self):
        cluster = _run_two_segment_shuffle(enable_obs=False)
        assert cluster.obs is None
        for node in cluster.nodes:
            assert node.metrics is None
        snapshot = cluster.metrics_snapshot()
        assert snapshot["nodes"] == {}
        # The always-on infrastructure tallies still render.
        assert "nics" in render_report(snapshot) or snapshot["nics"]

    def test_enable_is_idempotent(self):
        cluster = Cluster(node_count=2)
        plane = cluster.enable_observability()
        assert cluster.enable_observability() is plane
        assert cluster.node(0).metrics is plane.registry(0)

    def test_trace_option_auto_enables_plane(self):
        cluster = Cluster(node_count=2)
        assert cluster.obs is None
        dfi = DfiRuntime(cluster)
        dfi.init_shuffle_flow("auto", [Endpoint(0, 0)], [Endpoint(1, 0)],
                              SCHEMA, shuffle_key="key",
                              options=FlowOptions(trace=True))

        def src():
            source = yield from dfi.open_source("auto", 0)
            yield from source.push((1, 2))
            yield from source.close()

        def tgt():
            target = yield from dfi.open_target("auto", 0)
            while (yield from target.consume()) is not FLOW_END:
                pass

        cluster.env.process(src())
        cluster.env.process(tgt())
        cluster.run()
        assert cluster.obs is not None
        assert "auto" in cluster.obs.tracers
        assert cluster.obs.tracers["auto"].emitted > 0


class TestPrimitives:
    def test_histogram_pow2_buckets(self):
        hist = Histogram()
        for value in (0, 1, 2, 3, 4, 7, 8, 1023, -5):
            hist.record(value)
        # bit_length buckets: 0 -> 0, 1 -> 1, {2,3} -> 2, {4..7} -> 3,
        # 8 -> 4, 1023 -> 10; negatives clamp to bucket 0.
        assert hist.buckets == {0: 2, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1}
        assert hist.count == 9
        assert hist.min == 0 and hist.max == 1023
        snap = hist.snapshot()
        assert snap["count"] == 9 and snap["buckets"][10] == 1

    def test_registry_counters_and_report(self):
        registry = MetricsRegistry(7)
        registry.inc("core.tuples_pushed")
        registry.inc("core.tuples_pushed", 41)
        registry.observe("core.seg_latency", 960.0)
        assert registry.get("core.tuples_pushed") == 42
        assert registry.get("core.never_touched") == 0
        report = registry.report()
        assert "node 7" in report
        assert "core.tuples_pushed" in report and "42" in report

    def test_histogram_mean_empty(self):
        assert Histogram().mean == 0.0


@pytest.mark.parametrize("multicast", [False, True])
def test_replicate_counters(multicast):
    cluster = Cluster(node_count=3)
    cluster.enable_observability()
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "rep", [Endpoint(0, 0)], [Endpoint(1, 0), Endpoint(2, 0)],
        SCHEMA, options=FlowOptions(segment_size=128, multicast=multicast))
    received = [0]

    def src():
        source = yield from dfi.open_source("rep", 0)
        for i in range(16):
            yield from source.push((i, i))
        yield from source.close()

    def tgt(index):
        target = yield from dfi.open_target("rep", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                break
            received[0] += 1

    cluster.env.process(src())
    for index in range(2):
        cluster.env.process(tgt(index))
    cluster.run()
    assert received[0] == 32
    assert cluster.node(0).metrics.get("core.tuples_pushed") == 16
    delivered = sum(cluster.node(1 + n).metrics.get("core.tuples_consumed")
                    for n in range(2))
    assert delivered == 32
