"""Integration tests for the three distributed join implementations."""

import pytest

from repro.apps.join import (
    run_dfi_radix_join,
    run_dfi_replicate_join,
    run_mpi_radix_join,
)
from repro.core import FlowOptions
from repro.simnet import Cluster
from repro.workloads import generate_relation

#: Small scale keeps the suite fast; correctness is size-independent.
N = 16_000
OPTS = FlowOptions(segment_size=512, source_segments=4, target_segments=4,
                   credit_threshold=2)


@pytest.fixture(scope="module")
def relations():
    inner = generate_relation(N, unique=True, seed=1)
    outer = generate_relation(N, key_range=N, seed=2)
    return inner, outer


def test_dfi_radix_join_correct(relations):
    inner, outer = relations
    result = run_dfi_radix_join(Cluster(node_count=4), inner, outer,
                                workers_per_node=2, options=OPTS)
    assert result.matches == N  # PK/FK join: every outer tuple matches
    assert result.workers == 8
    assert set(result.phases) == {"network_partition", "local_partition",
                                  "build_probe"}
    assert result.runtime > 0


def test_mpi_radix_join_correct(relations):
    inner, outer = relations
    result = run_mpi_radix_join(Cluster(node_count=4), inner, outer,
                                ranks_per_node=2)
    assert result.matches == N
    assert set(result.phases) == {"histogram", "network_partition",
                                  "sync_barrier", "local_partition",
                                  "build_probe"}


def test_mpi_join_pays_histogram_and_barrier(relations):
    inner, outer = relations
    result = run_mpi_radix_join(Cluster(node_count=4), inner, outer,
                                ranks_per_node=2)
    assert result.phases["histogram"] > 0
    assert result.phases["sync_barrier"] >= 0


def test_replicate_join_correct(relations):
    inner, outer = relations
    small_inner = generate_relation(N // 100, unique=True, seed=3)
    small_outer = generate_relation(N, key_range=N // 100, seed=4)
    result = run_dfi_replicate_join(Cluster(node_count=4), small_inner,
                                    small_outer, workers_per_node=2)
    assert result.matches == N
    assert set(result.phases) == {"network_replication", "build", "probe"}


def test_replicate_join_naive_transport_also_correct():
    small_inner = generate_relation(100, unique=True, seed=5)
    outer = generate_relation(4000, key_range=100, seed=6)
    result = run_dfi_replicate_join(Cluster(node_count=3), small_inner,
                                    outer, workers_per_node=2,
                                    multicast=False)
    assert result.matches == 4000


def test_dfi_join_beats_mpi_at_streaming_scale():
    """The Fig. 13 headline: with enough data per channel to stream, the
    DFI join (no histogram, no barrier, overlap) beats the MPI join."""
    size = 200_000
    inner = generate_relation(size, unique=True, seed=7)
    outer = generate_relation(size, key_range=size, seed=8)
    options = FlowOptions(segment_size=1024, source_segments=8,
                          target_segments=8, credit_threshold=4)
    dfi = run_dfi_radix_join(Cluster(node_count=4), inner, outer,
                             workers_per_node=2, options=options)
    mpi = run_mpi_radix_join(Cluster(node_count=4), inner, outer,
                             ranks_per_node=2)
    assert dfi.matches == mpi.matches == size
    assert dfi.runtime < mpi.runtime


def test_replicate_join_beats_radix_for_small_inner():
    """The Fig. 14 effect: with a tiny inner table, replicating it beats
    shuffling the big outer relation."""
    outer_size = 120_000
    inner = generate_relation(outer_size // 100, unique=True, seed=9)
    outer = generate_relation(outer_size, key_range=outer_size // 100,
                              seed=10)
    options = FlowOptions(segment_size=1024, source_segments=8,
                          target_segments=8, credit_threshold=4)
    radix = run_dfi_radix_join(Cluster(node_count=4), inner, outer,
                               workers_per_node=2, options=options)
    fr = run_dfi_replicate_join(Cluster(node_count=4), inner, outer,
                                workers_per_node=2)
    assert radix.matches == fr.matches == outer_size
    assert fr.runtime < radix.runtime


def test_join_deterministic():
    inner = generate_relation(8_000, unique=True, seed=11)
    outer = generate_relation(8_000, key_range=8_000, seed=12)
    first = run_dfi_radix_join(Cluster(node_count=2), inner, outer,
                               workers_per_node=2, options=OPTS)
    second = run_dfi_radix_join(Cluster(node_count=2), inner, outer,
                                workers_per_node=2, options=OPTS)
    assert first.runtime == second.runtime
    assert first.phases == second.phases


def test_straggler_impact_on_joins():
    """A half-speed node slows both joins (everyone waits for its
    partitions) but DFI's absolute advantage survives. The clean
    straggler asymmetry lives in the pure-shuffle experiment (Fig. 12,
    see bench_fig12), where transfer can hide behind the slow scan."""
    from repro.common import HardwareProfile
    size = 100_000
    inner = generate_relation(size, unique=True, seed=13)
    outer = generate_relation(size, key_range=size, seed=14)
    options = FlowOptions(segment_size=1024, source_segments=8,
                          target_segments=8, credit_threshold=4)

    def run_pair(profile):
        dfi = run_dfi_radix_join(Cluster(node_count=4, profile=profile),
                                 inner, outer, workers_per_node=2,
                                 options=options)
        mpi = run_mpi_radix_join(Cluster(node_count=4, profile=profile),
                                 inner, outer, ranks_per_node=2)
        return dfi.runtime, mpi.runtime

    base_dfi, base_mpi = run_pair(HardwareProfile())
    slow_dfi, slow_mpi = run_pair(HardwareProfile().with_straggler(3, 0.5))
    assert slow_dfi > base_dfi and slow_mpi > base_mpi
    assert slow_dfi < slow_mpi  # DFI stays ahead under the straggler
