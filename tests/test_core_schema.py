"""Tests for DFI's type system and schemas."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SchemaError
from repro.core import Schema, fixed_bytes
from repro.core.types import BUILTIN_TYPES, UINT64, resolve_type


# -- types -------------------------------------------------------------------

def test_builtin_type_sizes_follow_lp64():
    assert BUILTIN_TYPES["int32"].size == 4
    assert BUILTIN_TYPES["int64"].size == 8
    assert BUILTIN_TYPES["double"].size == 8
    assert BUILTIN_TYPES["char"].size == 1


def test_resolve_type_from_name_object_and_int():
    assert resolve_type("uint64") is UINT64
    assert resolve_type(UINT64) is UINT64
    assert resolve_type(12).size == 12


def test_resolve_unknown_type_name():
    with pytest.raises(SchemaError, match="unknown type name"):
        resolve_type("decimal")


def test_fixed_bytes_validation():
    with pytest.raises(SchemaError):
        fixed_bytes(0)
    assert fixed_bytes(7).size == 7


# -- schema construction -------------------------------------------------------

def test_schema_offsets_and_size():
    schema = Schema(("a", "uint32"), ("b", "uint64"), ("c", "double"))
    assert schema.tuple_size == 20
    assert schema.offset_of("a") == 0
    assert schema.offset_of("b") == 4
    assert schema.offset_of("c") == 12
    assert schema.arity == 3


def test_schema_rejects_empty():
    with pytest.raises(SchemaError):
        Schema()


def test_schema_rejects_duplicate_names():
    with pytest.raises(SchemaError, match="duplicate"):
        Schema(("x", "uint64"), ("x", "uint32"))


def test_schema_rejects_bad_field_entry():
    with pytest.raises(SchemaError):
        Schema("not-a-pair")
    with pytest.raises(SchemaError):
        Schema(("", "uint64"))


def test_field_index_by_name_and_position():
    schema = Schema(("k", "uint64"), ("v", "uint64"))
    assert schema.field_index("v") == 1
    assert schema.field_index(0) == 0
    with pytest.raises(SchemaError):
        schema.field_index("missing")
    with pytest.raises(SchemaError):
        schema.field_index(5)


# -- pack / unpack ----------------------------------------------------------

def test_pack_unpack_roundtrip():
    schema = Schema(("k", "uint64"), ("f", "double"), ("pad", 4))
    raw = schema.pack((42, 3.5, b"abcd"))
    assert len(raw) == schema.tuple_size
    assert schema.unpack(raw) == (42, 3.5, b"abcd")


def test_pack_rejects_wrong_arity_or_type():
    schema = Schema(("k", "uint64"),)
    with pytest.raises(SchemaError):
        schema.pack((1, 2))
    with pytest.raises(SchemaError):
        schema.pack(("text",))


def test_pack_into_and_unpack_from():
    schema = Schema(("k", "uint32"), ("v", "uint32"))
    buffer = bytearray(64)
    schema.pack_into(buffer, 8, (7, 9))
    assert schema.unpack_from(buffer, 8) == (7, 9)


def test_unpack_many_segment_payload():
    schema = Schema(("k", "uint32"),)
    buffer = bytearray()
    for i in range(10):
        buffer += schema.pack((i,))
    tuples = schema.unpack_many(buffer, 10)
    assert tuples == [(i,) for i in range(10)]


def test_unpack_wrong_size_rejected():
    schema = Schema(("k", "uint64"),)
    with pytest.raises(SchemaError):
        schema.unpack(b"\x00" * 4)


def test_schema_equality_and_hash():
    a = Schema(("k", "uint64"), ("v", "uint32"))
    b = Schema(("k", "uint64"), ("v", "uint32"))
    c = Schema(("k", "uint64"), ("v", "uint64"))
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


# -- property-based: pack/unpack identity -------------------------------------

@given(st.lists(st.tuples(st.integers(0, 2 ** 64 - 1),
                          st.integers(-2 ** 31, 2 ** 31 - 1)),
                min_size=1, max_size=50))
def test_pack_unpack_identity_property(rows):
    schema = Schema(("key", "uint64"), ("value", "int32"))
    payload = bytearray()
    for row in rows:
        payload += schema.pack(row)
    assert schema.unpack_many(payload, len(rows)) == rows


@given(st.integers(0, 2 ** 64 - 1), st.floats(allow_nan=False,
                                              allow_infinity=False,
                                              width=64))
def test_mixed_schema_roundtrip_property(key, value):
    schema = Schema(("k", "uint64"), ("v", "double"))
    assert schema.unpack(schema.pack((key, value))) == (key, value)
