"""Unit tests for the deterministic fault plane (``repro.simnet.faults``).

Covers plan validation, the four fault kinds end-to-end through the RDMA
layer (healed-blip delay, beyond-detection flush, crash kill + UD drop,
partition reachability, degrade timing), the empty-plan neutrality
guarantee, and bit-reproducibility of both installed planes and randomly
drawn plans.
"""

import pytest

from repro.common.errors import ConfigurationError, QpFlushedError
from repro.rdma import WcStatus, get_nic
from repro.simnet import (
    Cluster,
    FaultPlan,
    link_degrade,
    link_down,
    node_crash,
    partition,
)
from repro.simnet.faults import DEFAULT_DETECTION_TIMEOUT


# -- plan validation ---------------------------------------------------------

def test_entry_validation():
    with pytest.raises(ConfigurationError):
        link_down(1, 1, at=0, duration=100)
    with pytest.raises(ConfigurationError):
        link_down(0, 1, at=-1, duration=100)
    with pytest.raises(ConfigurationError):
        node_crash(0, at=-5)
    with pytest.raises(ConfigurationError):
        partition([[0, 1]], at=0, heal_at=10)  # one group
    with pytest.raises(ConfigurationError):
        partition([[0, 1], [1, 2]], at=0, heal_at=10)  # overlap
    with pytest.raises(ConfigurationError):
        link_degrade(0, at=0, duration=10, factor=1.0)
    with pytest.raises(ConfigurationError):
        FaultPlan(["not-a-fault"])


def test_plan_referencing_unknown_node_rejected_at_install():
    cluster = Cluster(node_count=2)
    with pytest.raises(Exception):
        cluster.install_faults(FaultPlan([node_crash(7, at=100)]))


# -- empty-plan neutrality ---------------------------------------------------

def test_empty_plane_is_inactive_and_inert():
    cluster = Cluster(node_count=2)
    plane = cluster.install_faults(FaultPlan())
    assert plane.active is False
    assert cluster.faults is plane

    remote = get_nic(cluster.node(1)).register_memory(64)
    qp = get_nic(cluster.node(0)).create_qp(cluster.node(1))
    times = {}

    def sender(env):
        yield qp.post_write(b"x" * 32, remote.rkey, 0).done
        times["empty"] = env.now

    cluster.env.process(sender(cluster.env))
    cluster.run()

    # The same transfer on a cluster with no plane installed at all
    # finishes at the identical simulated instant.
    bare = Cluster(node_count=2)
    remote2 = get_nic(bare.node(1)).register_memory(64)
    qp2 = get_nic(bare.node(0)).create_qp(bare.node(1))

    def sender2(env):
        yield qp2.post_write(b"x" * 32, remote2.rkey, 0).done
        times["bare"] = env.now

    bare.env.process(sender2(bare.env))
    bare.run()
    assert times["empty"] == times["bare"]


# -- link_down ---------------------------------------------------------------

def _timed_write(cluster, at):
    """Post one 32-byte write node0 -> node1 at time ``at``; returns a dict
    later holding the completion time or error."""
    remote = get_nic(cluster.node(1)).register_memory(64)
    qp = get_nic(cluster.node(0)).create_qp(cluster.node(1))
    out = {}

    def sender(env):
        yield env.timeout(at)
        wr = qp.post_write(b"y" * 32, remote.rkey, 0)
        try:
            yield wr.done
            out["done"] = env.now
        except QpFlushedError as exc:
            out["error"] = exc
            out["error_at"] = env.now
        out["cq"] = qp.send_cq.poll(max_entries=16)

    cluster.env.process(sender(cluster.env))
    return out


def test_link_down_blip_delays_but_delivers():
    baseline = Cluster(node_count=2)
    base = _timed_write(baseline, at=0.0)
    baseline.run()

    cluster = Cluster(node_count=2)
    cluster.install_faults(FaultPlan([link_down(0, 1, at=0.0,
                                                duration=20_000.0)]))
    out = _timed_write(cluster, at=0.0)
    cluster.run()
    # The outage heals inside the detection bound: the write rides it out
    # and lands exactly one outage-length later than the clean run.
    assert out["done"] == base["done"] + 20_000.0


def test_link_down_beyond_detection_flushes_with_retry_exc():
    cluster = Cluster(node_count=2)
    cluster.install_faults(FaultPlan([
        link_down(0, 1, at=0.0,
                  duration=10 * DEFAULT_DETECTION_TIMEOUT)]))
    out = _timed_write(cluster, at=0.0)
    cluster.run()
    assert isinstance(out["error"], QpFlushedError)
    # The failure surfaces at the detection bound, not at heal time.
    assert out["error_at"] == pytest.approx(DEFAULT_DETECTION_TIMEOUT)
    statuses = [wc.status for wc in out["cq"]]
    assert WcStatus.RETRY_EXC_ERR in statuses


def test_other_pairs_unaffected_by_link_down():
    cluster = Cluster(node_count=3)
    cluster.install_faults(FaultPlan([
        link_down(0, 1, at=0.0, duration=10 * DEFAULT_DETECTION_TIMEOUT)]))
    remote = get_nic(cluster.node(2)).register_memory(64)
    qp = get_nic(cluster.node(0)).create_qp(cluster.node(2))

    def sender(env):
        yield qp.post_write(b"z" * 32, remote.rkey, 0).done

    proc = cluster.env.process(sender(cluster.env))
    cluster.run()
    assert proc.ok
    assert remote.read(0, 1) == b"z"


# -- node_crash --------------------------------------------------------------

def test_crash_kills_spawned_processes_and_flushes_writes():
    cluster = Cluster(node_count=2)
    plane = cluster.install_faults(FaultPlan([node_crash(1, at=5_000.0)]))
    progress = []

    def victim(env):
        while True:
            yield env.timeout(1_000.0)
            progress.append(env.now)

    victim_proc = cluster.node(1).spawn(victim(cluster.env))
    out = _timed_write(cluster, at=10_000.0)  # posted after the crash
    cluster.run()
    assert not victim_proc.is_alive
    assert max(progress) <= 5_000.0
    assert 1 in plane.crashed
    assert cluster.node(1).crashed
    assert isinstance(out["error"], QpFlushedError)


def test_crash_drops_ud_multicast_for_dead_member():
    from repro.rdma import MulticastGroup

    cluster = Cluster(node_count=3)
    cluster.install_faults(FaultPlan([node_crash(2, at=1_000.0)]))
    group = MulticastGroup("g")
    rings = {}
    for node_id in (1, 2):
        nic = get_nic(cluster.node(node_id))
        ud = nic.create_ud_qp()
        ring = nic.register_memory(4096)
        for slot in range(4):
            ud.post_recv(ring, slot * 1024, 1024)
        group.join(ud)
        rings[node_id] = ud

    sender_ud = get_nic(cluster.node(0)).create_ud_qp()

    def sender(env):
        yield env.timeout(2_000.0)  # after node2's crash
        sender_ud.post_send_multicast(group, b"m" * 64)
        yield env.timeout(50_000.0)

    cluster.env.process(sender(cluster.env))
    cluster.run()
    assert len(rings[1].recv_cq.poll(max_entries=8)) == 1
    assert len(rings[2].recv_cq.poll(max_entries=8)) == 0


# -- partition ---------------------------------------------------------------

def test_partition_blocks_across_groups_only():
    cluster = Cluster(node_count=4)
    plane = cluster.install_faults(FaultPlan([
        partition([[0, 1], [2, 3]], at=0.0, heal_at=50_000.0)]))
    n = cluster.node
    assert plane.rc_admission(n(0), n(2)) == pytest.approx(50_000.0)
    assert plane.rc_admission(n(0), n(1)) == 0.0
    assert plane.rc_admission(n(2), n(3)) == 0.0
    assert not plane.ud_deliverable(n(1), n(3))
    assert plane.ud_deliverable(n(0), n(1))
    # Within the detection bound the partition is a blip, not a failure.
    assert not plane.peer_failed(n(0), n(2))


def test_partition_beyond_detection_is_peer_failure():
    cluster = Cluster(node_count=2)
    plane = cluster.install_faults(
        FaultPlan([partition([[0], [1]], at=0.0, heal_at=1e9)]),
        detection_timeout=10_000.0)
    assert plane.peer_failed(cluster.node(0), cluster.node(1))


# -- link_degrade ------------------------------------------------------------

def test_degrade_window_slows_then_restores():
    def run(plan):
        cluster = Cluster(node_count=2)
        if plan is not None:
            cluster.install_faults(plan)
        out = _timed_write(cluster, at=10_000.0)
        cluster.run()
        return out["done"]

    clean = run(None)
    degraded = run(FaultPlan([link_degrade(0, at=5_000.0,
                                           duration=100_000.0, factor=8.0)]))
    after_heal = run(FaultPlan([link_degrade(0, at=1_000.0,
                                             duration=2_000.0, factor=8.0)]))
    assert degraded > clean
    assert after_heal == clean  # window over before the write: full speed


# -- determinism -------------------------------------------------------------

def _faulted_run(seed):
    cluster = Cluster(node_count=4, seed=seed)
    cluster.install_faults(FaultPlan([
        link_down(0, 1, at=3_000.0, duration=30_000.0),
        node_crash(3, at=40_000.0),
        link_degrade(2, at=10_000.0, duration=20_000.0, factor=4.0),
    ]))
    trace = []
    for dst in (1, 2, 3):
        out = _timed_write(cluster, at=float(dst) * 2_000.0)
        out["dst"] = dst
        trace.append(out)
    cluster.run()
    return [(o.get("done"), o.get("error_at"), str(o.get("error")))
            for o in trace]


def test_faulted_run_is_bit_reproducible():
    assert _faulted_run(seed=11) == _faulted_run(seed=11)


def test_random_plan_is_deterministic_and_bounded():
    nodes = range(5)
    first = FaultPlan.random(seed=42, node_ids=nodes, start=1_000.0,
                             horizon=1_000_000.0, entry_count=6,
                             protected=(0,))
    second = FaultPlan.random(seed=42, node_ids=nodes, start=1_000.0,
                              horizon=1_000_000.0, entry_count=6,
                              protected=(0,))
    assert first.entries == second.entries
    assert len(first) == 6
    assert 0 not in first.node_ids()  # protected node untouched
    from repro.simnet import NodeCrash
    crashes = [e for e in first if isinstance(e, NodeCrash)]
    assert len(crashes) <= 1
    other = FaultPlan.random(seed=43, node_ids=nodes, start=1_000.0,
                             horizon=1_000_000.0, entry_count=6,
                             protected=(0,))
    assert first.entries != other.entries
