"""Sharded event kernel: order equivalence, shard invariance, executor.

The contract under test (``simnet/shard.py``): sharding changes event
*storage*, never event *order*. Every simulated observable — clocks,
byte counts, event sequence numbers, chaos outcomes — must be
bit-identical between the single-queue ``Environment`` and a
``ShardedEnvironment`` at any shard count with any node→shard map.
"""

import random

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.core import FLOW_END, DfiRuntime, Endpoint, FlowOptions, Schema
from repro.simnet import (
    Cluster,
    Environment,
    FaultPlan,
    ShardedEnvironment,
    block_shard_map,
    node_crash,
    run_partitioned,
)


# -- shard maps --------------------------------------------------------------

def test_block_shard_map_partitions_contiguously():
    assert block_shard_map(8, 1) == [0] * 8
    assert block_shard_map(8, 2) == [0, 0, 0, 0, 1, 1, 1, 1]
    assert block_shard_map(8, 8) == list(range(8))
    # Uneven split stays contiguous and covers every shard.
    uneven = block_shard_map(10, 4)
    assert uneven == sorted(uneven)
    assert set(uneven) == {0, 1, 2, 3}
    with pytest.raises(ConfigurationError):
        block_shard_map(8, 0)


def test_cluster_shard_map_validation():
    with pytest.raises(ConfigurationError):
        Cluster(node_count=4, shards=0)
    with pytest.raises(ConfigurationError):
        Cluster(node_count=4, shards=2, shard_map=[0, 1])  # wrong length
    with pytest.raises(ConfigurationError):
        Cluster(node_count=4, shards=2, shard_map=[0, 1, 2, 4])  # range
    with pytest.raises(ConfigurationError):
        Cluster(node_count=4, shards=2, shard_map=[0, -1, 0, 0])
    # Shard count is clamped to the node count...
    assert Cluster(node_count=2, shards=16).shard_count == 2
    # ...and widened to cover an explicit map.
    wide = Cluster(node_count=4, shards=1, shard_map=[0, 1, 2, 3])
    assert wide.shard_count == 4
    assert [wide.shard_of(n) for n in range(4)] == [0, 1, 2, 3]


def test_racked_builder_aligns_shards_to_racks():
    cluster = Cluster.racked(4, 4)
    assert cluster.node_count == 16
    assert cluster.shard_count == 4
    assert cluster.nodes_per_rack == 4
    assert cluster.shard_of(0) == 0 and cluster.shard_of(5) == 1
    # Coarsening keeps the map rack-aligned: blocks of racks nest.
    coarse = Cluster.racked(4, 4, shards=2)
    assert coarse.shard_count == 2
    assert coarse.shard_map == [0] * 8 + [1] * 8
    with pytest.raises(ConfigurationError):
        Cluster.racked(0, 4)


def test_shards_one_keeps_single_queue_kernel():
    cluster = Cluster(node_count=4, shards=1)
    assert type(cluster.env) is Environment
    assert cluster.shard_count == 1
    sharded = Cluster(node_count=4, shards=2)
    assert isinstance(sharded.env, ShardedEnvironment)
    assert sharded.env.lookahead == sharded.profile.wire_latency


def test_repro_shards_default_is_monkeypatchable(monkeypatch):
    import repro.simnet.cluster as cluster_mod
    monkeypatch.setattr(cluster_mod, "DEFAULT_SHARDS", 4)
    cluster = Cluster(node_count=8)
    assert isinstance(cluster.env, ShardedEnvironment)
    assert cluster.shard_count == 4


def test_repro_shards_env_parsing(monkeypatch):
    from repro.common.config import _read_default_shards
    for raw, expect in (("", 1), ("0", 1), ("1", 1), ("4", 4), ("32", 32)):
        monkeypatch.setenv("REPRO_SHARDS", raw)
        assert _read_default_shards() == expect
    monkeypatch.delenv("REPRO_SHARDS")
    assert _read_default_shards() == 1
    monkeypatch.setenv("REPRO_SHARDS", "many")
    with pytest.raises(ConfigurationError):
        _read_default_shards()
    monkeypatch.setenv("REPRO_SHARDS", "-2")
    with pytest.raises(ConfigurationError):
        _read_default_shards()


# -- raw-kernel order equivalence --------------------------------------------

def _chaotic_workload(env, seed, log):
    """A mixed event storm: timeout chains with zero-delay bursts, manual
    events, direct callbacks and trains — with every scheduling call
    randomly tagged to a foreign lane when the kernel is sharded (tags
    are attribution only; draws happen identically on both kernels)."""
    rng = random.Random(seed)
    shards = env.shard_count

    def post(make):
        tag = rng.randrange(16)
        if shards > 1:
            env._post_shard = tag % shards
            try:
                return make()
            finally:
                env._post_shard = -1
        return make()

    def worker(name, steps):
        for i in range(steps):
            delay = rng.choice(
                (0.0, 0.0, 1.0, 3.5, 2048.0, rng.random() * 9000.0))
            yield post(lambda: env.timeout(delay))
            log.append((env.now, name, i))

    def firer(events):
        for i, event in enumerate(events):
            yield env.timeout(rng.random() * 500.0)
            post(lambda: event.succeed(i))

    def waiter(name, events):
        for event in events:
            got = yield event
            log.append((env.now, name, got))

    for p in range(5):
        env.process(worker(f"w{p}", 30))
    manual = [env.event() for _ in range(20)]
    env.process(firer(manual))
    env.process(waiter("waiter", manual))
    for j in range(40):
        when = rng.random() * 8000.0 + 0.5
        post(lambda when=when, j=j: env.schedule_at(
            when, lambda: log.append((env.now, "cb", j))))
    env.schedule_train([(100.0 + 7.0 * i, log.append, (0.0, "train", i))
                        for i in range(16)])
    env.run()


def test_sharded_order_matches_single_queue_exactly():
    baseline: list = []
    _chaotic_workload(Environment(), seed=42, log=baseline)
    assert len(baseline) > 200
    for shards in (2, 3, 8):
        log: list = []
        env = ShardedEnvironment(shards, lookahead=850.0)
        _chaotic_workload(env, seed=42, log=log)
        assert log == baseline, f"event order diverged at shards={shards}"
        stats = env.shard_stats()
        assert stats["shards"] == shards
        assert stats["events_drained"] == env._sequence
        assert stats["drain_rounds"] >= 1
        # Foreign tags were applied, so mailboxes saw traffic.
        assert sum(lane["mailbox_in"] for lane in stats["lanes"]) > 0


def test_sharded_step_and_peek_compatibility():
    single, sharded = Environment(), ShardedEnvironment(4)
    logs = ([], [])
    for env, log in zip((single, sharded), logs):
        env.schedule_at(5.0, lambda log=log: log.append("b"))
        env.schedule_at(1.0, lambda log=log: log.append("a"))
        assert env.peek() == 1.0
        env.step()
        assert env.now == 1.0
        assert env.peek() == 5.0
        env.step()
        with pytest.raises(SimulationError):
            env.step()
    assert logs[0] == logs[1] == ["a", "b"]
    assert sharded.peek() == float("inf")


def test_sharded_run_until_semantics():
    env = ShardedEnvironment(2)
    hits = []
    for when in (10.0, 20.0, 30.0):
        env.schedule_at(when, lambda when=when: hits.append(when))
    env.run(until=15.0)
    assert env.now == 15.0 and hits == [10.0]
    with pytest.raises(SimulationError):
        env.run(until=5.0)  # lies in the past
    env.run()
    assert hits == [10.0, 20.0, 30.0]

    env = ShardedEnvironment(2)

    def proc(env):
        yield env.timeout(7.0)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"

    env = ShardedEnvironment(2)
    never = env.event()
    env.schedule_at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        env.run(until=never)  # queue drains before the event fires


def test_sharded_exception_propagation():
    env = ShardedEnvironment(4)

    def boom(env):
        yield env.timeout(3.0)
        raise ValueError("kaboom")

    env.process(boom(env))
    with pytest.raises(ValueError, match="kaboom"):
        env.run()


# -- flow-level shard invariance ---------------------------------------------

def _one_shuffle(**cluster_kwargs):
    """A 2:3 contended shuffle; returns the full simulated signature."""
    cluster = Cluster(node_count=5, seed=3, **cluster_kwargs)
    dfi = DfiRuntime(cluster)
    schema = Schema(("key", "uint64"), ("pad", 24))
    pad = b"p" * 24
    dfi.init_shuffle_flow("inv", [Endpoint(0, 0), Endpoint(1, 0)],
                          [Endpoint(n, 0) for n in (2, 3, 4)], schema,
                          shuffle_key="key",
                          options=FlowOptions(source_segments=4,
                                              target_segments=8,
                                              credit_threshold=4))

    def source_thread(index):
        source = yield from dfi.open_source("inv", index)
        for i in range(150):
            yield from source.push((i * 2654435761 + index, pad))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("inv", index)
        while (yield from target.consume()) is not FLOW_END:
            pass

    for index, node_id in enumerate((0, 1)):
        cluster.node(node_id).spawn(source_thread(index))
    for index, node_id in enumerate((2, 3, 4)):
        cluster.node(node_id).spawn(target_thread(index))
    cluster.run()
    return {
        "now": cluster.now,
        "events": cluster.env._sequence,
        "bytes": cluster.total_bytes_received(),
        "unicasts": cluster.fabric.unicast_count,
        "trains": cluster.fabric.unicast_trains,
    }


def test_shuffle_invariant_across_shard_counts_and_maps():
    baseline = _one_shuffle(shards=1)
    assert baseline["bytes"] > 0
    for shards in (2, 4, 5):
        assert _one_shuffle(shards=shards) == baseline, f"shards={shards}"
    # Arbitrary (non-contiguous) node→shard maps are equally safe:
    # shard assignment is attribution, never order.
    rng = random.Random(0)
    for trial in range(4):
        shard_map = [rng.randrange(3) for _ in range(5)]
        assert _one_shuffle(shards=3, shard_map=shard_map) == baseline, (
            f"trial={trial} map={shard_map}")


def test_mesh_invariant_across_shard_counts():
    from repro.bench.flows import run_shuffle_mesh

    signatures = []
    for shards in (1, 2, 4, 8):
        result = run_shuffle_mesh(2, 4, tuples_per_source=64, shards=shards)
        cluster = result["cluster"]
        signatures.append({
            "sim_ns": result["sim_ns"],
            "events": cluster.env._sequence,
            "bytes": cluster.total_bytes_received(),
            "unicasts": cluster.fabric.unicast_count,
        })
    assert all(sig == signatures[0] for sig in signatures[1:])


def test_fabric_counts_mailbox_crossings():
    cluster = Cluster(node_count=2, shards=2)
    env = cluster.env

    def sender(node, peer, count):
        for _ in range(count):
            yield node.env.timeout(100.0)
            cluster.fabric.unicast(node, peer, 512)

    cluster.node(0).spawn(sender(cluster.node(0), cluster.node(1), 5))
    cluster.run()
    # Every switch delivery targeted the foreign lane.
    assert env.mailbox_crossings == 5
    stats = env.shard_stats()
    assert stats["mailbox_crossings"] == 5
    assert env._lanes[1].mailbox_in >= 5

    # Loopback transfers never cross: same-node delivery, same lane.
    loop = Cluster(node_count=2, shards=2)

    def self_sender(node):
        yield node.env.timeout(100.0)
        loop.fabric.unicast(node, node, 512)

    loop.node(0).spawn(self_sender(loop.node(0)))
    loop.run()
    assert loop.env.mailbox_crossings == 0


@pytest.mark.parametrize("seed,flow_type,mode", [
    (7, "shuffle", "bw"),
    (11, "replicate", "lat"),
    (13, "combiner", "bw"),
])
def test_chaos_outcomes_invariant_under_sharding(monkeypatch, seed,
                                                 flow_type, mode):
    """Fault plans + flows + sharded kernel: the chaos driver must
    produce bit-identical outcomes, counts and final clocks when every
    cluster it builds silently becomes a 4-shard one."""
    from repro.bench.parallel import _chaos_once

    baseline = _chaos_once(seed, flow_type, mode)
    import repro.simnet.cluster as cluster_mod
    monkeypatch.setattr(cluster_mod, "DEFAULT_SHARDS", 4)
    assert _chaos_once(seed, flow_type, mode) == baseline


def test_fault_transitions_land_on_victim_lane():
    cluster = Cluster(node_count=4, shards=2)
    env = cluster.env
    lane = env._lanes[cluster.shard_of(3)]
    before = lane.mailbox_in
    cluster.install_faults(FaultPlan([node_crash(3, at=1000.0)]))
    # The crash timer is posted from the build context (shard 0) into the
    # victim's lane — a mailbox delivery, and the lane holds the event.
    assert cluster.shard_of(3) == 1
    assert lane.mailbox_in == before + 1
    assert len(lane) > 0


# -- observability -----------------------------------------------------------

def test_kernel_shard_counters_surface_through_obs():
    cluster = Cluster(node_count=4, shards=2)
    cluster.enable_observability()

    def worker(node):
        for _ in range(5):
            yield node.env.timeout(10.0)
        if node.node_id == 0:  # one cross-shard delivery for the counter
            cluster.fabric.unicast(node, cluster.node(3), 256)

    for node in cluster.nodes:
        node.spawn(worker(node))
    cluster.run()
    snapshot = cluster.metrics_snapshot()
    # Kernel section carries the full shard_stats payload.
    kernel = snapshot["kernel"]
    assert kernel["shards"] == 2
    assert kernel["events_drained"] == cluster.env._sequence
    assert len(kernel["lanes"]) == 2
    # Each shard's home node (first node of the block) exposes the lane
    # tallies as read-time counters; node 0 also carries the global one.
    for home in (0, 2):
        counters = snapshot["nodes"][home]["counters"]
        assert counters["kernel.shard.events_drained"] > 0
        assert counters["kernel.shard.drain_rounds"] >= 1
    assert "kernel.mailbox_crossings" in snapshot["nodes"][0]["counters"]
    # Reading is passive: harvesting scheduled nothing.
    events_before = cluster.env._sequence
    cluster.metrics_snapshot()
    assert cluster.env._sequence == events_before


def test_unsharded_snapshot_reports_single_shard():
    cluster = Cluster(node_count=2, shards=1)
    assert cluster.metrics_snapshot()["kernel"] == {"shards": 1}


# -- multiprocess window executor --------------------------------------------

def _tiny_partition(seed):
    cluster = Cluster(node_count=2, seed=seed)

    def pinger(node, peer, count):
        for i in range(count):
            yield node.env.timeout(50.0)
            cluster.fabric.unicast(node, peer, 256 + seed + i)

    cluster.node(0).spawn(pinger(cluster.node(0), cluster.node(1), 20))
    cluster.node(1).spawn(pinger(cluster.node(1), cluster.node(0), 10))
    return cluster


def _collect_tiny(cluster):
    return {
        "now": cluster.now,
        "bytes": cluster.total_bytes_received(),
        "unicasts": cluster.fabric.unicast_count,
    }


def test_run_partitioned_serial_matches_multiprocess():
    builders = [(lambda seed=seed: _tiny_partition(seed))
                for seed in range(3)]
    serial = run_partitioned(builders, until=100_000.0, processes=1,
                             collect=_collect_tiny)
    assert len(serial) == 3
    assert serial[0] != serial[1]  # partitions genuinely differ
    parallel = run_partitioned(builders, until=100_000.0, processes=3,
                               collect=_collect_tiny)
    assert parallel == serial
    # Windowed lockstep (the barrier path) changes nothing observable.
    windowed = run_partitioned(builders, until=100_000.0, window=10_000.0,
                               processes=3, collect=_collect_tiny)
    assert windowed == serial


def test_run_partitioned_validates_arguments():
    with pytest.raises(ConfigurationError):
        run_partitioned([], until=100.0)
    with pytest.raises(ConfigurationError):
        run_partitioned([lambda: None], until=0.0)
    with pytest.raises(ConfigurationError):
        run_partitioned([lambda: None], until=100.0, window=-1.0)


def test_run_partitioned_surfaces_worker_failures():
    def bad_builder():
        raise RuntimeError("builder exploded")

    builders = [lambda: _tiny_partition(0), bad_builder]
    for processes in (1, 2):
        with pytest.raises((SimulationError, RuntimeError),
                           match="exploded|partition 1"):
            run_partitioned(builders, until=1_000.0, processes=processes,
                            collect=_collect_tiny)
