"""Tests for the flow fault-tolerance extension: source-side abort."""

import pytest

from repro.common.errors import FlowAbortedError
from repro.core import (
    FLOW_END,
    DfiRuntime,
    FlowOptions,
    Optimization,
    Ordering,
    Schema,
)
from repro.simnet import Cluster

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))


def run_abort_scenario(init_flow, open_source, open_target, targets,
                       tuples_before_abort=50):
    cluster = Cluster(node_count=targets + 1)
    dfi = DfiRuntime(cluster)
    init_flow(dfi, cluster)
    outcome = {"received": {i: 0 for i in range(targets)},
               "aborted": {i: False for i in range(targets)}}

    def source_thread(env):
        source = yield from open_source(dfi)
        for i in range(tuples_before_abort):
            yield from source.push((i, i))
        yield from source.abort()

    def target_thread(index):
        target = yield from open_target(dfi, index)
        try:
            while True:
                item = yield from target.consume()
                if item is FLOW_END:
                    return
                outcome["received"][index] += 1
        except FlowAbortedError:
            outcome["aborted"][index] = True

    cluster.env.process(source_thread(cluster.env))
    for t in range(targets):
        cluster.env.process(target_thread(t))
    cluster.run()
    return outcome


def test_shuffle_abort_raises_at_all_targets():
    outcome = run_abort_scenario(
        lambda dfi, cluster: dfi.init_shuffle_flow(
            "f", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
            shuffle_key="key"),
        lambda dfi: dfi.open_source("f", 0),
        lambda dfi, i: dfi.open_target("f", i),
        targets=2)
    assert all(outcome["aborted"].values())


def test_latency_shuffle_abort():
    outcome = run_abort_scenario(
        lambda dfi, cluster: dfi.init_shuffle_flow(
            "f", ["node0|0"], ["node1|0"], SCHEMA,
            optimization=Optimization.LATENCY),
        lambda dfi: dfi.open_source("f", 0),
        lambda dfi, i: dfi.open_target("f", i),
        targets=1)
    assert outcome["aborted"][0]
    # Latency mode transfers tuple-by-tuple: everything pushed before the
    # abort marker arrives in order first.
    assert outcome["received"][0] == 50


def test_naive_replicate_abort():
    outcome = run_abort_scenario(
        lambda dfi, cluster: dfi.init_replicate_flow(
            "f", ["node0|0"], ["node1|0", "node2|0"], SCHEMA),
        lambda dfi: dfi.open_source("f", 0),
        lambda dfi, i: dfi.open_target("f", i),
        targets=2)
    assert all(outcome["aborted"].values())


def test_multicast_replicate_abort():
    outcome = run_abort_scenario(
        lambda dfi, cluster: dfi.init_replicate_flow(
            "f", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
            optimization=Optimization.LATENCY,
            options=FlowOptions(multicast=True,
                                retransmit_timeout=10_000)),
        lambda dfi: dfi.open_source("f", 0),
        lambda dfi, i: dfi.open_target("f", i),
        targets=2)
    assert all(outcome["aborted"].values())


def test_ordered_multicast_replicate_abort():
    outcome = run_abort_scenario(
        lambda dfi, cluster: dfi.init_replicate_flow(
            "f", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
            optimization=Optimization.LATENCY, ordering=Ordering.GLOBAL,
            options=FlowOptions(multicast=True,
                                retransmit_timeout=10_000)),
        lambda dfi: dfi.open_source("f", 0),
        lambda dfi, i: dfi.open_target("f", i),
        targets=2)
    assert all(outcome["aborted"].values())


def test_abort_drops_staged_tuples():
    """Bandwidth mode: tuples still staged (never flushed) are dropped."""
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key")
    received = []
    aborted = [False]

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        for i in range(3):  # far less than a segment's worth
            yield from source.push((i, i))
        yield from source.abort()

    def target_thread(env):
        target = yield from dfi.open_target("f", 0)
        try:
            while True:
                item = yield from target.consume()
                if item is FLOW_END:
                    return
                received.append(item)
        except FlowAbortedError:
            aborted[0] = True

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    assert aborted[0]
    assert received == []  # staged tuples were voided by the abort


def test_push_after_abort_rejected():
    from repro.common.errors import FlowClosedError
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key")
    errors = []

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        yield from source.abort()
        try:
            yield from source.push((1, 1))
        except FlowClosedError:
            errors.append("rejected")

    def target_thread(env):
        target = yield from dfi.open_target("f", 0)
        try:
            while (yield from target.consume()) is not FLOW_END:
                pass
        except FlowAbortedError:
            pass

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    assert errors == ["rejected"]
