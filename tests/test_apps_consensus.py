"""Integration tests for Multi-Paxos, NOPaxos and DARE."""

import pytest

from repro.apps.consensus import run_dare, run_multipaxos, run_nopaxos
from repro.apps.consensus.driver import ConsensusSetup
from repro.apps.consensus.kvstore import KvStore
from repro.apps.consensus.messages import OP_READ, OP_UPDATE, make_reqid
from repro.common import HardwareProfile
from repro.simnet import Cluster

#: A small but meaningful load for the functional tests.
SETUP = ConsensusSetup(offered_rate=150_000, duration=2_000_000,
                       warmup=500_000)


# -- KvStore -----------------------------------------------------------------

def test_kvstore_read_your_write():
    store = KvStore()
    value = b"v" * 32
    assert store.apply(OP_UPDATE, 5, value) == value
    assert store.apply(OP_READ, 5, b"") == value


def test_kvstore_missing_key_reads_zeroes():
    store = KvStore()
    assert store.apply(OP_READ, 99, b"") == b"\x00" * 32


def test_kvstore_rejects_unknown_op():
    with pytest.raises(ValueError):
        KvStore().apply(42, 0, b"")


def test_make_reqid_unique_across_clients():
    ids = {make_reqid(c, s) for c in range(6) for s in range(100)}
    assert len(ids) == 600


# -- protocol runs ----------------------------------------------------------

def test_multipaxos_completes_all_requests():
    result = run_multipaxos(Cluster(node_count=8), SETUP)
    assert result.completed > 0
    assert result.issued >= result.completed
    assert result.median_latency > 0
    assert result.p95_latency >= result.median_latency


def test_nopaxos_completes_all_requests():
    result = run_nopaxos(Cluster(node_count=8), SETUP)
    assert result.completed > 0
    assert result.gaps_noop == 0  # lossless run: no gap agreement needed


def test_dare_completes_all_requests():
    result = run_dare(Cluster(node_count=8), SETUP)
    assert result.completed > 0
    assert result.p99_latency >= result.p95_latency >= result.median_latency


def test_protocols_deterministic():
    a = run_multipaxos(Cluster(node_count=8), SETUP)
    b = run_multipaxos(Cluster(node_count=8), SETUP)
    assert a.median_latency == b.median_latency
    assert a.completed == b.completed


def test_paxos_and_nopaxos_latency_near_identical_below_saturation():
    """Paper: 'near-identical response latencies as long as they are not
    saturated' — the sequencer round trip offsets NOPaxos' fewer delays."""
    paxos = run_multipaxos(Cluster(node_count=8), SETUP)
    nopaxos = run_nopaxos(Cluster(node_count=8), SETUP)
    ratio = paxos.median_latency / nopaxos.median_latency
    assert 0.6 < ratio < 1.8


def test_dare_saturates_before_dfi_protocols():
    """The Fig. 15 ordering: at a load DARE cannot sustain, the DFI
    implementations still respond with flat latencies."""
    heavy = ConsensusSetup(offered_rate=1_000_000, duration=3_000_000,
                           warmup=500_000)
    dare = run_dare(Cluster(node_count=8), heavy)
    paxos = run_multipaxos(Cluster(node_count=8), heavy)
    nopaxos = run_nopaxos(Cluster(node_count=8), heavy)
    assert dare.median_latency > 5 * paxos.median_latency
    assert dare.median_latency > 5 * nopaxos.median_latency


def test_nopaxos_outlasts_multipaxos_under_heavy_load():
    """Beyond the Multi-Paxos leader's capacity NOPaxos stays stable."""
    heavy = ConsensusSetup(offered_rate=1_600_000, duration=3_000_000,
                           warmup=500_000)
    paxos = run_multipaxos(Cluster(node_count=8), heavy)
    nopaxos = run_nopaxos(Cluster(node_count=8), heavy)
    assert nopaxos.p95_latency < paxos.p95_latency / 5


def test_nopaxos_gap_agreement_under_loss():
    """With multicast loss injected, NOPaxos resolves gaps through the
    leader and keeps making progress."""
    profile = HardwareProfile(multicast_loss_probability=0.01)
    setup = ConsensusSetup(offered_rate=100_000, duration=2_000_000,
                           warmup=200_000, seed=3)
    result = run_nopaxos(Cluster(node_count=8, profile=profile, seed=5),
                         setup)
    assert result.completed > 0
    assert result.gaps_noop + result.gaps_recovered > 0


def test_consensus_setup_validation():
    from repro.common.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        ConsensusSetup(clients=5)  # does not divide over 3 client nodes
    with pytest.raises(ConfigurationError):
        ConsensusSetup(offered_rate=0)


def test_majority_votes_property():
    assert ConsensusSetup().majority_votes == 2  # 5 replicas: leader + 2
    small = ConsensusSetup(replica_nodes=(0, 1, 2))
    assert small.majority_votes == 1  # 3 replicas: leader + 1
