"""Tests for endpoint parsing and tuple routing."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigurationError, FlowError
from repro.core import Endpoint, Schema, endpoints_on, parse_endpoints
from repro.core.routing import (
    key_hash_router,
    radix_router,
    range_router,
    round_robin_router,
)


# -- endpoints ----------------------------------------------------------------

def test_parse_endpoint_formats():
    assert Endpoint.parse("node3|1") == Endpoint(3, 1)
    assert Endpoint.parse("3|1") == Endpoint(3, 1)
    assert Endpoint.parse((2, 0)) == Endpoint(2, 0)
    assert Endpoint.parse(Endpoint(1, 1)) == Endpoint(1, 1)


def test_parse_endpoint_rejects_garbage():
    for bad in ("node3", "a|b", 17, (1, 2, 3)):
        with pytest.raises(ConfigurationError):
            Endpoint.parse(bad)


def test_endpoint_rejects_negative_ids():
    with pytest.raises(ConfigurationError):
        Endpoint(-1, 0)


def test_parse_endpoints_rejects_duplicates():
    with pytest.raises(ConfigurationError, match="duplicate"):
        parse_endpoints(["node0|0", "0|0"])


def test_endpoints_on_builder():
    endpoints = endpoints_on(node_count=3, threads_per_node=2)
    assert len(endpoints) == 6
    assert endpoints[0] == Endpoint(0, 0)
    assert endpoints[-1] == Endpoint(2, 1)
    subset = endpoints_on(node_count=8, threads_per_node=1, nodes=[5, 7])
    assert subset == [Endpoint(5, 0), Endpoint(7, 0)]


def test_endpoint_str_roundtrip():
    endpoint = Endpoint(4, 2)
    assert Endpoint.parse(str(endpoint)) == endpoint


# -- routing -----------------------------------------------------------------

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))


def test_key_hash_router_in_range_and_deterministic():
    route = key_hash_router(SCHEMA, "key")
    targets = [route((k, 0), 7) for k in range(1000)]
    assert all(0 <= t < 7 for t in targets)
    assert targets == [route((k, 0), 7) for k in range(1000)]


def test_key_hash_router_spreads_keys():
    route = key_hash_router(SCHEMA, "key")
    counts = [0] * 8
    for k in range(4000):
        counts[route((k, 0), 8)] += 1
    assert min(counts) > 4000 / 8 * 0.5  # roughly balanced


def test_radix_router_uses_low_bits():
    route = radix_router(SCHEMA, "key", bits=3)
    for k in range(64):
        assert route((k, 0), 8) == k % 8


def test_radix_router_with_shift():
    route = radix_router(SCHEMA, "key", bits=2, shift=4)
    assert route((0b110000, 0), 4) == 0b11


def test_radix_router_rejects_zero_bits():
    with pytest.raises(FlowError):
        radix_router(SCHEMA, "key", bits=0)


def test_range_router_boundaries():
    route = range_router(SCHEMA, "key", boundaries=[100, 200])
    assert route((5, 0), 3) == 0
    assert route((150, 0), 3) == 1
    assert route((99999, 0), 3) == 2


def test_range_router_validations():
    with pytest.raises(FlowError):
        range_router(SCHEMA, "key", boundaries=[200, 100])
    route = range_router(SCHEMA, "key", boundaries=[10])
    with pytest.raises(FlowError, match="built for"):
        route((1, 0), 5)


def test_round_robin_router_cycles():
    route = round_robin_router()
    assert [route((0, 0), 3) for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]


@given(st.integers(0, 2 ** 64 - 1), st.integers(1, 64))
def test_key_hash_router_property(key, target_count):
    route = key_hash_router(SCHEMA, "key")
    assert 0 <= route((key, 0), target_count) < target_count
