"""Memory stability of long-running clusters cycling many flows.

A 256-1024-node serving cluster opens and closes flows continuously; the
per-cluster stores (flow registry, NIC region tables, fabric caches,
kernel timer pool) must reach a steady state instead of growing per
flow. ``FlowRegistry.release_flow`` is the lifecycle hook under test.
"""

import pytest

from repro.common.errors import MemoryRegionError, RegistryError
from repro.core import (
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Ordering,
    Schema,
)
from repro.rdma.nic import get_nic
from repro.simnet import Cluster
from repro.simnet.kernel import _TIMEOUT_POOL_CAP

_SCHEMA = Schema(("key", "uint64"), ("pad", 24))
_PAD = b"p" * 24


def _run_shuffle_cycle(dfi, cluster, name, tuples=64):
    """One full flow lifetime: init, open, transfer, close."""
    dfi.init_shuffle_flow(name, [Endpoint(0, 0)],
                          [Endpoint(1, 0), Endpoint(2, 0)], _SCHEMA,
                          shuffle_key="key",
                          options=FlowOptions(source_segments=2,
                                              target_segments=4,
                                              credit_threshold=2))

    def source_thread():
        source = yield from dfi.open_source(name, 0)
        for i in range(tuples):
            yield from source.push((i * 2654435761, _PAD))
        yield from source.close()

    def target_thread(index, node_id):
        target = yield from dfi.open_target(name, index)
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.node(0).spawn(source_thread())
    cluster.node(1).spawn(target_thread(0, 1))
    cluster.node(2).spawn(target_thread(1, 2))
    cluster.run()


def _footprint(cluster, registry):
    return {
        "flows": len(registry._flows),
        "rings": len(registry._rings),
        "ring_signals": len(registry._ring_signals),
        "sequencers": len(registry._sequencers),
        "backchannel": len(registry._backchannel),
        "backchannel_signals": len(registry._backchannel_signals),
        "ready": len(registry._ready_targets) + len(registry._ready_signals),
        "regions": [len(get_nic(node)._regions) for node in cluster.nodes],
        "region_bytes": [get_nic(node).registered_bytes()
                         for node in cluster.nodes],
    }


def test_flow_cycle_memory_reaches_steady_state():
    cluster = Cluster(node_count=3)
    dfi = DfiRuntime(cluster)
    registry = dfi.registry

    _run_shuffle_cycle(dfi, cluster, "cycle0")
    held = _footprint(cluster, registry)
    assert held["flows"] == 1 and held["rings"] == 2
    assert sum(held["regions"]) > 0

    registry.release_flow("cycle0")
    steady = _footprint(cluster, registry)
    # Everything name-keyed is gone and the ring/credit regions behind
    # the published handles were deregistered from the target NICs.
    assert steady["flows"] == steady["rings"] == 0
    assert steady["ring_signals"] == steady["backchannel"] == 0
    assert steady["backchannel_signals"] == steady["ready"] == 0
    assert sum(steady["regions"]) < sum(held["regions"])
    assert sum(steady["region_bytes"]) < sum(held["region_bytes"])

    # Repeated cycles on the SAME cluster: the footprint after every
    # release is identical to the first — no per-flow residue anywhere.
    for cycle in range(1, 5):
        _run_shuffle_cycle(dfi, cluster, f"cycle{cycle}")
        registry.release_flow(f"cycle{cycle}")
        assert _footprint(cluster, registry) == steady, f"cycle {cycle}"
    # Released names become reusable.
    _run_shuffle_cycle(dfi, cluster, "cycle0")
    registry.release_flow("cycle0")
    assert _footprint(cluster, registry) == steady


def _run_batched_cycle(dfi, cluster, name, batches=8, batch=1024):
    """One flow lifetime pushed in full-segment batches so steady-state
    flushes ride the fused macro-event fast path."""
    dfi.init_shuffle_flow(name, [Endpoint(0, 0)],
                          [Endpoint(1, 0), Endpoint(2, 0)], _SCHEMA,
                          shuffle_key="key", options=FlowOptions())

    def source_thread():
        source = yield from dfi.open_source(name, 0)
        for b in range(batches):
            yield from source.push_batch(
                [(i * 2654435761, _PAD)
                 for i in range(b * batch, (b + 1) * batch)])
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target(name, index)
        while (yield from target.consume_batch()) is not FLOW_END:
            pass

    cluster.node(0).spawn(source_thread())
    cluster.node(1).spawn(target_thread(0))
    cluster.node(2).spawn(target_thread(1))
    cluster.run()


def test_fastpath_macro_pool_steady_over_flow_cycles():
    """Five fast-path flow cycles on one cluster: the registry/NIC
    footprint is identical after every release and the kernel's recycled
    MacroEvent pool reaches a steady bounded size instead of growing."""
    from repro.common import config
    from repro.simnet.kernel import _MACRO_POOL_CAP

    saved = config.FASTPATH_ENABLED
    config.FASTPATH_ENABLED = True
    try:
        cluster = Cluster(node_count=3)
        dfi = DfiRuntime(cluster)
        registry = dfi.registry

        _run_batched_cycle(dfi, cluster, "fp0")
        # The fused path actually ran: macro records were scheduled,
        # executed, and recycled into the pool.
        assert cluster.env._macro_pool, "fast path never scheduled a macro"
        registry.release_flow("fp0")
        steady = _footprint(cluster, registry)
        pool_sizes = [len(cluster.env._macro_pool)]
        for cycle in range(1, 5):
            _run_batched_cycle(dfi, cluster, f"fp{cycle}")
            registry.release_flow(f"fp{cycle}")
            assert _footprint(cluster, registry) == steady, f"cycle {cycle}"
            pool_sizes.append(len(cluster.env._macro_pool))
        assert max(pool_sizes) <= _MACRO_POOL_CAP
        # Identical workloads recycle into an identical pool: the record
        # count settles after the first cycle rather than creeping up.
        assert len(set(pool_sizes[1:])) == 1, pool_sizes
    finally:
        config.FASTPATH_ENABLED = saved


def test_release_flow_drops_sequencer_region():
    cluster = Cluster(node_count=3)
    dfi = DfiRuntime(cluster)
    master_nic = get_nic(cluster.node(0))
    before = len(master_nic._regions)
    dfi.init_replicate_flow("ordered", [Endpoint(0, 0)],
                            [Endpoint(1, 0), Endpoint(2, 0)], _SCHEMA,
                            ordering=Ordering.GLOBAL)
    assert len(master_nic._regions) == before + 1  # the u64 counter
    handle = dfi.registry.sequencer("ordered")
    dfi.registry.release_flow("ordered")
    assert len(master_nic._regions) == before
    with pytest.raises(MemoryRegionError):
        master_nic.region(handle.rkey)


def test_release_flow_lifecycle_errors():
    cluster = Cluster(node_count=3)
    dfi = DfiRuntime(cluster)
    registry = dfi.registry
    with pytest.raises(RegistryError):
        registry.release_flow("never-existed")
    _run_shuffle_cycle(dfi, cluster, "once")
    registry.release_flow("once")
    with pytest.raises(RegistryError):  # double release is a bug, not a no-op
        registry.release_flow("once")


def test_nic_deregister_unknown_rkey_raises():
    cluster = Cluster(node_count=1)
    nic = get_nic(cluster.node(0))
    region = nic.register_memory(128)
    nic.deregister_memory(region.rkey)
    with pytest.raises(MemoryRegionError):
        nic.deregister_memory(region.rkey)


def test_fabric_loopback_cache_bounded_by_node_count():
    from repro.bench.flows import run_shuffle_mesh

    # The mesh includes same-node channels (source i -> target i), so the
    # loopback serialization cache is exercised on every node — and must
    # hold at most one entry per node, however much traffic flowed.
    result = run_shuffle_mesh(2, 4, tuples_per_source=64)
    cluster = result["cluster"]
    assert 0 < len(cluster.fabric._loopback_last) <= cluster.node_count


@pytest.mark.parametrize("shards", [1, 4])
def test_timeout_pool_stays_capped(shards):
    from repro.bench.flows import run_shuffle_mesh

    result = run_shuffle_mesh(1, 4, tuples_per_source=128, shards=shards)
    env = result["cluster"].env
    assert len(env._timeout_pool) <= _TIMEOUT_POOL_CAP
