"""Tests for the per-flow trace ring and the Chrome trace exporter.

Covers the ring-bound contract (most recent ``capacity`` events kept,
``dropped`` counts the rest), the ``trace_event`` JSON schema of the
exporter, and the chaos integration: a seeded ``FaultPlan.random`` run
must export fault-injection instants at their *planned* simulated times
plus live ``FAULT_DETECT`` events from the flow layer.
"""

import json

import pytest

from repro.common.errors import (
    FlowAbortedError,
    FlowPeerFailedError,
    FlowTimeoutError,
)
from repro.core import (
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Optimization,
    Schema,
)
from repro.obs import (
    FAULT_DETECT,
    FAULT_INJECT,
    FLOW_CLOSE,
    SEG_CONSUME,
    SEG_WRITE,
    FlowTracer,
    chrome_trace,
    export_chrome_trace,
)
from repro.simnet import Cluster, FaultPlan

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))
_FLOW_ERRORS = (FlowPeerFailedError, FlowTimeoutError, FlowAbortedError)


class TestTraceRing:
    def test_ring_keeps_most_recent_events(self):
        tracer = FlowTracer("f", capacity=4)
        for i in range(10):
            tracer.emit(float(i), SEG_WRITE, 0, "s0", {"seq": i})
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert tracer.emitted == 10
        kept = [event[4]["seq"] for event in tracer.events()]
        assert kept == [6, 7, 8, 9]  # oldest overwritten, order preserved

    def test_ring_under_capacity(self):
        tracer = FlowTracer("f", capacity=8)
        tracer.emit(1.0, SEG_WRITE, 0, "s0")
        tracer.emit(2.0, SEG_CONSUME, 1, "t0", {"seq": 0})
        assert len(tracer) == 2 and tracer.dropped == 0
        assert [event[1] for event in tracer.events()] == [SEG_WRITE,
                                                           SEG_CONSUME]

    def test_flow_options_capacity_respected(self):
        cluster = Cluster(node_count=2)
        dfi = DfiRuntime(cluster)
        dfi.init_shuffle_flow(
            "tiny", [Endpoint(0, 0)], [Endpoint(1, 0)], SCHEMA,
            shuffle_key="key",
            options=FlowOptions(segment_size=128, trace=4))

        def src():
            source = yield from dfi.open_source("tiny", 0)
            for i in range(64):
                yield from source.push((i, i))
            yield from source.close()

        def tgt():
            target = yield from dfi.open_target("tiny", 0)
            while (yield from target.consume()) is not FLOW_END:
                pass

        cluster.env.process(src())
        cluster.env.process(tgt())
        cluster.run()
        tracer = cluster.obs.tracers["tiny"]
        assert tracer.capacity == 4
        assert len(tracer) == 4
        assert tracer.emitted > 4 and tracer.dropped == tracer.emitted - 4


class TestChromeExport:
    def _traced_run(self):
        cluster = Cluster(node_count=2)
        cluster.enable_observability(trace=True)
        dfi = DfiRuntime(cluster)
        dfi.init_shuffle_flow("flow", [Endpoint(0, 0)], [Endpoint(1, 0)],
                              SCHEMA, shuffle_key="key",
                              options=FlowOptions(segment_size=128))

        def src():
            source = yield from dfi.open_source("flow", 0)
            for i in range(16):
                yield from source.push((i, i))
            yield from source.close()

        def tgt():
            target = yield from dfi.open_target("flow", 0)
            while (yield from target.consume()) is not FLOW_END:
                pass

        cluster.env.process(src())
        cluster.env.process(tgt())
        cluster.run()
        return cluster

    def test_document_schema(self):
        document = chrome_trace(self._traced_run())
        assert set(document) == {"traceEvents", "displayTimeUnit", "reproObs"}
        events = document["traceEvents"]
        assert events
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert event["ph"] in ("i", "M")
            if event["ph"] == "i":
                assert event["ts"] >= 0
                assert isinstance(event["pid"], int)
        # json round-trip: the document must be plain-JSON serializable.
        assert json.loads(json.dumps(document)) == document

    def test_instants_cover_both_sides(self):
        document = chrome_trace(self._traced_run())
        names = {event["name"] for event in document["traceEvents"]}
        assert SEG_WRITE in names and SEG_CONSUME in names
        pids = {event["pid"] for event in document["traceEvents"]
                if event["ph"] == "i"}
        assert pids == {0, 1}  # source node and target node

    def test_export_writes_loadable_json(self, tmp_path):
        path = tmp_path / "run.trace.json"
        document = export_chrome_trace(self._traced_run(), str(path))
        assert json.loads(path.read_text()) == document

    def test_timestamps_are_microseconds(self):
        cluster = self._traced_run()
        tracer = cluster.obs.tracers["flow"]
        first_ns = tracer.events()[0][0]
        document = chrome_trace(cluster)
        instants = [event for event in document["traceEvents"]
                    if event["ph"] == "i"]
        assert instants[0]["ts"] == first_ns / 1000.0


class TestChaosTrace:
    def _chaos_run(self, seed=3):
        """Seeded chaos shuffle (the test_chaos_faults harness shape)
        with tracing on: faults get injected and the flow layer detects
        peer failures at simulated times the plan pins exactly. Pushes
        enough tuples (6000, ~380 us simulated) that the flow is still
        live when the plan window (50-800 us) starts firing."""
        cluster = Cluster(node_count=5, seed=seed)
        plan = FaultPlan.random(seed, node_ids=range(5), start=50_000.0,
                                horizon=800_000.0, entry_count=3,
                                protected=(0,))
        cluster.install_faults(plan, detection_timeout=60_000.0)
        cluster.enable_observability(trace=True)
        dfi = DfiRuntime(cluster)
        options = FlowOptions(
            segment_size=256, source_segments=4, target_segments=8,
            credit_threshold=2, peer_timeout=200_000.0,
            max_backoff_retries=32, max_retransmits=8)
        dfi.init_shuffle_flow("chaos", ["node1|0", "node2|0"],
                              ["node3|0", "node4|0"], SCHEMA,
                              shuffle_key="key", options=options)

        def source_thread(index):
            try:
                source = yield from dfi.open_source("chaos", index)
                for i in range(6000):
                    yield from source.push((i, 1))
                yield from source.close()
            except _FLOW_ERRORS:
                pass

        def target_thread(index):
            try:
                target = yield from dfi.open_target("chaos", index)
                while (yield from target.consume()) is not FLOW_END:
                    pass
            except _FLOW_ERRORS:
                pass

        for node_id, index in ((1, 0), (2, 1)):
            cluster.node(node_id).spawn(source_thread(index))
        for node_id, index in ((3, 0), (4, 1)):
            cluster.node(node_id).spawn(target_thread(index))
        cluster.run(until=8_000_000.0)
        return cluster, plan

    def test_fault_plan_instants_at_planned_times(self):
        cluster, plan = self._chaos_run()
        document = chrome_trace(cluster)
        injected = [event for event in document["traceEvents"]
                    if event["name"] == FAULT_INJECT]
        assert len(injected) == len(plan.entries)
        planned_ts = sorted(entry.at / 1000.0 for entry in plan.entries)
        assert sorted(event["ts"] for event in injected) == planned_ts
        for event in injected:
            assert event["cat"] == "faults"
            assert "kind" in event["args"]

    def test_chaos_seed_emits_fault_detection(self):
        # Seed 3 crashes flow peers (same plan test_chaos_faults runs);
        # the surviving endpoints must diagnose it as FAULT_DETECT.
        cluster, _plan = self._chaos_run(seed=3)
        names = [event[1]
                 for tracer in cluster.obs.tracers.values()
                 for event in tracer.events()]
        assert FAULT_DETECT in names
        detected = sum(registry.get("core.peer_failures_detected")
                       for registry in cluster.obs.registries.values())
        assert detected > 0

    def test_chaos_trace_exports_clean_json(self, tmp_path):
        cluster, _plan = self._chaos_run()
        path = tmp_path / "chaos.trace.json"
        document = export_chrome_trace(cluster, str(path))
        reloaded = json.loads(path.read_text())
        assert reloaded == document
        assert any(event["name"] == FAULT_INJECT
                   for event in reloaded["traceEvents"])


class TestFlowCloseEvents:
    """Every source flavour must emit FLOW_CLOSE on close *and* abort
    with tracing on (regression: the replicate sources once referenced
    a nonexistent ``self.env`` on these cold paths, which only trips
    when a traced flow actually closes)."""

    def _run_flow(self, kind, finish):
        cluster = Cluster(node_count=3)
        cluster.enable_observability(trace=True)
        dfi = DfiRuntime(cluster)
        if kind in ("replicate", "multicast"):
            dfi.init_replicate_flow(
                "f", [Endpoint(0, 0)], [Endpoint(1, 0), Endpoint(2, 0)],
                SCHEMA, options=FlowOptions(
                    segment_size=128, multicast=(kind == "multicast")))
        else:
            dfi.init_shuffle_flow(
                "f", [Endpoint(0, 0)], [Endpoint(1, 0), Endpoint(2, 0)],
                SCHEMA, shuffle_key="key",
                optimization=Optimization(kind),
                options=FlowOptions(segment_size=128))
        target_count = 2

        def src():
            source = yield from dfi.open_source("f", 0)
            for i in range(8):
                yield from source.push((i, i))
            if finish == "close":
                yield from source.close()
            else:
                yield from source.abort()

        def tgt(index):
            try:
                target = yield from dfi.open_target("f", index)
                while (yield from target.consume()) is not FLOW_END:
                    pass
            except FlowAbortedError:
                pass

        cluster.env.process(src())
        for index in range(target_count):
            cluster.env.process(tgt(index))
        cluster.run()
        return cluster

    @pytest.mark.parametrize("finish", ["close", "abort"])
    @pytest.mark.parametrize(
        "kind", ["bandwidth", "latency", "replicate", "multicast"])
    def test_flow_close_traced(self, kind, finish):
        cluster = self._run_flow(kind, finish)
        closes = [event for tracer in cluster.obs.tracers.values()
                  for event in tracer.events() if event[1] == FLOW_CLOSE]
        assert closes, f"no FLOW_CLOSE from {kind} {finish}"
        aborted = any((event[4] or {}).get("aborted") for event in closes)
        assert aborted == (finish == "abort")
