"""Tests for the SHARP-style in-network aggregation extension."""

import pytest

from repro.common.errors import FlowError
from repro.common.units import gbps_to_bytes_per_ns
from repro.core import (
    AggregationSpec,
    DfiRuntime,
    FlowOptions,
    Schema,
)
from repro.simnet import Cluster

SCHEMA = Schema(("group", "uint64"), ("value", "int64"))
LINK = gbps_to_bytes_per_ns(100.0)


def run_sharp(op, rows_per_source, sources=3, node_count=4,
              options_extra=None):
    cluster = Cluster(node_count=node_count)
    dfi = DfiRuntime(cluster)
    dfi.init_combiner_flow(
        "sharp", sources=[f"node{i + 1}|0" for i in range(sources)],
        target="node0|0", schema=SCHEMA,
        aggregation=AggregationSpec(op=op, group_by="group",
                                    value="value"),
        options=FlowOptions(in_network_aggregation=True,
                            **(options_extra or {})))
    result = {}
    holder = {}

    def source_thread(index):
        source = yield from dfi.open_source("sharp", index)
        for row in rows_per_source(index):
            yield from source.push(row)
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("sharp")
        holder["target"] = target
        aggregates = yield from target.consume_all()
        result.update(aggregates)

    for s in range(sources):
        cluster.env.process(source_thread(s))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    return result, holder["target"], cluster


def test_sharp_sum_matches_end_host_semantics():
    result, _target, _cluster = run_sharp(
        "sum", lambda i: [(g, 10) for g in range(5)])
    assert result == {g: 30 for g in range(5)}


def test_sharp_count():
    result, _target, _cluster = run_sharp(
        "count", lambda i: [(g, g) for g in range(4)] * 3)
    assert result == {g: 9 for g in range(4)}


def test_sharp_min_max():
    result_min, _t, _c = run_sharp("min", lambda i: [(0, i * 10 - 5)])
    assert result_min == {0: -5}
    result_max, _t, _c = run_sharp("max", lambda i: [(0, i * 10 - 5)])
    assert result_max == {0: 15}


def test_sharp_large_flow_correctness():
    """Many segments, periodic partial emission, multiple groups."""
    result, target, _cluster = run_sharp(
        "sum", lambda i: [(g % 16, 1) for g in range(2000)])
    assert result == {g: 3 * 125 for g in range(16)}
    assert target.partial_segments > 1  # periodic emission happened


def test_sharp_reduces_target_inbound_traffic():
    """The headline: the switch forwards far fewer bytes than it takes
    in — the target's in-going link stops being the bottleneck."""
    result, target, cluster = run_sharp(
        "sum", lambda i: [(g % 8, 1) for g in range(4000)])
    stats = target.switch_stats
    assert stats["bytes_in"] > 10 * stats["bytes_out"]
    # The target's downlink carried only the partials.
    assert cluster.node(0).downlink.bytes_carried == stats["bytes_out"]


def test_sharp_aggregate_bandwidth_beyond_target_link():
    """Aggregated sender bandwidth exceeds the single-link cap of the
    end-host combiner (paper Fig. 9's stated limitation)."""
    from repro.common.units import GIB, SECONDS
    cluster = Cluster(node_count=9)
    dfi = DfiRuntime(cluster)
    dfi.init_combiner_flow(
        "agg", sources=[f"node{i + 1}|{t}" for i in range(8)
                        for t in range(2)],
        target="node0|0", schema=SCHEMA,
        aggregation=AggregationSpec("sum", "group", "value"),
        options=FlowOptions(in_network_aggregation=True))
    per_source = 30_000
    window = {"start": None, "end": None}

    def source_thread(index):
        source = yield from dfi.open_source("agg", index)
        if window["start"] is None:
            window["start"] = cluster.now
        for i in range(per_source):
            yield from source.push((i % 64, 1))
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("agg")
        yield from target.consume_all()
        window["end"] = cluster.now

    for index in range(16):
        cluster.env.process(source_thread(index))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    payload = 16 * per_source * SCHEMA.tuple_size
    bandwidth = payload / (window["end"] - window["start"])
    assert bandwidth > 1.5 * LINK  # beyond the end-host combiner's cap


def test_sharp_requires_flag_on_target_open():
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_combiner_flow(
        "plain", sources=["node1|0"], target="node0|0", schema=SCHEMA,
        aggregation=AggregationSpec("sum", "group", "value"))
    from repro.core.sharp import SharpCombinerTarget
    with pytest.raises(FlowError, match="in-network"):
        SharpCombinerTarget.open(dfi.registry, "plain")


def test_sharp_deterministic():
    first = run_sharp("sum", lambda i: [(g % 8, g) for g in range(500)])
    second = run_sharp("sum", lambda i: [(g % 8, g) for g in range(500)])
    assert first[0] == second[0]
    assert first[2].now == second[2].now
