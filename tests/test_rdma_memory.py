"""Tests for memory regions and completion queues."""

import pytest

from repro.common.errors import MemoryRegionError
from repro.rdma import Completion, CompletionQueue, Opcode, get_nic
from repro.simnet import Cluster


@pytest.fixture
def nic():
    return get_nic(Cluster(node_count=1).node(0))


def test_register_and_resolve(nic):
    region = nic.register_memory(1024)
    assert nic.region(region.rkey) is region
    assert region.size == 1024


def test_rkeys_are_unique(nic):
    keys = {nic.register_memory(64).rkey for _ in range(10)}
    assert len(keys) == 10


def test_unknown_rkey_rejected(nic):
    with pytest.raises(MemoryRegionError, match="unknown rkey"):
        nic.region(9999)


def test_zero_size_region_rejected(nic):
    with pytest.raises(MemoryRegionError):
        nic.register_memory(0)


def test_write_read_roundtrip(nic):
    region = nic.register_memory(64)
    region.write(10, b"hello")
    assert region.read(10, 5) == b"hello"
    assert region.read(0, 10) == b"\x00" * 10


def test_out_of_bounds_write_rejected(nic):
    region = nic.register_memory(16)
    with pytest.raises(MemoryRegionError):
        region.write(12, b"too long")
    with pytest.raises(MemoryRegionError):
        region.write(-1, b"x")


def test_out_of_bounds_read_rejected(nic):
    region = nic.register_memory(16)
    with pytest.raises(MemoryRegionError):
        region.read(8, 16)


def test_view_is_zero_copy(nic):
    region = nic.register_memory(32)
    view = region.view(4, 8)
    region.write(4, b"ABCDEFGH")
    assert bytes(view) == b"ABCDEFGH"


def test_u64_helpers(nic):
    region = nic.register_memory(16)
    region.write_u64(8, 123456789)
    assert region.read_u64(8) == 123456789


def test_u64_wraps_at_64_bits(nic):
    region = nic.register_memory(8)
    region.write_u64(0, 2 ** 64 - 1)
    assert region.fetch_add_u64(0, 2) == 2 ** 64 - 1
    assert region.read_u64(0) == 1


def test_fetch_add_returns_old_value(nic):
    region = nic.register_memory(8)
    assert region.fetch_add_u64(0, 5) == 0
    assert region.fetch_add_u64(0, 5) == 5
    assert region.read_u64(0) == 10


def test_compare_swap_success_and_failure(nic):
    region = nic.register_memory(8)
    region.write_u64(0, 7)
    assert region.compare_swap_u64(0, 7, 99) == 7
    assert region.read_u64(0) == 99
    assert region.compare_swap_u64(0, 7, 123) == 99
    assert region.read_u64(0) == 99  # swap did not happen


def test_registered_bytes_accounting(nic):
    nic.register_memory(100)
    nic.register_memory(200)
    assert nic.registered_bytes() == 300


# -- CompletionQueue ---------------------------------------------------------

def test_cq_poll_fifo():
    cluster = Cluster(node_count=1)
    cq = CompletionQueue(cluster.env)
    cq.push(Completion(wr_id=1, opcode=Opcode.WRITE))
    cq.push(Completion(wr_id=2, opcode=Opcode.READ))
    entries = cq.poll()
    assert [e.wr_id for e in entries] == [1, 2]
    assert cq.poll() == []


def test_cq_poll_respects_max_entries():
    cluster = Cluster(node_count=1)
    cq = CompletionQueue(cluster.env)
    for i in range(5):
        cq.push(Completion(wr_id=i, opcode=Opcode.SEND))
    assert len(cq.poll(max_entries=3)) == 3
    assert len(cq.poll(max_entries=3)) == 2


def test_cq_wait_blocks_until_push():
    cluster = Cluster(node_count=1)
    env = cluster.env
    cq = CompletionQueue(env)
    got = []

    def waiter(env):
        completion = yield cq.wait()
        got.append((completion.wr_id, env.now))

    def pusher(env):
        yield env.timeout(25)
        cq.push(Completion(wr_id="late", opcode=Opcode.RECV))

    env.process(waiter(env))
    env.process(pusher(env))
    env.run()
    assert got == [("late", 25)]


def test_cq_wait_immediate_when_entries_exist():
    cluster = Cluster(node_count=1)
    env = cluster.env
    cq = CompletionQueue(env)
    cq.push(Completion(wr_id="ready", opcode=Opcode.RECV))
    got = []

    def waiter(env):
        completion = yield cq.wait()
        got.append(completion.wr_id)

    env.process(waiter(env))
    env.run()
    assert got == ["ready"]
