"""Segment-train push paths: batched sources riding the doorbell-train
machinery (windowed writability proofs, deferred doorbells) must deliver
exactly what per-tuple pushes deliver — across tiny rings, mixed
train/per-segment interleavings, replicate fan-out, and tuple sizes that
disable trains entirely."""

import pytest

from repro.core import (
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Schema,
)
from repro.simnet import Cluster


def _schema(tuple_size):
    if tuple_size <= 8:
        return Schema(("key", "uint64"))
    return Schema(("key", "uint64"), ("pad", tuple_size - 8))


def _run_shuffle(push_fn, tuple_size=64, count=2048, options=None,
                 seed=0):
    """1:1 bandwidth shuffle; returns the consumed tuples in order."""
    cluster = Cluster(node_count=2, seed=seed)
    dfi = DfiRuntime(cluster)
    schema = _schema(tuple_size)
    dfi.init_shuffle_flow("train", [Endpoint(0, 0)], [Endpoint(1, 0)],
                          schema, shuffle_key="key",
                          options=options or FlowOptions())
    pad = b"x" * (tuple_size - 8)
    tuples = [(i, pad) if tuple_size > 8 else (i,) for i in range(count)]
    received = []

    def source_thread():
        source = yield from dfi.open_source("train", 0)
        yield from push_fn(source, schema, tuples)
        yield from source.close()

    def target_thread():
        target = yield from dfi.open_target("train", 0)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                return
            received.extend(batch)

    cluster.env.process(source_thread())
    cluster.env.process(target_thread())
    cluster.run()
    return received, cluster.now


def _push_per_tuple(source, _schema, tuples):
    for values in tuples:
        yield from source.push(values)


def _push_batched(source, _schema, tuples):
    for start in range(0, len(tuples), 1024):
        yield from source.push_batch(tuples[start:start + 1024],
                                     target=0)


def _push_bytes(source, schema, tuples):
    slab = b"".join(schema.pack(values) for values in tuples)
    yield from source.push_bytes(memoryview(slab), target=0)


@pytest.mark.parametrize("push_fn", [_push_batched, _push_bytes])
def test_train_paths_match_per_tuple_delivery(push_fn):
    expected, _ = _run_shuffle(_push_per_tuple)
    got, _ = _run_shuffle(push_fn)
    assert got == expected


@pytest.mark.parametrize("push_fn", [_push_batched, _push_bytes])
def test_train_paths_on_tiny_ring(push_fn):
    """target_segments=2 caps the writability window at 1: every train
    degenerates to windowed proofs of a single slot and must still make
    progress without deadlocking on the full ring."""
    options = FlowOptions(target_segments=2, source_segments=2,
                          credit_threshold=1)
    expected, _ = _run_shuffle(_push_per_tuple, options=options)
    got, _ = _run_shuffle(push_fn, options=options)
    assert got == expected


def test_mixed_train_and_per_tuple_interleaving():
    """Alternating batched and per-tuple pushes exercises the stale-read
    invalidation rules between the train path (windowed proofs) and the
    per-segment path (pipelined footer pre-reads)."""
    def mixed(source, _schema, tuples):
        index = 0
        while index < len(tuples):
            yield from source.push_batch(tuples[index:index + 512],
                                         target=0)
            index += 512
            for values in tuples[index:index + 64]:
                yield from source.push(values)
            index += 64

    expected, _ = _run_shuffle(_push_per_tuple)
    got, _ = _run_shuffle(mixed)
    assert got == expected


def test_non_divisible_tuple_size_falls_back():
    """A tuple size that does not divide the segment payload disables
    trains (a slot cannot leave as one contiguous payload+footer write);
    delivery must still match per-tuple pushes."""
    tuple_size = 48
    expected, _ = _run_shuffle(_push_per_tuple, tuple_size=tuple_size,
                               count=1024)
    got, _ = _run_shuffle(_push_batched, tuple_size=tuple_size,
                          count=1024)
    assert got == expected


def test_train_runs_are_deterministic():
    first = _run_shuffle(_push_batched, seed=3)
    second = _run_shuffle(_push_batched, seed=3)
    assert first == second


def test_close_after_train_flushes_partial_segment():
    """A count that is not a multiple of the segment capacity leaves a
    partial staging buffer behind the last train; close() must flush it
    through the per-segment path."""
    expected, _ = _run_shuffle(_push_per_tuple, count=2048 + 37)
    got, _ = _run_shuffle(_push_batched, count=2048 + 37)
    assert got == expected


# -- replicate trains --------------------------------------------------------

def _run_replicate(batched, tuple_size=256, count=1024):
    cluster = Cluster(node_count=3, seed=0)
    dfi = DfiRuntime(cluster)
    schema = _schema(tuple_size)
    dfi.init_replicate_flow(
        "rep", [Endpoint(0, 0)], [Endpoint(1, 0), Endpoint(2, 0)],
        schema, options=FlowOptions())
    pad = b"x" * (tuple_size - 8)
    tuples = [(i, pad) for i in range(count)]
    received = {0: [], 1: []}

    def source_thread():
        source = yield from dfi.open_source("rep", 0)
        if batched:
            for start in range(0, count, 1024):
                yield from source.push_batch(tuples[start:start + 1024])
        else:
            for values in tuples:
                yield from source.push(values)
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("rep", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            received[index].append(item)

    cluster.env.process(source_thread())
    for index in range(2):
        cluster.env.process(target_thread(index))
    cluster.run()
    return received, cluster.now


def test_replicate_trains_match_per_tuple_delivery():
    expected, _ = _run_replicate(batched=False)
    got, _ = _run_replicate(batched=True)
    assert got == expected
    assert got[0] == got[1]  # both replicas see the full stream
