"""Tests for doorbell batching: kernel event trains, ``post_write_batch``,
deferred doorbells, and deterministic fault semantics mid-train."""

import pytest

from repro.common.errors import QpFlushedError
from repro.rdma import WcStatus, get_nic
from repro.simnet import Cluster, Environment, FaultPlan
from repro.simnet.faults import DEFAULT_DETECTION_TIMEOUT, link_down


# -- kernel: schedule_at / schedule_train ------------------------------------

def test_schedule_at_fires_callback_at_time():
    env = Environment()
    fired = []
    env.schedule_at(5.0, lambda: fired.append(env.now))
    env.schedule_at(2.0, lambda: fired.append(env.now))
    env.run()
    assert fired == [2.0, 5.0]


def test_schedule_train_fires_actions_in_order():
    env = Environment()
    fired = []

    def record(tag):
        fired.append((tag, env.now))

    env.schedule_train([(1.0, record, "a"),
                        (3.0, record, "b"),
                        (3.0, record, "c"),
                        (7.5, record, "d")])
    env.run()
    assert fired == [("a", 1.0), ("b", 3.0), ("c", 3.0), ("d", 7.5)]


def test_schedule_train_interleaves_with_other_events():
    """A train is a scheduling optimization, not a priority lane: its
    actions sort into the global timeline like individual timers."""
    env = Environment()
    fired = []
    env.schedule_at(2.0, lambda: fired.append("solo"))
    env.schedule_train([(1.0, fired.append, "t1"),
                        (3.0, fired.append, "t3")])
    env.run()
    assert fired == ["t1", "solo", "t3"]


# -- QP: post_write_batch ----------------------------------------------------

def _pair():
    cluster = Cluster(node_count=2)
    nic0 = get_nic(cluster.node(0))
    nic1 = get_nic(cluster.node(1))
    remote = nic1.register_memory(4096)
    qp = nic0.create_qp(cluster.node(1))
    return cluster, nic0, qp, remote


def _payloads(n, size=256):
    return [bytes([0x10 + i]) * size for i in range(n)]


def test_post_write_batch_delivers_all_payloads():
    cluster, _nic0, qp, remote = _pair()
    payloads = _payloads(8)

    def sender(env):
        wrs = qp.post_write_batch(
            [(p, remote.rkey, i * 256, i == 7)
             for i, p in enumerate(payloads)])
        yield wrs[-1].done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    for i, payload in enumerate(payloads):
        assert remote.read(i * 256, 256) == payload


def test_train_timing_matches_sequential_posts():
    """The equivalence contract: a train changes wall-clock cost only.
    Tail completion time, ack times of every WQE, and the NIC/fabric
    counters are bit-identical to back-to-back ``post_write`` calls."""
    def run(batched):
        cluster, nic0, qp, remote = _pair()
        payloads = _payloads(8)
        times = {}

        def sender(env):
            if batched:
                wrs = qp.post_write_batch(
                    [(p, remote.rkey, i * 256, i == 7)
                     for i, p in enumerate(payloads)])
            else:
                wrs = [qp.post_write(p, remote.rkey, i * 256,
                                     signaled=(i == 7))
                       for i, p in enumerate(payloads)]
            yield wrs[-1].done
            times["tail"] = env.now
            # Unsignaled WQEs complete lazily; observing done after the
            # run settles them without extra events.
            times["acks"] = [wr.done.triggered for wr in wrs]

        cluster.env.process(sender(cluster.env))
        cluster.run()
        return times, nic0.bytes_posted, cluster.now

    seq = run(batched=False)
    train = run(batched=True)
    assert train == seq


def test_deferred_doorbell_stages_without_posting():
    cluster, nic0, qp, remote = _pair()
    out = {}

    def sender(env):
        wr0 = qp.post_write(b"a" * 64, remote.rkey, 0, doorbell=False)
        wr1 = qp.post_write(b"b" * 64, remote.rkey, 64, signaled=True,
                            doorbell=False)
        # Nothing is on the wire before the doorbell rings.
        out["staged_bytes"] = nic0.bytes_posted
        posted = qp.ring_doorbell()
        out["posted"] = posted == [wr0, wr1]
        yield wr1.done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    assert out["staged_bytes"] == 0
    assert out["posted"]
    assert remote.read(0, 64) == b"a" * 64
    assert remote.read(64, 64) == b"b" * 64


def test_ring_doorbell_empty_is_noop():
    cluster, _nic0, qp, _remote = _pair()
    assert qp.ring_doorbell() == []


def test_train_single_cq_entry_for_one_signaled_wqe():
    cluster, _nic0, qp, remote = _pair()
    out = {}

    def sender(env):
        wrs = qp.post_write_batch(
            [(b"x" * 128, remote.rkey, i * 128, i == 7)
             for i in range(8)])
        yield wrs[-1].done
        out["cq"] = qp.send_cq.poll(max_entries=64)

    cluster.env.process(sender(cluster.env))
    cluster.run()
    assert len(out["cq"]) == 1
    assert out["cq"][0].status is WcStatus.SUCCESS
    assert out["cq"][0].byte_len == 128


def test_loopback_train_delivers_in_order():
    cluster = Cluster(node_count=2)
    nic0 = get_nic(cluster.node(0))
    local = nic0.register_memory(1024)
    qp = nic0.create_qp(cluster.node(0))

    def sender(env):
        wrs = qp.post_write_batch(
            [(bytes([i + 1]) * 128, local.rkey, i * 128, i == 7)
             for i in range(8)])
        yield wrs[-1].done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    for i in range(8):
        assert local.read(i * 128, 128) == bytes([i + 1]) * 128


# -- fault semantics: a link outage splitting a train ------------------------

def _run_split_train(outage_at):
    """Post one 8-segment train into a long outage starting at
    ``outage_at``; returns (delivered prefix length, per-WQE statuses,
    error time, final clock)."""
    cluster = Cluster(node_count=2)
    cluster.install_faults(FaultPlan([
        link_down(0, 1, at=outage_at,
                  duration=20 * DEFAULT_DETECTION_TIMEOUT)]))
    nic1 = get_nic(cluster.node(1))
    remote = nic1.register_memory(8 * 1024)
    qp = get_nic(cluster.node(0)).create_qp(cluster.node(1))
    out = {"statuses": []}

    def sender(env):
        wrs = qp.post_write_batch(
            [(bytes([i + 1]) * 1024, remote.rkey, i * 1024, True)
             for i in range(8)])
        for wr in wrs:
            try:
                yield wr.done
                out["statuses"].append("ok")
            except QpFlushedError:
                out["statuses"].append("flushed")
                out.setdefault("error_at", env.now)

    cluster.env.process(sender(cluster.env))
    cluster.run()
    delivered = 0
    for i in range(8):
        if remote.read(i * 1024, 1024) == bytes([i + 1]) * 1024:
            delivered += 1
        else:
            break
    cq_statuses = [wc.status for wc in qp.send_cq.poll(max_entries=64)]
    return (delivered, tuple(out["statuses"]), out.get("error_at"),
            tuple(cq_statuses), cluster.now)


def test_link_down_mid_train_delivers_prefix_flushes_suffix():
    # 8 x 1 KiB at ~12.8 GB/s wire is ~80 ns per segment; an outage a few
    # segments in admits a prefix and flushes everything after it.
    delivered, statuses, error_at, cq, _now = _run_split_train(
        outage_at=300.0)
    assert 0 < delivered < 8
    assert statuses == ("ok",) * delivered + ("flushed",) * (8 - delivered)
    # Flushed WQEs surface at the detection bound, not at heal time.
    assert error_at == pytest.approx(DEFAULT_DETECTION_TIMEOUT,
                                     rel=0, abs=500.0)
    assert cq.count(WcStatus.RETRY_EXC_ERR) == 8 - delivered
    assert cq.count(WcStatus.SUCCESS) == delivered


def test_outage_before_train_flushes_everything():
    delivered, statuses, _error_at, cq, _now = _run_split_train(
        outage_at=0.0)
    assert delivered == 0
    assert statuses == ("flushed",) * 8
    assert cq.count(WcStatus.RETRY_EXC_ERR) == 8


@pytest.mark.parametrize("seed", range(3))
def test_split_train_bit_reproducible_across_chaos_seeds(seed):
    """Satellite acceptance: for each chaos seed, the split point, the
    flush times, and the final clock are bit-identical across runs."""
    from repro.common.rand import derive_rng

    outage_at = derive_rng(seed, "doorbell-chaos").uniform(100.0, 700.0)
    first = _run_split_train(outage_at)
    second = _run_split_train(outage_at)
    assert first == second
    delivered, statuses, _error_at, _cq, _now = first
    assert statuses == (("ok",) * delivered
                        + ("flushed",) * (8 - delivered))
