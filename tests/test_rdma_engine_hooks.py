"""Tests for the RNIC pipeline model and memory-region write hooks."""

import pytest

from repro.rdma import get_nic
from repro.simnet import Cluster


def test_engine_pipeline_rate_vs_latency():
    """WQE admission is paced by the service interval while each WQE
    still experiences the full processing latency."""
    cluster = Cluster(node_count=2)
    nic = get_nic(cluster.node(0))
    profile = cluster.profile
    first = nic.engine_delay(inline=False)
    second = nic.engine_delay(inline=False)
    # First WQE: no queue, just the processing latency.
    assert first == pytest.approx(profile.nic_processing)
    # Second WQE waits one service slot, then its latency.
    assert second == pytest.approx(profile.nic_wqe_service
                                   + profile.nic_processing)
    assert nic.wqes_processed == 2


def test_engine_inline_latency_lower():
    cluster = Cluster(node_count=2)
    nic = get_nic(cluster.node(0))
    regular = nic.engine_delay(inline=False)
    cluster2 = Cluster(node_count=2)
    nic2 = get_nic(cluster2.node(0))
    inline = nic2.engine_delay(inline=True)
    assert inline < regular


def test_engine_idle_gap_resets_queue():
    cluster = Cluster(node_count=2)
    nic = get_nic(cluster.node(0))
    profile = cluster.profile

    def proc(env):
        nic.engine_delay(inline=False)
        yield env.timeout(10_000)  # long idle: the pipeline drains
        delay = nic.engine_delay(inline=False)
        assert delay == pytest.approx(profile.nic_processing)

    cluster.env.process(proc(cluster.env))
    cluster.run()


# -- write hooks ---------------------------------------------------------

def test_write_hook_fires_on_commit():
    cluster = Cluster(node_count=1)
    region = get_nic(cluster.node(0)).register_memory(64)
    events = []
    region.add_write_hook(lambda offset, length: events.append(
        (offset, length)))
    region.write(8, b"abcd")
    assert events == [(8, 4)]


def test_write_hook_removal():
    cluster = Cluster(node_count=1)
    region = get_nic(cluster.node(0)).register_memory(64)
    events = []
    hook = lambda offset, length: events.append(offset)  # noqa: E731
    region.add_write_hook(hook)
    region.write(0, b"x")
    region.remove_write_hook(hook)
    region.write(1, b"y")
    assert events == [0]


def test_write_hook_not_fired_by_u64_helpers():
    """Credit counters are updated with write_u64 — deliberately without
    waking ring waiters (the source reads them remotely)."""
    cluster = Cluster(node_count=1)
    region = get_nic(cluster.node(0)).register_memory(64)
    events = []
    region.add_write_hook(lambda offset, length: events.append(offset))
    region.write_u64(0, 123)
    region.fetch_add_u64(0, 1)
    assert events == []


def test_hook_fires_for_remote_write_commits():
    """One-sided writes land through region.write, so a waiter armed on
    the region observes both the payload and footer commits."""
    cluster = Cluster(node_count=2)
    nic0, nic1 = get_nic(cluster.node(0)), get_nic(cluster.node(1))
    remote = nic1.register_memory(4096)
    qp = nic0.create_qp(cluster.node(1))
    commits = []
    remote.add_write_hook(
        lambda offset, length: commits.append((offset, length,
                                               cluster.now)))

    def sender(env):
        yield qp.post_write(b"z" * 1024, remote.rkey, 0).done

    cluster.env.process(sender(cluster.env))
    cluster.run()
    # Large write: ordered prefix commit then the 64-byte tail.
    assert len(commits) == 2
    (p_off, p_len, p_t), (t_off, t_len, t_t) = commits
    assert p_off == 0 and p_len == 1024 - 64
    assert t_off == 1024 - 64 and t_len == 64
    assert p_t < t_t  # increasing-address DMA order
