"""Tests for combiner flows and the DfiRuntime facade / registry."""

import pytest

from repro.common.errors import ConfigurationError, RegistryError
from repro.core import (
    FLOW_END,
    AggregationSpec,
    DfiRuntime,
    Endpoint,
    FlowDescriptor,
    FlowOptions,
    FlowType,
    Optimization,
    Schema,
)
from repro.simnet import Cluster

SCHEMA = Schema(("group", "uint64"), ("value", "int64"))


def run_combiner(op, rows_per_source, sources=3, node_count=4):
    cluster = Cluster(node_count=node_count)
    dfi = DfiRuntime(cluster)
    dfi.init_combiner_flow(
        "agg", sources=[f"node{i + 1}|0" for i in range(sources)],
        target="node0|0", schema=SCHEMA,
        aggregation=AggregationSpec(op=op, group_by="group", value="value"))
    result = {}

    def source_thread(index):
        source = yield from dfi.open_source("agg", index)
        for row in rows_per_source(index):
            yield from source.push(row)
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("agg")
        aggregates = yield from target.consume_all()
        result.update(aggregates)

    for s in range(sources):
        cluster.env.process(source_thread(s))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    return result


def test_combiner_sum():
    result = run_combiner("sum", lambda i: [(g, 10) for g in range(5)])
    assert result == {g: 30 for g in range(5)}  # 3 sources x 10


def test_combiner_count():
    result = run_combiner("count", lambda i: [(g, g) for g in range(4)] * 2)
    assert result == {g: 6 for g in range(4)}  # 2 rows x 3 sources


def test_combiner_min_max():
    result_min = run_combiner("min", lambda i: [(0, i * 10 - 5)])
    assert result_min == {0: -5}
    result_max = run_combiner("max", lambda i: [(0, i * 10 - 5)])
    assert result_max == {0: 15}


def test_combiner_negative_values_sum():
    result = run_combiner("sum", lambda i: [(7, -4)])
    assert result == {7: -12}


def test_combiner_incremental_consume_step():
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_combiner_flow(
        "agg", sources=["node1|0"], target="node0|0", schema=SCHEMA,
        aggregation=AggregationSpec(op="sum", group_by="group",
                                    value="value"))
    steps = []

    def source_thread(env):
        source = yield from dfi.open_source("agg", 0)
        for i in range(100):
            yield from source.push((i % 4, 1))
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("agg")
        while True:
            step = yield from target.consume_step()
            if step is FLOW_END:
                steps.append(dict(target.aggregates))
                return
            steps.append(step)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    assert steps[-1] == {g: 25 for g in range(4)}
    assert sum(s for s in steps[:-1]) == 100


def test_combiner_requires_aggregation_spec():
    with pytest.raises(ConfigurationError, match="AggregationSpec"):
        FlowDescriptor(name="bad", flow_type=FlowType.COMBINER,
                       sources=(Endpoint(0, 0),), targets=(Endpoint(1, 0),),
                       schema=SCHEMA)


def test_combiner_single_target_enforced():
    with pytest.raises(ConfigurationError, match="N:1"):
        FlowDescriptor(
            name="bad", flow_type=FlowType.COMBINER,
            sources=(Endpoint(0, 0),),
            targets=(Endpoint(1, 0), Endpoint(2, 0)),
            schema=SCHEMA,
            aggregation=AggregationSpec("sum", "group", "value"))


def test_aggregation_spec_validates_op():
    with pytest.raises(ConfigurationError, match="unknown aggregation"):
        AggregationSpec(op="median", group_by="g", value="v")


# -- registry / runtime ----------------------------------------------------

def test_registry_duplicate_flow_name_rejected():
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="group")
    with pytest.raises(RegistryError, match="already exists"):
        dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                              shuffle_key="group")


def test_registry_unknown_flow():
    cluster = Cluster(node_count=1)
    dfi = DfiRuntime(cluster)
    with pytest.raises(RegistryError, match="unknown flow"):
        dfi.registry.descriptor("nope")


def test_registry_rejects_out_of_cluster_endpoints():
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    with pytest.raises(RegistryError, match="only 2 nodes"):
        dfi.init_shuffle_flow("f", ["node0|0"], ["node7|0"], SCHEMA,
                              shuffle_key="group")


def test_registry_flow_names_listing():
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("b", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="group")
    dfi.init_shuffle_flow("a", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="group")
    assert dfi.registry.flow_names() == ["a", "b"]


def test_descriptor_topology_tags():
    def make(sources, targets):
        return FlowDescriptor(
            name="t", flow_type=FlowType.SHUFFLE,
            sources=tuple(Endpoint(0, i) for i in range(sources)),
            targets=tuple(Endpoint(1, i) for i in range(targets)),
            schema=SCHEMA)

    assert make(1, 1).topology == "1:1"
    assert make(3, 1).topology == "N:1"
    assert make(1, 3).topology == "1:N"
    assert make(2, 3).topology == "N:M"


def test_flow_options_validation():
    with pytest.raises(ConfigurationError):
        FlowOptions(segment_size=0)
    with pytest.raises(ConfigurationError):
        FlowOptions(target_segments=1)
    with pytest.raises(ConfigurationError):
        FlowOptions(credit_threshold=0)
    with pytest.raises(ConfigurationError):
        FlowOptions(retransmit_timeout=0)


def test_runtime_registered_memory_by_node():
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="group")

    live = {}

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        live.update(dfi.registered_memory_by_node())
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("f", 0)
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    memory = dfi.registered_memory_by_node()
    ring = 32 * (8192 + 16)
    assert memory[1] >= ring  # the target ring lives on node 1
    # The simulator snapshots payloads at post time, so the source side
    # registers only scratch buffers while the flow is live; the
    # protocol's send-ring requirement is reported via
    # FlowSource.memory_bytes instead. Closing releases the scratch.
    assert live[0] > 0
    assert memory[0] == 0


def test_global_ordering_only_on_replicate():
    from repro.core import Ordering
    with pytest.raises(ConfigurationError, match="only available"):
        FlowDescriptor(name="bad", flow_type=FlowType.SHUFFLE,
                       sources=(Endpoint(0, 0),), targets=(Endpoint(1, 0),),
                       schema=SCHEMA, ordering=Ordering.GLOBAL)


def test_latency_flow_ignores_segment_size():
    """Latency-optimized flows size segments to one tuple (Section 5.3)."""
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          optimization=Optimization.LATENCY)
    target = None

    def target_thread(env):
        nonlocal target
        target = yield from dfi.open_target("f", 0)

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        yield from source.close()

    cluster.env.process(target_thread(cluster.env))
    cluster.env.process(source_thread(cluster.env))
    cluster.run()
    # 32 segments x (16-byte tuple + 16-byte footer)
    assert target.memory_bytes == 32 * (16 + 16)

# -- batch-fold specialization -------------------------------------------

def _run_combiner_via(op, rows_per_source, consume, sources=3):
    """Like run_combiner but with a pluggable target consume loop."""
    cluster = Cluster(node_count=sources + 1)
    dfi = DfiRuntime(cluster)
    dfi.init_combiner_flow(
        "agg", sources=[f"node{i + 1}|0" for i in range(sources)],
        target="node0|0", schema=SCHEMA,
        aggregation=AggregationSpec(op=op, group_by="group", value="value"))
    result = {}

    def source_thread(index):
        source = yield from dfi.open_source("agg", index)
        for row in rows_per_source(index):
            yield from source.push(row)
        yield from source.close()

    def target_thread():
        target = yield from dfi.open_target("agg")
        yield from consume(target)
        result["aggregates"] = dict(target.aggregates)
        result["count"] = target.tuples_aggregated

    for s in range(sources):
        cluster.env.process(source_thread(s))
    cluster.env.process(target_thread())
    cluster.run()
    return result


def _via_all(target):
    yield from target.consume_all()


def _via_step(target):
    while True:
        step = yield from target.consume_step()
        if step is FLOW_END:
            return
        assert step >= 1  # a step always folds at least one tuple


ROWS = [(3, 14), (1, -5), (3, 2), (2, 0), (1, 7), (2, -9), (3, 14)]


@pytest.mark.parametrize("op", ["sum", "count", "min", "max"])
def test_consume_all_matches_consume_step(op):
    """The two consume loops share the batch fold: identical tables and
    identical tuple counts for every aggregate op."""
    rows = lambda i: [(g, v + i) for g, v in ROWS]  # noqa: E731
    via_all = _run_combiner_via(op, rows, _via_all)
    via_step = _run_combiner_via(op, rows, _via_step)
    assert via_all == via_step
    assert via_all["count"] == 3 * len(ROWS)


@pytest.mark.parametrize("op", ["sum", "count", "min", "max"])
def test_batch_fold_matches_per_tuple_fold(op):
    """The operator-specialized batch fold is a pure wall-clock rewrite
    of ``_fold_in``: same batch, same aggregate table."""
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_combiner_flow(
        "agg", sources=["node1|0"], target="node0|0", schema=SCHEMA,
        aggregation=AggregationSpec(op=op, group_by="group", value="value"))
    captured = {}

    def open_only():
        captured["target"] = yield from dfi.open_target("agg")

    cluster.env.process(open_only())
    cluster.run()
    target = captured["target"]
    batch = [(g, v) for g, v in ROWS * 3] + [(9, -100), (9, 100)]

    reference: dict = {}
    target._aggregates = reference  # _fold_in reads self._aggregates
    for values in batch:
        target._fold_in(values)

    specialized = {}
    target._aggregates = specialized
    fold_batch = target._build_batch_fold()  # rebind to the new table
    fold_batch(batch)
    assert specialized == reference


def test_combiner_empty_flow():
    """Sources that close without pushing yield an empty table."""
    for consume in (_via_all, _via_step):
        result = _run_combiner_via("sum", lambda i: [], consume)
        assert result == {"aggregates": {}, "count": 0}


def test_combiner_abort_surfaces_from_consume_all():
    from repro.common.errors import FlowAbortedError

    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_combiner_flow(
        "agg", sources=["node1|0"], target="node0|0", schema=SCHEMA,
        aggregation=AggregationSpec(op="sum", group_by="group",
                                    value="value"))
    outcome = {}

    def source_thread():
        source = yield from dfi.open_source("agg", 0)
        for i in range(10):
            yield from source.push((0, 1))
        yield from source.abort()

    def target_thread():
        target = yield from dfi.open_target("agg")
        try:
            yield from target.consume_all()
        except FlowAbortedError:
            outcome["aborted"] = True
            outcome["partial"] = target.tuples_aggregated

    cluster.env.process(source_thread())
    cluster.env.process(target_thread())
    cluster.run()
    assert outcome["aborted"]
    # Tuples folded before the abort marker stay folded (latency-mode
    # buffered-before-abort contract holds transitively).
    assert 0 <= outcome["partial"] <= 10
