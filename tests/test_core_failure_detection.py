"""Flow-layer failure detection and policy tests.

Drives the detection machinery end-to-end: consume-side deadline bounds
(FlowTimeoutError vs FlowPeerFailedError), source-side target-failure
policies (``on_target_failure="abort"`` / ``"reroute"``), the naive
replicate all-targets contract, and the multicast retransmit bound under
total datagram loss.
"""

from repro.common import HardwareProfile
from repro.common.errors import (
    FlowAbortedError,
    FlowPeerFailedError,
    FlowTimeoutError,
)
from repro.core import FLOW_END, DfiRuntime, FlowOptions, Schema
from repro.core.flowdef import Optimization
from repro.simnet import Cluster, FaultPlan, node_crash

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))


def _small_options(**overrides):
    base = dict(segment_size=128, source_segments=4, target_segments=4,
                credit_threshold=2)
    base.update(overrides)
    return FlowOptions(**base)


# -- consume-side detection --------------------------------------------------

def test_consume_times_out_on_silent_source():
    """No fault plane, no traffic: the bounded wait surfaces a plain
    FlowTimeoutError (the peer is not *known* dead) at the deadline."""
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("silent", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key",
                          options=_small_options(peer_timeout=50_000.0))
    outcome = {}

    def target_thread():
        target = yield from dfi.open_target("silent", 0)
        try:
            yield from target.consume()
        except FlowTimeoutError as exc:
            outcome["error"] = exc
            outcome["at"] = cluster.now

    cluster.env.process(target_thread())
    cluster.run()
    assert isinstance(outcome["error"], FlowTimeoutError)
    assert outcome["at"] >= 50_000.0


def test_consume_detects_crashed_source():
    """A source that crashes mid-flow is reported as FlowPeerFailedError,
    within (roughly) one peer_timeout of its last segment."""
    cluster = Cluster(node_count=2)
    cluster.install_faults(FaultPlan([node_crash(0, at=200_000.0)]),
                           detection_timeout=20_000.0)
    dfi = DfiRuntime(cluster, master_node_id=1)
    dfi.init_shuffle_flow("crashy", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key",
                          options=_small_options(peer_timeout=60_000.0))
    outcome = {"tuples": 0}

    def source_thread():
        source = yield from dfi.open_source("crashy", 0)
        i = 0
        while True:  # pushes until the crash kills this process
            yield from source.push((i, i))
            i += 1

    def target_thread():
        target = yield from dfi.open_target("crashy", 0)
        try:
            while True:
                item = yield from target.consume()
                if item is FLOW_END:
                    return
                outcome["tuples"] += 1
        except FlowPeerFailedError as exc:
            outcome["error"] = exc
            outcome["at"] = cluster.now

    cluster.node(0).spawn(source_thread())
    cluster.env.process(target_thread())
    cluster.run()
    assert isinstance(outcome["error"], FlowPeerFailedError)
    assert outcome["tuples"] > 0  # pre-crash traffic was delivered
    assert outcome["at"] >= 200_000.0  # not before the crash
    assert outcome["at"] <= 200_000.0 + 2 * 60_000.0  # bounded propagation


# -- source-side failure policy ---------------------------------------------

def _crash_target_run(policy):
    cluster = Cluster(node_count=3)
    cluster.install_faults(FaultPlan([node_crash(2, at=100_000.0)]),
                           detection_timeout=10_000.0)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow(
        "pol", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
        shuffle_key="key",
        options=_small_options(peer_timeout=100_000.0,
                               on_target_failure=policy))
    outcome = {"survivor": [], "source_error": None, "survivor_error": None,
               "closed": False, "failed": ()}

    def source_thread():
        source = yield from dfi.open_source("pol", 0)
        try:
            for i in range(4000):
                yield from source.push((i, i))
            yield from source.close()
            outcome["closed"] = True
        except FlowPeerFailedError as exc:
            outcome["source_error"] = exc
        outcome["failed"] = source.failed_targets

    def survivor_thread():
        target = yield from dfi.open_target("pol", 0)
        try:
            while True:
                item = yield from target.consume()
                if item is FLOW_END:
                    return
                outcome["survivor"].append(item)
        except FlowAbortedError as exc:
            outcome["survivor_error"] = exc

    def victim_thread():
        target = yield from dfi.open_target("pol", 1)
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.env.process(source_thread())
    cluster.env.process(survivor_thread())
    cluster.node(2).spawn(victim_thread())
    cluster.run()
    return outcome


def test_abort_policy_tears_down_the_flow():
    outcome = _crash_target_run("abort")
    assert isinstance(outcome["source_error"], FlowPeerFailedError)
    assert outcome["failed"] == (1,)
    assert not outcome["closed"]
    # The surviving target saw the abort marker, not a hang.
    assert isinstance(outcome["survivor_error"], FlowAbortedError)


def test_reroute_policy_continues_on_the_survivors():
    outcome = _crash_target_run("reroute")
    assert outcome["source_error"] is None
    assert outcome["closed"]
    assert outcome["failed"] == (1,)
    assert outcome["survivor_error"] is None
    # The survivor absorbed the failed target's key share: it received
    # tuples from both halves of the key space after the failure.
    post_failure_keys = {k for k, _v in outcome["survivor"][-200:]}
    assert any(k % 2 == 0 for k in post_failure_keys)
    assert any(k % 2 == 1 for k in post_failure_keys)


# -- naive replicate ---------------------------------------------------------

def test_naive_replicate_aborts_when_a_target_dies():
    """Replicate promises delivery to *all* targets: under the default
    abort policy a dead target voids the flow for everyone."""
    cluster = Cluster(node_count=3)
    cluster.install_faults(FaultPlan([node_crash(2, at=100_000.0)]),
                           detection_timeout=10_000.0)
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "rep", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
        options=_small_options(peer_timeout=100_000.0))
    outcome = {"survivor_error": None, "source_error": None}

    def source_thread():
        source = yield from dfi.open_source("rep", 0)
        try:
            for i in range(4000):
                yield from source.push((i, i))
            yield from source.close()
        except FlowPeerFailedError as exc:
            outcome["source_error"] = exc

    def survivor_thread():
        target = yield from dfi.open_target("rep", 0)
        try:
            while (yield from target.consume()) is not FLOW_END:
                pass
        except FlowAbortedError as exc:
            outcome["survivor_error"] = exc

    def victim_thread():
        target = yield from dfi.open_target("rep", 1)
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.env.process(source_thread())
    cluster.env.process(survivor_thread())
    cluster.node(2).spawn(victim_thread())
    cluster.run()
    assert isinstance(outcome["source_error"], FlowPeerFailedError)
    assert isinstance(outcome["survivor_error"], FlowAbortedError)


def test_naive_replicate_reroute_degrades_to_survivors():
    cluster = Cluster(node_count=3)
    cluster.install_faults(FaultPlan([node_crash(2, at=100_000.0)]),
                           detection_timeout=10_000.0)
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "repr", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
        options=_small_options(on_target_failure="reroute"))
    outcome = {"survivor": 0, "done": False}

    def source_thread():
        source = yield from dfi.open_source("repr", 0)
        for i in range(4000):
            yield from source.push((i, i))
        yield from source.close()
        outcome["failed"] = source.failed_targets

    def survivor_thread():
        target = yield from dfi.open_target("repr", 0)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                outcome["done"] = True
                return
            outcome["survivor"] += 1

    def victim_thread():
        target = yield from dfi.open_target("repr", 1)
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.env.process(source_thread())
    cluster.env.process(survivor_thread())
    cluster.node(2).spawn(victim_thread())
    cluster.run()
    assert outcome["failed"] == (1,)
    assert outcome["done"]
    assert outcome["survivor"] == 4000  # the survivor got every tuple


# -- multicast retransmit bound ---------------------------------------------

def test_multicast_total_loss_hits_the_retransmit_bound():
    """With every datagram dropped (loss probability 1.0) no credit ever
    comes back: the source must give up after ``max_retransmits`` stalled
    rounds instead of retransmitting forever."""
    profile = HardwareProfile().with_multicast_loss(1.0)
    cluster = Cluster(node_count=3, profile=profile)
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "lossy", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
        optimization=Optimization.LATENCY,
        options=_small_options(multicast=True, retransmit_timeout=5_000.0,
                               max_retransmits=4, peer_timeout=80_000.0))
    outcome = {"target_errors": []}

    def source_thread():
        source = yield from dfi.open_source("lossy", 0)
        try:
            for i in range(64):
                yield from source.push((i, i))
            yield from source.close()
        except FlowPeerFailedError as exc:
            outcome["source_error"] = exc
            outcome["at"] = cluster.now

    def target_thread(index):
        target = yield from dfi.open_target("lossy", index)
        try:
            while (yield from target.consume()) is not FLOW_END:
                pass
        except (FlowTimeoutError, FlowAbortedError) as exc:
            outcome["target_errors"].append(exc)

    cluster.env.process(source_thread())
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    assert isinstance(outcome["source_error"], FlowPeerFailedError)
    # Bounded: a handful of 5 µs retransmit rounds, not an endless spin.
    assert outcome["at"] < 1_000_000.0
    # The targets saw nothing and also hit their own bounds (no hang).
    assert len(outcome["target_errors"]) == 2


def test_multicast_target_detects_crashed_source():
    cluster = Cluster(node_count=3)
    cluster.install_faults(FaultPlan([node_crash(0, at=150_000.0)]),
                           detection_timeout=20_000.0)
    dfi = DfiRuntime(cluster, master_node_id=1)
    dfi.init_replicate_flow(
        "mccrash", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
        optimization=Optimization.LATENCY,
        options=_small_options(multicast=True, peer_timeout=60_000.0))
    errors = []

    def source_thread():
        source = yield from dfi.open_source("mccrash", 0)
        i = 0
        while True:
            yield from source.push((i, i))
            i += 1

    def target_thread(index):
        target = yield from dfi.open_target("mccrash", index)
        try:
            while (yield from target.consume()) is not FLOW_END:
                pass
        except FlowPeerFailedError as exc:
            errors.append((index, exc, cluster.now))

    cluster.node(0).spawn(source_thread())
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    assert len(errors) == 2
    for _index, exc, at in errors:
        assert isinstance(exc, FlowPeerFailedError)
        assert 150_000.0 <= at <= 150_000.0 + 3 * 60_000.0
