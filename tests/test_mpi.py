"""Tests for the MPI baseline: point-to-point, collectives, threading."""

import pytest

from repro.common.config import MpiProfile
from repro.common.errors import MpiError
from repro.mpi import ANY_SOURCE, Communicator, MpiRuntime, ThreadingLevel
from repro.simnet import Cluster


def make_world(node_count=2, ranks_per_node=1, **kwargs):
    cluster = Cluster(node_count=node_count)
    runtime = MpiRuntime(cluster, ranks_per_node=ranks_per_node, **kwargs)
    return cluster, runtime


# -- point-to-point ----------------------------------------------------------

def test_send_recv_eager():
    cluster, runtime = make_world()
    received = {}

    def sender(comm):
        yield from comm.send(1, "hello", size=64)

    def receiver(comm):
        payload, size, source = yield from comm.recv()
        received.update(payload=payload, size=size, source=source)

    cluster.env.process(sender(Communicator(runtime, 0)))
    cluster.env.process(receiver(Communicator(runtime, 1)))
    cluster.run()
    assert received == {"payload": "hello", "size": 64, "source": 0}


def test_send_recv_rendezvous_large_message():
    cluster, runtime = make_world()
    profile = runtime.profile
    received = {}
    timeline = {}

    def sender(comm):
        yield from comm.send(1, b"big", size=profile.eager_threshold * 4)
        timeline["send_done"] = comm.node.env.now

    def receiver(comm):
        yield comm.node.env.timeout(50_000)  # receiver arrives late
        payload, size, source = yield from comm.recv()
        received["payload"] = payload
        timeline["recv_done"] = comm.node.env.now

    cluster.env.process(sender(Communicator(runtime, 0)))
    cluster.env.process(receiver(Communicator(runtime, 1)))
    cluster.run()
    assert received["payload"] == b"big"
    # Rendezvous: the send cannot complete before the receiver matched.
    assert timeline["send_done"] >= 50_000


def test_eager_send_completes_before_recv_posted():
    cluster, runtime = make_world()
    timeline = {}

    def sender(comm):
        yield from comm.send(1, "small", size=8)
        timeline["send_done"] = comm.node.env.now

    def receiver(comm):
        yield comm.node.env.timeout(100_000)
        yield from comm.recv()

    cluster.env.process(sender(Communicator(runtime, 0)))
    cluster.env.process(receiver(Communicator(runtime, 1)))
    cluster.run()
    assert timeline["send_done"] < 100_000  # fire-and-forget


def test_recv_filters_by_source_and_tag():
    cluster, runtime = make_world(node_count=3)
    order = []

    def sender(comm, dest, tag, label):
        yield from comm.send(dest, label, size=16, tag=tag)

    def receiver(comm):
        payload, _size, _src = yield from comm.recv(source=2, tag=7)
        order.append(payload)
        payload, _size, _src = yield from comm.recv(source=ANY_SOURCE)
        order.append(payload)

    cluster.env.process(sender(Communicator(runtime, 1), 0, 1, "wrong-tag"))
    cluster.env.process(sender(Communicator(runtime, 2), 0, 7, "match"))
    cluster.env.process(receiver(Communicator(runtime, 0)))
    cluster.run()
    assert order == ["match", "wrong-tag"]


def test_per_message_overhead_dominates_small_tuples():
    """The Fig. 10a effect: runtime per byte explodes for tiny messages."""
    def run(tuple_size, count):
        cluster, runtime = make_world()

        def sender(comm):
            for i in range(count):
                yield from comm.send(1, i, size=tuple_size)

        def receiver(comm):
            for _ in range(count):
                yield from comm.recv()

        cluster.env.process(sender(Communicator(runtime, 0)))
        cluster.env.process(receiver(Communicator(runtime, 1)))
        cluster.run()
        return cluster.now / (count * tuple_size)  # ns per byte

    small = run(16, 200)
    large = run(4096, 200)
    assert small > 10 * large


def test_multithreaded_latch_contention_degrades_throughput():
    """The Fig. 10b collapse: more threads per rank, *lower* throughput."""
    def run(threads):
        cluster, runtime = make_world(
            threading=ThreadingLevel.MULTIPLE)
        per_thread = 200

        def sender(comm):
            for i in range(per_thread):
                yield from comm.send(1, i, size=64)

        def receiver(comm):
            for _ in range(per_thread * threads):
                yield from comm.recv()

        comm0 = Communicator(runtime, 0)
        for _ in range(threads):
            cluster.env.process(sender(comm0))
        cluster.env.process(receiver(Communicator(runtime, 1)))
        cluster.run()
        total = per_thread * threads * 64
        return total / cluster.now  # bytes/ns

    one = run(1)
    eight = run(8)
    assert eight < one  # adding threads makes MPI slower


def test_multiprocess_scales_where_threads_do_not():
    def run_threads(workers):
        cluster, runtime = make_world(threading=ThreadingLevel.MULTIPLE)
        count = 150

        def sender(comm):
            for i in range(count):
                yield from comm.send(1, i, size=64)

        def receiver(comm):
            for _ in range(count * workers):
                yield from comm.recv()

        comm = Communicator(runtime, 0)
        for _ in range(workers):
            cluster.env.process(sender(comm))
        cluster.env.process(receiver(Communicator(runtime, 1)))
        cluster.run()
        return count * workers * 64 / cluster.now

    def run_procs(workers):
        cluster = Cluster(node_count=2)
        runtime = MpiRuntime(cluster, ranks_per_node=workers)
        count = 150
        # Ranks 0..workers-1 on node 0 send; ranks workers.. on node 1 recv.

        def sender(comm, dest):
            for i in range(count):
                yield from comm.send(dest, i, size=64)

        def receiver(comm):
            for _ in range(count):
                yield from comm.recv()

        for w in range(workers):
            cluster.env.process(
                sender(Communicator(runtime, w), workers + w))
            cluster.env.process(
                receiver(Communicator(runtime, workers + w)))
        cluster.run()
        return count * workers * 64 / cluster.now

    threads8 = run_threads(8)
    procs8 = run_procs(8)
    assert procs8 > threads8  # multi-process beats THREAD_MULTIPLE


def test_shm_access_surcharge():
    cluster, runtime = make_world()
    comm = Communicator(runtime, 0)

    def worker(comm):
        yield from comm.charge_shm_access(1_000_000)

    cluster.env.process(worker(comm))
    cluster.run()
    assert cluster.now == pytest.approx(
        1_000_000 * runtime.profile.shm_access_per_byte)


# -- collectives ---------------------------------------------------------------

def test_barrier_synchronizes_all_ranks():
    cluster, runtime = make_world(node_count=4)
    release_times = []

    def worker(comm, delay):
        yield comm.node.env.timeout(delay)
        yield from comm.barrier()
        release_times.append(comm.node.env.now)

    for rank, delay in enumerate((10, 10_000, 500, 70_000)):
        cluster.env.process(worker(Communicator(runtime, rank), delay))
    cluster.run()
    assert len(release_times) == 4
    assert max(release_times) - min(release_times) < 10_000  # together


def test_alltoall_exchanges_rows():
    cluster, runtime = make_world(node_count=4)
    results = {}

    def worker(comm):
        chunks = [((comm.rank, dest), 128) for dest in range(comm.size)]
        received = yield from comm.alltoall(chunks)
        results[comm.rank] = received

    for rank in range(4):
        cluster.env.process(worker(Communicator(runtime, rank)))
    cluster.run()
    for rank in range(4):
        assert results[rank] == [(src, rank) for src in range(4)]


def test_alltoall_is_bulk_synchronous():
    """No rank finishes before the slowest rank has entered (Fig. 12)."""
    cluster, runtime = make_world(node_count=3)
    finish = {}
    straggler_delay = 2_000_000

    def worker(comm, delay):
        yield comm.node.env.timeout(delay)
        chunks = [(None, 256) for _ in range(comm.size)]
        yield from comm.alltoall(chunks)
        finish[comm.rank] = comm.node.env.now

    for rank, delay in enumerate((0, 0, straggler_delay)):
        cluster.env.process(worker(Communicator(runtime, rank), delay))
    cluster.run()
    assert min(finish.values()) >= straggler_delay


def test_alltoall_chunk_count_validated():
    cluster, runtime = make_world(node_count=2)

    def worker(comm):
        yield from comm.alltoall([(None, 8)])  # world size is 2

    cluster.env.process(worker(Communicator(runtime, 0)))
    with pytest.raises(MpiError, match="one chunk per rank"):
        cluster.run()


def test_bcast_delivers_to_all():
    cluster, runtime = make_world(node_count=4)
    got = {}

    def worker(comm):
        payload = "from-root" if comm.rank == 0 else None
        result = yield from comm.bcast(payload, size=1024, root=0)
        got[comm.rank] = result

    for rank in range(4):
        cluster.env.process(worker(Communicator(runtime, rank)))
    cluster.run()
    assert got == {r: "from-root" for r in range(4)}


def test_gather_collects_at_root():
    cluster, runtime = make_world(node_count=3)
    got = {}

    def worker(comm):
        result = yield from comm.gather(comm.rank * 11, size=64, root=0)
        got[comm.rank] = result

    for rank in range(3):
        cluster.env.process(worker(Communicator(runtime, rank)))
    cluster.run()
    assert got[0] == [0, 11, 22]
    assert got[1] is None and got[2] is None


def test_scatter_distributes_from_root():
    cluster, runtime = make_world(node_count=3)
    got = {}

    def worker(comm):
        chunks = ([(f"part{i}", 64) for i in range(3)]
                  if comm.rank == 0 else None)
        result = yield from comm.scatter(chunks, root=0)
        got[comm.rank] = result

    for rank in range(3):
        cluster.env.process(worker(Communicator(runtime, rank)))
    cluster.run()
    assert got == {0: "part0", 1: "part1", 2: "part2"}


def test_allreduce_sum():
    cluster, runtime = make_world(node_count=4)
    got = {}

    def worker(comm):
        result = yield from comm.allreduce(comm.rank + 1, size=8,
                                           op=lambda a, b: a + b)
        got[comm.rank] = result

    for rank in range(4):
        cluster.env.process(worker(Communicator(runtime, rank)))
    cluster.run()
    assert got == {r: 10 for r in range(4)}


def test_rank_placement():
    cluster = Cluster(node_count=2)
    runtime = MpiRuntime(cluster, ranks_per_node=3)
    assert runtime.world_size == 6
    assert runtime.rank_object(0).node.node_id == 0
    assert runtime.rank_object(3).node.node_id == 1
    with pytest.raises(MpiError):
        runtime.rank_object(6)


def test_runtime_validations():
    cluster = Cluster(node_count=1)
    with pytest.raises(MpiError):
        MpiRuntime(cluster, ranks_per_node=0)


def test_isend_overlaps_computation():
    """Non-blocking send: the sender computes while the rendezvous waits."""
    cluster, runtime = make_world()
    profile = runtime.profile
    timeline = {}

    def sender(comm):
        handle = yield from comm.isend(1, b"bulk",
                                       size=profile.eager_threshold * 4)
        timeline["posted"] = comm.node.env.now
        yield comm.node.compute(40_000)  # overlapped work
        timeline["computed"] = comm.node.env.now
        yield from handle.wait()
        timeline["sent"] = comm.node.env.now

    def receiver(comm):
        yield comm.node.env.timeout(100_000)
        yield from comm.recv()

    cluster.env.process(sender(Communicator(runtime, 0)))
    cluster.env.process(receiver(Communicator(runtime, 1)))
    cluster.run()
    assert timeline["posted"] < 10_000  # isend returned immediately
    assert timeline["computed"] < 100_000  # compute ran during the wait
    assert timeline["sent"] >= 100_000  # rendezvous waited for the recv


def test_irecv_wait_returns_payload():
    cluster, runtime = make_world()
    got = {}

    def receiver(comm):
        handle = yield from comm.irecv()
        assert not handle.complete
        payload, size, source = yield from handle.wait()
        got.update(payload=payload, size=size, source=source)

    def sender(comm):
        yield comm.node.env.timeout(5_000)
        yield from comm.send(0, "late-data", size=32)

    cluster.env.process(receiver(Communicator(runtime, 0)))
    cluster.env.process(sender(Communicator(runtime, 1)))
    cluster.run()
    assert got == {"payload": "late-data", "size": 32, "source": 1}


def test_irecv_wait_after_completion():
    cluster, runtime = make_world()
    got = {}

    def receiver(comm):
        handle = yield from comm.irecv()
        yield comm.node.env.timeout(50_000)  # message arrives meanwhile
        assert handle.complete
        payload, _size, _source = yield from handle.wait()
        got["payload"] = payload

    def sender(comm):
        yield from comm.send(0, "early", size=16)

    cluster.env.process(receiver(Communicator(runtime, 0)))
    cluster.env.process(sender(Communicator(runtime, 1)))
    cluster.run()
    assert got["payload"] == "early"
