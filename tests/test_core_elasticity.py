"""Tests for the flow elasticity extension: adding/removing targets of a
running shuffle flow (paper Section 7 future work)."""

import pytest

from repro.common.errors import FlowError, RegistryError
from repro.core import (
    FLOW_END,
    DfiRuntime,
    FlowOptions,
    Schema,
)
from repro.simnet import Cluster

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))
OPTIONS = FlowOptions(segment_size=128, source_segments=4,
                      target_segments=4, credit_threshold=2)


def test_scale_out_adds_target_at_runtime():
    cluster = Cluster(node_count=4)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("elastic", ["node0|0"],
                          ["node1|0", "node2|0"], SCHEMA,
                          shuffle_key="key", options=OPTIONS)
    received = {0: [], 1: [], 2: []}
    phase_two_start = {}

    def source_thread(env):
        source = yield from dfi.open_source("elastic", 0)
        for i in range(200):
            yield from source.push((i, 1))
        # Scale out: a third target joins the running flow.
        new_index = dfi.registry.extend_targets("elastic", "node3|0")
        assert new_index == 2
        cluster.env.process(target_thread(new_index))
        yield from source.adopt_new_targets()
        phase_two_start["t"] = env.now
        for i in range(200, 400):
            yield from source.push((i, 2))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("elastic", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            received[index].append(item)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    total = received[0] + received[1] + received[2]
    assert sorted(k for k, _v in total) == list(range(400))
    # The late target received a share of the post-scale-out tuples...
    assert len(received[2]) > 0
    # ...and nothing from before it joined.
    assert all(phase == 2 for _k, phase in received[2])


def test_scale_in_retires_last_target():
    cluster = Cluster(node_count=4)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("shrink", ["node0|0"],
                          ["node1|0", "node2|0", "node3|0"], SCHEMA,
                          shuffle_key="key", options=OPTIONS)
    received = {0: [], 1: [], 2: []}
    end_times = {}

    def source_thread(env):
        source = yield from dfi.open_source("shrink", 0)
        for i in range(150):
            yield from source.push((i, 1))
        yield from source.retire_target(2)
        for i in range(150, 300):
            yield from source.push((i, 2))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("shrink", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                end_times[index] = cluster.now
                return
            received[index].append(item)

    cluster.env.process(source_thread(cluster.env))
    for index in range(3):
        cluster.env.process(target_thread(index))
    cluster.run()
    total = received[0] + received[1] + received[2]
    assert sorted(k for k, _v in total) == list(range(300))
    # The retired target saw FLOW_END and received no phase-2 tuples.
    assert all(phase == 1 for _k, phase in received[2])
    assert end_times[2] < end_times[0]
    assert end_times[2] < end_times[1]


def test_retire_validations():
    cluster = Cluster(node_count=3)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("r", ["node0|0"], ["node1|0", "node2|0"],
                          SCHEMA, shuffle_key="key", options=OPTIONS)
    failures = []

    def source_thread(env):
        source = yield from dfi.open_source("r", 0)
        try:
            yield from source.retire_target(0)  # not the last index
        except FlowError as exc:
            failures.append(str(exc))
        yield from source.retire_target(1)
        try:
            yield from source.retire_target(0)  # only one target left
        except FlowError as exc:
            failures.append(str(exc))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("r", index)
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    assert len(failures) == 2
    assert "last target" in failures[0]
    assert "only target" in failures[1]


def test_extend_targets_validations():
    cluster = Cluster(node_count=3)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("v", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key", options=OPTIONS)
    with pytest.raises(RegistryError, match="already a target"):
        dfi.registry.extend_targets("v", "node1|0")
    with pytest.raises(RegistryError, match="outside the cluster"):
        dfi.registry.extend_targets("v", "node9|0")
    dfi.init_replicate_flow("rep", ["node0|0"], ["node2|0"], SCHEMA)
    with pytest.raises(RegistryError, match="shuffle flows"):
        dfi.registry.extend_targets("rep", "node1|0")


def test_multiple_sources_adopt_independently():
    """Sources adopting at different times route consistently: the grown
    fan-out applies per source from its adoption point on."""
    cluster = Cluster(node_count=4)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("multi", ["node0|0", "node0|1"],
                          ["node1|0", "node2|0"], SCHEMA,
                          shuffle_key="key", options=OPTIONS)
    received = {0: [], 1: [], 2: []}
    extended = {"done": False}

    def source_thread(index, adopt_after):
        source = yield from dfi.open_source("multi", index)
        for i in range(300):
            if i == adopt_after:
                if not extended["done"]:
                    extended["done"] = True
                    new_index = dfi.registry.extend_targets("multi",
                                                            "node3|0")
                    cluster.env.process(target_thread(new_index))
                yield from source.adopt_new_targets()
            yield from source.push((index * 1000 + i, index))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("multi", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            received[index].append(item)

    cluster.env.process(source_thread(0, 100))
    cluster.env.process(source_thread(1, 200))
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    total = received[0] + received[1] + received[2]
    assert len(total) == 600
    assert len(received[2]) > 0


# -- abort racing elasticity (fault-tolerance extension) ---------------------

def test_abort_racing_extend_targets_does_not_strand_the_new_target():
    """A target adopted while the flow is being aborted must terminate
    with FlowAbortedError — whether its ring was published before the
    abort (it gets a marker) or after (it sees the registry flag)."""
    from repro.common.errors import FlowAbortedError

    cluster = Cluster(node_count=4)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("race", ["node0|0"], ["node1|0", "node2|0"],
                          SCHEMA, shuffle_key="key", options=OPTIONS)
    aborted = []

    def source_thread(env):
        source = yield from dfi.open_source("race", 0)
        for i in range(100):
            yield from source.push((i, 1))
        # The flow grows... and is aborted before the source ever adopts
        # the new target.
        new_index = dfi.registry.extend_targets("race", "node3|0")
        cluster.env.process(target_thread(new_index))
        yield env.timeout(5_000.0)  # the new target opens + publishes
        yield from source.abort()

    def target_thread(index):
        target = yield from dfi.open_target("race", index)
        try:
            while (yield from target.consume()) is not FLOW_END:
                pass
        except FlowAbortedError:
            aborted.append(index)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    # All three targets terminated via the abort — including the adopted
    # one, whose ring the source never pushed a single tuple into.
    assert sorted(aborted) == [0, 1, 2]


def test_target_opening_after_abort_sees_the_flag():
    """The other side of the race: the abort lands *before* the new
    target even publishes its ring. The registry flag (set synchronously
    at abort time) catches it."""
    from repro.common.errors import FlowAbortedError

    cluster = Cluster(node_count=4)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("flag", ["node0|0"], ["node1|0", "node2|0"],
                          SCHEMA, shuffle_key="key", options=OPTIONS)
    outcome = {}

    def source_thread(env):
        source = yield from dfi.open_source("flag", 0)
        yield from source.push((1, 1))
        new_index = dfi.registry.extend_targets("flag", "node3|0")
        yield from source.abort()
        # Only now does the adopted target open.
        cluster.env.process(late_target_thread(new_index))

    def target_thread(index):
        target = yield from dfi.open_target("flag", index)
        try:
            while (yield from target.consume()) is not FLOW_END:
                pass
        except FlowAbortedError:
            outcome[index] = "aborted"

    def late_target_thread(index):
        target = yield from dfi.open_target("flag", index)
        try:
            yield from target.consume()
        except FlowAbortedError:
            outcome[index] = "aborted"

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    assert outcome == {0: "aborted", 1: "aborted", 2: "aborted"}


def test_adopt_after_abort_raises_instead_of_deadlocking():
    """A sibling source adopting new targets on an already-aborted flow
    fails fast (the ring it would wait for will never be written)."""
    from repro.common.errors import FlowAbortedError

    cluster = Cluster(node_count=4)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("sib", ["node0|0", "node0|1"],
                          ["node1|0", "node2|0"], SCHEMA,
                          shuffle_key="key", options=OPTIONS)
    outcome = {}

    def aborter_thread(env):
        source = yield from dfi.open_source("sib", 0)
        yield from source.push((1, 1))
        dfi.registry.extend_targets("sib", "node3|0")
        yield from source.abort()

    def sibling_thread(env):
        source = yield from dfi.open_source("sib", 1)
        yield env.timeout(50_000.0)  # after the abort
        try:
            yield from source.adopt_new_targets()
        except FlowAbortedError:
            outcome["sibling"] = "aborted"

    def target_thread(index):
        from repro.common.errors import FlowAbortedError as Aborted
        target = yield from dfi.open_target("sib", index)
        try:
            while (yield from target.consume()) is not FLOW_END:
                pass
        except Aborted:
            pass

    cluster.env.process(aborter_thread(cluster.env))
    cluster.env.process(sibling_thread(cluster.env))
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    assert outcome == {"sibling": "aborted"}


def test_abort_racing_retire_leaves_no_dangling_channel():
    """retire_target followed by an abort of the shrunken flow: the
    retired target drains to FLOW_END, the rest see the abort, and the
    run terminates (nothing leaks, nothing deadlocks)."""
    from repro.common.errors import FlowAbortedError

    cluster = Cluster(node_count=4)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("ra", ["node0|0"],
                          ["node1|0", "node2|0", "node3|0"], SCHEMA,
                          shuffle_key="key", options=OPTIONS)
    results = {}

    def source_thread(env):
        source = yield from dfi.open_source("ra", 0)
        for i in range(60):
            yield from source.push((i, 1))
        yield from source.retire_target(2)
        for i in range(60, 120):
            yield from source.push((i, 1))
        yield from source.abort()

    def target_thread(index):
        target = yield from dfi.open_target("ra", index)
        try:
            while (yield from target.consume()) is not FLOW_END:
                pass
            results[index] = "flow_end"
        except FlowAbortedError:
            results[index] = "aborted"

    cluster.env.process(source_thread(cluster.env))
    for index in range(3):
        cluster.env.process(target_thread(index))
    cluster.run()
    assert results[2] == "flow_end"  # retired cleanly before the abort
    assert results[0] == "aborted"
    assert results[1] == "aborted"
