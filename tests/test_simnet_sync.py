"""Unit tests for Store, Resource, Barrier and Signal."""

import pytest

from repro.common.errors import SimulationError
from repro.simnet import Barrier, Environment, Resource, Signal, Store


# -- Store -------------------------------------------------------------------

def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    results = []

    def producer(env):
        yield store.put("x")
        yield store.put("y")

    def consumer(env):
        a = yield store.get()
        b = yield store.get()
        results.extend([a, b])

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert results == ["x", "y"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got_at = []

    def consumer(env):
        item = yield store.get()
        got_at.append((env.now, item))

    def producer(env):
        yield env.timeout(50)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got_at == [(50, "late")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    timeline = []

    def producer(env):
        yield store.put(1)
        timeline.append(("put1", env.now))
        yield store.put(2)
        timeline.append(("put2", env.now))

    def consumer(env):
        yield env.timeout(30)
        item = yield store.get()
        timeline.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("put1", 0) in timeline
    put2 = next(entry for entry in timeline if entry[0] == "put2")
    assert put2[1] == 30  # second put admitted only after the get


def test_store_fifo_ordering_many_items():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for i in range(20):
            yield store.put(i)

    def consumer(env):
        for _ in range(20):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == list(range(20))


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_store_len_and_items():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield store.put("a")
        yield store.put("b")

    env.process(producer(env))
    env.run()
    assert len(store) == 2
    assert store.items == ("a", "b")


# -- Resource ----------------------------------------------------------------

def test_resource_mutual_exclusion():
    env = Environment()
    lock = Resource(env, capacity=1)
    timeline = []

    def worker(env, tag, hold):
        yield lock.acquire()
        timeline.append((tag, "in", env.now))
        yield env.timeout(hold)
        timeline.append((tag, "out", env.now))
        lock.release()

    env.process(worker(env, "a", 10))
    env.process(worker(env, "b", 10))
    env.run()
    assert timeline == [
        ("a", "in", 0), ("a", "out", 10),
        ("b", "in", 10), ("b", "out", 20),
    ]


def test_resource_capacity_two_allows_parallelism():
    env = Environment()
    pool = Resource(env, capacity=2)
    done = []

    def worker(env, tag):
        yield pool.acquire()
        yield env.timeout(10)
        pool.release()
        done.append((tag, env.now))

    for tag in ("a", "b", "c"):
        env.process(worker(env, tag))
    env.run()
    assert done == [("a", 10), ("b", 10), ("c", 20)]


def test_resource_queue_length():
    env = Environment()
    lock = Resource(env, capacity=1)

    def holder(env):
        yield lock.acquire()
        yield env.timeout(100)
        lock.release()

    def waiter(env):
        yield lock.acquire()
        lock.release()

    env.process(holder(env))
    env.process(waiter(env))
    env.run(until=50)
    assert lock.queue_length == 1
    assert lock.in_use == 1


def test_resource_release_without_acquire():
    env = Environment()
    lock = Resource(env)
    with pytest.raises(SimulationError):
        lock.release()


# -- Barrier -----------------------------------------------------------------

def test_barrier_releases_all_at_last_arrival():
    env = Environment()
    barrier = Barrier(env, parties=3)
    released = []

    def party(env, delay, tag):
        yield env.timeout(delay)
        yield barrier.wait()
        released.append((tag, env.now))

    env.process(party(env, 10, "a"))
    env.process(party(env, 20, "b"))
    env.process(party(env, 30, "c"))
    env.run()
    assert all(t == 30 for _tag, t in released)
    assert len(released) == 3


def test_barrier_is_reusable():
    env = Environment()
    barrier = Barrier(env, parties=2)
    rounds = []

    def party(env, tag):
        for round_no in range(3):
            yield env.timeout(1)
            yield barrier.wait()
            rounds.append((tag, round_no, env.now))

    env.process(party(env, "a"))
    env.process(party(env, "b"))
    env.run()
    assert len(rounds) == 6
    times = sorted({t for _tag, _r, t in rounds})
    assert times == [1, 2, 3]


# -- Signal ------------------------------------------------------------------

def test_signal_wakes_all_waiters():
    env = Environment()
    signal = Signal(env)
    woken = []

    def waiter(env, tag):
        value = yield signal.wait()
        woken.append((tag, value, env.now))

    def firer(env):
        yield env.timeout(40)
        signal.fire("done")

    env.process(waiter(env, "a"))
    env.process(waiter(env, "b"))
    env.process(firer(env))
    env.run()
    assert sorted(woken) == [("a", "done", 40), ("b", "done", 40)]


def test_signal_wait_after_fire_returns_immediately():
    env = Environment()
    signal = Signal(env)
    signal.fire("v")
    results = []

    def late(env):
        value = yield signal.wait()
        results.append((value, env.now))

    env.process(late(env))
    env.run()
    assert results == [("v", 0)]
    assert signal.fired


def test_signal_double_fire_rejected():
    env = Environment()
    signal = Signal(env)
    signal.fire()
    with pytest.raises(SimulationError):
        signal.fire()
