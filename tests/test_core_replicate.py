"""Integration tests for replicate flows: naive, multicast, ordered, lossy."""

import pytest

from repro.common import HardwareProfile
from repro.common.errors import FlowError
from repro.core import (
    FLOW_END,
    DfiRuntime,
    FlowOptions,
    GapNotification,
    Optimization,
    Ordering,
    Schema,
)
from repro.simnet import Cluster

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))


def run_replicate(node_count=4, sources=1, targets=3, n=200,
                  optimization=Optimization.BANDWIDTH,
                  ordering=Ordering.NONE, multicast=False, loss=0.0,
                  seed=1, options_extra=None):
    profile = HardwareProfile(multicast_loss_probability=loss)
    cluster = Cluster(node_count=node_count, profile=profile, seed=seed)
    dfi = DfiRuntime(cluster)
    options = FlowOptions(multicast=multicast, retransmit_timeout=20_000,
                          **(options_extra or {}))
    dfi.init_replicate_flow(
        "rep",
        sources=[f"node0|{t}" for t in range(sources)],
        targets=[f"node{i + 1}|0" for i in range(targets)],
        schema=SCHEMA, optimization=optimization, ordering=ordering,
        options=options)
    received = {i: [] for i in range(targets)}
    source_stats = {}

    def source_thread(index):
        source = yield from dfi.open_source("rep", index)
        for i in range(n):
            yield from source.push((index * 10 ** 6 + i, i))
        yield from source.close()
        source_stats[index] = source

    def target_thread(index):
        target = yield from dfi.open_target("rep", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            received[index].append(item)

    for s in range(sources):
        cluster.env.process(source_thread(s))
    for t in range(targets):
        cluster.env.process(target_thread(t))
    cluster.run()
    return cluster, received, source_stats


def test_naive_every_target_gets_every_tuple():
    _c, received, _s = run_replicate()
    expected = [(i, i) for i in range(200)]
    for rows in received.values():
        assert rows == expected


def test_naive_latency_mode():
    _c, received, _s = run_replicate(optimization=Optimization.LATENCY, n=80)
    for rows in received.values():
        assert rows == [(i, i) for i in range(80)]


def test_naive_uplink_carries_n_copies():
    """The bottleneck the paper shows in Fig. 8a: N writes on the uplink."""
    cluster, received, _s = run_replicate(targets=3, n=600)
    source_node = cluster.node(0)
    payload_total = sum(len(rows) for rows in received.values()) * 16
    assert source_node.uplink.bytes_carried >= payload_total


def test_multicast_single_uplink_copy():
    """With multicast, the uplink carries each segment exactly once."""
    cluster, received, _s = run_replicate(multicast=True, targets=3, n=600)
    for rows in received.values():
        assert sorted(rows) == [(i, i) for i in range(600)]
    uplink = cluster.node(0).uplink.bytes_carried
    received_total = sum(
        node.downlink.bytes_carried for node in cluster.nodes[1:])
    assert received_total >= 2.5 * uplink  # replicated in the switch


def test_naive_global_ordering_multiple_sources():
    _c, received, _s = run_replicate(sources=3, ordering=Ordering.GLOBAL,
                                     n=100)
    assert received[0] == received[1] == received[2]
    assert len(received[0]) == 300


def test_multicast_global_ordering_multiple_sources():
    _c, received, _s = run_replicate(sources=2, multicast=True,
                                     ordering=Ordering.GLOBAL, n=150)
    assert received[0] == received[1] == received[2]
    assert len(received[0]) == 300


def test_multicast_with_loss_recovers_all_tuples():
    """Loss injection forces NACK-driven retransmissions."""
    cluster, received, stats = run_replicate(
        multicast=True, loss=0.05, n=400,
        optimization=Optimization.LATENCY, seed=9)
    for rows in received.values():
        assert sorted(rows) == [(i, i) for i in range(400)]
    assert cluster.fabric.multicast_drops > 0
    assert stats[0].retransmissions > 0


def test_multicast_ordered_with_loss_keeps_global_order():
    cluster, received, _s = run_replicate(
        multicast=True, loss=0.03, ordering=Ordering.GLOBAL,
        optimization=Optimization.LATENCY, n=300, seed=5)
    assert received[0] == received[1] == received[2]
    assert len(received[0]) == 300
    assert cluster.fabric.multicast_drops > 0


def test_multicast_deterministic_given_seed():
    def run_once():
        cluster, received, _s = run_replicate(
            multicast=True, loss=0.05, n=150,
            optimization=Optimization.LATENCY, seed=21)
        return cluster.now, received

    t1, r1 = run_once()
    t2, r2 = run_once()
    assert t1 == t2
    assert r1 == r2


def test_gap_notify_surfaces_gap_to_application():
    """gap_notify mode: the application sees a GapNotification instead of
    a transparent retransmission (the NOPaxos hook)."""
    profile = HardwareProfile(multicast_loss_probability=0.2)
    cluster = Cluster(node_count=3, profile=profile, seed=13)
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "rep", sources=["node0|0"], targets=["node1|0", "node2|0"],
        schema=SCHEMA, optimization=Optimization.LATENCY,
        ordering=Ordering.GLOBAL,
        options=FlowOptions(multicast=True, gap_notify=True,
                            retransmit_timeout=10_000))
    outcomes = {0: [], 1: []}
    gaps = {0: 0, 1: 0}

    def source_thread(env):
        source = yield from dfi.open_source("rep", 0)
        for i in range(200):
            yield from source.push((i, i))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("rep", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            if isinstance(item, GapNotification):
                gaps[index] += 1
                target.skip_gap(item.missing_seq)
                continue
            outcomes[index].append(item)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    assert gaps[0] + gaps[1] > 0  # losses surfaced as gaps
    # Delivered tuples stay a subsequence of the pushed order.
    for rows in outcomes.values():
        keys = [k for k, _v in rows]
        assert keys == sorted(keys)
        assert len(rows) < 200  # skipped gaps mean missing tuples


def test_skip_gap_on_unordered_flow_requires_source():
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "rep", sources=["node0|0"], targets=["node1|0"], schema=SCHEMA,
        options=FlowOptions(multicast=True))
    holder = {}

    def target_thread(env):
        target = yield from dfi.open_target("rep", 0)
        holder["target"] = target
        while (yield from target.consume()) is not FLOW_END:
            pass

    def source_thread(env):
        source = yield from dfi.open_source("rep", 0)
        yield from source.close()

    cluster.env.process(target_thread(cluster.env))
    cluster.env.process(source_thread(cluster.env))
    cluster.run()
    with pytest.raises(FlowError, match="source_index"):
        holder["target"].skip_gap(0)


def test_replicate_descriptor_validations():
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    with pytest.raises(Exception, match="routing"):
        from repro.core import FlowDescriptor, FlowType, Endpoint
        FlowDescriptor(name="bad", flow_type=FlowType.REPLICATE,
                       sources=(Endpoint(0, 0),), targets=(Endpoint(1, 0),),
                       schema=SCHEMA, shuffle_key="key")


def test_open_replicate_on_shuffle_flow_rejected():
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("shuf", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key")
    from repro.core.replicate import NaiveReplicateSource

    def bad(env):
        yield from NaiveReplicateSource.open(dfi.registry, "shuf", 0)

    cluster.env.process(bad(cluster.env))
    with pytest.raises(FlowError, match="not replicate"):
        cluster.run()
