"""Tests for the segment-granular consume path.

The drain-all rebuild (doorbell-driven scans, multi-segment drains,
coalesced credit writes, zero-copy ``consume_bytes``) is a wall-clock
optimization: it must deliver exactly the same tuples as the per-tuple
path, keep per-channel FIFO order, and leave every simulated metric —
event order, timestamps, credit counter values — bit-identical.
"""

import pytest

from repro.common.errors import FlowAbortedError, FlowError
from repro.core import (
    FLOW_END,
    DfiRuntime,
    FlowOptions,
    Optimization,
    Ordering,
    Schema,
)
from repro.simnet import Cluster

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))
PER_SOURCE = 400


def _build(sources, optimization, seed=7):
    cluster = Cluster(node_count=sources + 1, seed=seed)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow(
        "f", [f"node{1 + s}|0" for s in range(sources)], ["node0|0"],
        SCHEMA, shuffle_key="key", optimization=optimization,
        options=FlowOptions())
    return cluster, dfi


def _sources(cluster, dfi, sources):
    def source_thread(index):
        source = yield from dfi.open_source("f", index)
        batch = [(index * PER_SOURCE + i, i) for i in range(PER_SOURCE)]
        yield from source.push_batch(batch, target=0)
        yield from source.close()

    for s in range(sources):
        cluster.env.process(source_thread(s))


def _run_consume(sources, optimization, mode, prepare=None):
    cluster, dfi = _build(sources, optimization)
    _sources(cluster, dfi, sources)
    out = {"tuples": [], "target": None}

    def target_thread():
        target = yield from dfi.open_target("f", 0)
        out["target"] = target
        if prepare is not None:
            prepare(target)
        if mode == "batched":
            while True:
                batch = yield from target.consume_batch()
                if batch is FLOW_END:
                    return
                out["tuples"].extend(batch)
        else:
            while True:
                item = yield from target.consume()
                if item is FLOW_END:
                    return
                out["tuples"].append(item)

    cluster.env.process(target_thread())
    cluster.run()
    out["now"] = cluster.env.now
    return out


# -- drain-all equivalence -----------------------------------------------

@pytest.mark.parametrize("optimization",
                         [Optimization.BANDWIDTH, Optimization.LATENCY])
def test_consume_batch_matches_per_tuple_delivery(optimization):
    """consume_batch delivers the exact tuples of per-tuple consume with
    per-source FIFO order intact."""
    per_tuple = _run_consume(4, optimization, "per-tuple")
    batched = _run_consume(4, optimization, "batched")
    assert sorted(batched["tuples"]) == sorted(per_tuple["tuples"])
    for s in range(4):
        stream = [t for t in batched["tuples"]
                  if s * PER_SOURCE <= t[0] < (s + 1) * PER_SOURCE]
        assert stream == [(s * PER_SOURCE + i, i) for i in range(PER_SOURCE)]


def test_consume_batch_drains_every_ready_channel():
    """A batch spans channels: once segments from all sources sit in
    their rings, a single consume_batch drains every ready channel — it
    never stops at the first ready segment."""
    cluster, dfi = _build(8, Optimization.BANDWIDTH)
    _sources(cluster, dfi, 8)
    batches = []

    def target_thread():
        target = yield from dfi.open_target("f", 0)
        # Let every source land its data before the first drain
        # (sources only wait on ring publication, which open_target did).
        yield cluster.env.timeout(50_000_000.0)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                return
            batches.append(batch)

    cluster.env.process(target_thread())
    cluster.run()
    assert sum(len(b) for b in batches) == 8 * PER_SOURCE
    assert {t[0] // PER_SOURCE for t in batches[0]} == set(range(8)), (
        "first batch should span every source's channel")


# -- zero-copy consume_bytes ---------------------------------------------

def test_consume_bytes_roundtrips_packed_tuples():
    """Chunks reassemble (via unpack_rows) into exactly the pushed
    tuples, per-source FIFO order intact."""
    cluster, dfi = _build(4, Optimization.BANDWIDTH)
    _sources(cluster, dfi, 4)
    rows = []

    def target_thread():
        target = yield from dfi.open_target("f", 0)
        while True:
            chunks = yield from target.consume_bytes()
            if chunks is FLOW_END:
                return
            # Decode before the next yield: the views alias ring memory
            # already released for reuse.
            for chunk in chunks:
                rows.extend(SCHEMA.unpack_rows(chunk))

    cluster.env.process(target_thread())
    cluster.run()
    assert len(rows) == 4 * PER_SOURCE
    for s in range(4):
        stream = [t for t in rows
                  if s * PER_SOURCE <= t[0] < (s + 1) * PER_SOURCE]
        assert stream == [(s * PER_SOURCE + i, i) for i in range(PER_SOURCE)]


def test_consume_bytes_chunks_are_whole_tuples():
    cluster, dfi = _build(2, Optimization.BANDWIDTH)
    _sources(cluster, dfi, 2)
    sizes = []

    def target_thread():
        target = yield from dfi.open_target("f", 0)
        while True:
            chunks = yield from target.consume_bytes()
            if chunks is FLOW_END:
                return
            sizes.extend(len(c) for c in chunks)

    cluster.env.process(target_thread())
    cluster.run()
    assert sizes and all(size % SCHEMA.tuple_size == 0 for size in sizes)
    assert sum(sizes) == 2 * PER_SOURCE * SCHEMA.tuple_size


def test_consume_bytes_rejects_buffered_tuples():
    """Mixing consume_bytes under leftover unpacked tuples is an error —
    it would reorder the stream."""
    cluster, dfi = _build(1, Optimization.BANDWIDTH)
    _sources(cluster, dfi, 1)
    caught = {}

    def target_thread():
        target = yield from dfi.open_target("f", 0)
        first = yield from target.consume()  # leaves the rest buffered
        assert first == (0, 0)
        try:
            yield from target.consume_bytes()
        except FlowError as exc:
            caught["error"] = str(exc)
        # Drain normally so the flow finishes.
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return

    cluster.env.process(target_thread())
    cluster.run()
    assert "buffered" in caught["error"]


def test_consume_bytes_unavailable_on_ordered_replicate():
    cluster = Cluster(node_count=3, seed=3)
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "r", ["node0|0", "node1|0"], ["node2|0"], SCHEMA,
        ordering=Ordering.GLOBAL)
    caught = {}

    def source_thread(index):
        source = yield from dfi.open_source("r", index)
        yield from source.push((index, index))
        yield from source.close()

    def target_thread():
        target = yield from dfi.open_target("r", 0)
        try:
            yield from target.consume_bytes()
        except FlowError as exc:
            caught["error"] = str(exc)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return

    cluster.env.process(source_thread(0))
    cluster.env.process(source_thread(1))
    cluster.env.process(target_thread())
    cluster.run()
    assert "ordered" in caught["error"]


# -- coalesced credit writes ---------------------------------------------

def _credit_state(target):
    """(local consumed counters, raw credit counter memory) per channel."""
    counters = []
    for channel in target._channels:
        raw = channel._credit_region.mem[
            channel._credit_offset:channel._credit_offset + 8]
        counters.append((channel._consumed, int.from_bytes(raw, "little")))
    return counters


def _run_latency_credit(coalescing):
    def prepare(target):
        for channel in target._channels:
            channel.credit_coalescing = coalescing

    out = _run_consume(4, Optimization.LATENCY, "batched", prepare=prepare)
    out["credits"] = _credit_state(out["target"])
    out["sequence"] = None
    return out


def test_credit_coalescing_is_observationally_identical():
    """One consumed-counter write per drain vs one per segment: same
    tuples, same final credit values, same simulated end time and event
    count — a drain runs inside one event continuation, so no remote
    read can sample between the per-segment writes."""
    coalesced = _run_latency_credit(True)
    per_segment = _run_latency_credit(False)
    assert coalesced["tuples"] == per_segment["tuples"]
    assert coalesced["credits"] == per_segment["credits"]
    assert coalesced["now"] == per_segment["now"]
    # Published counter matches segments actually consumed, per channel.
    for consumed, published in coalesced["credits"]:
        assert published == consumed
        assert consumed >= 1  # data + close marker flowed through


def test_credit_trace_identical_across_placements():
    """Full event-trace fingerprint: seeded latency runs with per-drain
    vs per-segment credit publication schedule the exact same events."""
    traces = []
    for coalescing in (True, False):
        cluster, dfi = _build(2, Optimization.LATENCY)
        _sources(cluster, dfi, 2)
        received = []

        def target_thread():
            target = yield from dfi.open_target("f", 0)
            for channel in target._channels:
                channel.credit_coalescing = coalescing
            while True:
                batch = yield from target.consume_batch()
                if batch is FLOW_END:
                    return
                received.extend(batch)

        cluster.env.process(target_thread())
        cluster.run()
        traces.append((cluster.env.now, cluster.env._sequence,
                       tuple(received)))
    assert traces[0] == traces[1]


# -- abort interaction ----------------------------------------------------

def test_consume_batch_delivers_buffered_tuples_before_abort():
    """A drain pass that picks up data and an abort marker still hands
    the data over first; the abort surfaces on the next call."""
    cluster = Cluster(node_count=2, seed=11)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("f", ["node1|0"], ["node0|0"], SCHEMA,
                          shuffle_key="key",
                          optimization=Optimization.LATENCY)
    outcome = {"received": [], "aborted": False}

    def source_thread():
        source = yield from dfi.open_source("f", 0)
        for i in range(50):
            yield from source.push((i, i))
        yield from source.abort()

    def target_thread():
        target = yield from dfi.open_target("f", 0)
        try:
            while True:
                batch = yield from target.consume_batch()
                if batch is FLOW_END:
                    return
                outcome["received"].extend(batch)
        except FlowAbortedError:
            outcome["aborted"] = True

    cluster.env.process(source_thread())
    cluster.env.process(target_thread())
    cluster.run()
    assert outcome["aborted"]
    assert outcome["received"] == [(i, i) for i in range(50)]
