"""Flows between threads on the same node (loopback transfers).

The paper's thread-centric model allows sources and targets to share a
node; transfers then go through the local NIC loopback rather than the
switch. These tests pin down correctness and the absence of wire traffic.
"""

import pytest

from repro.core import (
    FLOW_END,
    AggregationSpec,
    DfiRuntime,
    FlowOptions,
    Optimization,
    Schema,
)
from repro.simnet import Cluster

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))
OPTIONS = FlowOptions(segment_size=256, source_segments=4,
                      target_segments=4, credit_threshold=2)


def test_same_node_shuffle_uses_no_wire():
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("local", ["node0|0"], ["node0|1"], SCHEMA,
                          shuffle_key="key", options=OPTIONS)
    out = []

    def source_thread(env):
        source = yield from dfi.open_source("local", 0)
        for i in range(300):
            yield from source.push((i, i))
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("local", 0)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            out.append(item)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    assert out == [(i, i) for i in range(300)]
    assert cluster.node(0).uplink.bytes_carried == 0
    assert cluster.node(0).downlink.bytes_carried == 0


def test_same_node_latency_flow():
    cluster = Cluster(node_count=1)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("local", ["node0|0"], ["node0|1"], SCHEMA,
                          optimization=Optimization.LATENCY,
                          options=OPTIONS)
    out = []

    def source_thread(env):
        source = yield from dfi.open_source("local", 0)
        for i in range(100):
            yield from source.push((i, i))
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("local", 0)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            out.append(item)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    assert out == [(i, i) for i in range(100)]


def test_mixed_local_and_remote_targets():
    """An N:M flow where one target shares the source's node: both the
    loopback and the wire path deliver, contents intact."""
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("mix", ["node0|0"], ["node0|1", "node1|0"],
                          SCHEMA, shuffle_key="key", options=OPTIONS)
    received = {0: [], 1: []}

    def source_thread(env):
        source = yield from dfi.open_source("mix", 0)
        for i in range(400):
            yield from source.push((i, i))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("mix", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            received[index].append(item)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    total = sorted(received[0] + received[1])
    assert total == [(i, i) for i in range(400)]
    assert received[0] and received[1]
    # Only the remote target's share crossed the wire.
    assert 0 < cluster.node(0).uplink.bytes_carried < 400 * 16 * 2


def test_same_node_combiner():
    cluster = Cluster(node_count=1)
    dfi = DfiRuntime(cluster)
    dfi.init_combiner_flow(
        "agg", sources=["node0|1", "node0|2"], target="node0|0",
        schema=SCHEMA,
        aggregation=AggregationSpec("sum", "key", "value"),
        options=OPTIONS)
    result = {}

    def source_thread(index):
        source = yield from dfi.open_source("agg", index)
        for i in range(50):
            yield from source.push((i % 5, 2))
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("agg")
        aggregates = yield from target.consume_all()
        result.update(aggregates)

    cluster.env.process(source_thread(0))
    cluster.env.process(source_thread(1))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    assert result == {k: 40 for k in range(5)}


def test_local_transfer_is_faster_than_remote():
    def run(target_spec):
        cluster = Cluster(node_count=2)
        dfi = DfiRuntime(cluster)
        dfi.init_shuffle_flow("t", ["node0|0"], [target_spec], SCHEMA,
                              shuffle_key="key", options=OPTIONS)
        done = {}

        def source_thread(env):
            source = yield from dfi.open_source("t", 0)
            for i in range(500):
                yield from source.push((i, i))
            yield from source.close()

        def target_thread(env):
            target = yield from dfi.open_target("t", 0)
            while (yield from target.consume()) is not FLOW_END:
                pass
            done["t"] = cluster.now

        cluster.env.process(source_thread(cluster.env))
        cluster.env.process(target_thread(cluster.env))
        cluster.run()
        return done["t"]

    assert run("node0|1") < run("node1|0")
