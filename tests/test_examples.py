"""Smoke tests: every shipped example runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "FLOW_END" in out
    assert "consumed" in out


def test_flow_types_tour_example():
    out = run_example("flow_types_tour.py")
    assert "identical global order: True" in out
    assert "{0: 225, 1: 225, 2: 225, 3: 225}" in out


def test_distributed_join_example():
    out = run_example("distributed_join.py", "--size", "20000",
                      "--nodes", "2", "--workers-per-node", "2")
    assert "20,000 matches" in out
    assert "speedup" in out


def test_replicated_kvstore_example():
    out = run_example("replicated_kvstore.py", "--rate", "150000",
                      "--duration-ms", "1.5")
    for protocol in ("multipaxos", "nopaxos", "dare"):
        assert protocol in out


def test_in_network_aggregation_example():
    out = run_example("in_network_aggregation.py")
    assert "in-network (SHARP)" in out
    assert "less inbound traffic" in out
