"""Tests for links, nodes, and the switch fabric model."""

import pytest

from repro.common import HardwareProfile
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.units import KIB, MIB, MICROSECONDS
from repro.simnet import Cluster
from repro.simnet.link import Link


# -- Link --------------------------------------------------------------------

def test_link_serialization_time():
    link = Link("l", bandwidth=1.0)  # 1 B/ns
    assert link.serialization_time(1000) == 1000


def test_link_reserve_fifo_queueing():
    link = Link("l", bandwidth=1.0)
    s1, e1 = link.reserve(100, earliest=0)
    s2, e2 = link.reserve(100, earliest=0)
    assert (s1, e1) == (0, 100)
    assert (s2, e2) == (100, 200)  # head-of-line blocking


def test_link_reserve_idle_gap():
    link = Link("l", bandwidth=1.0)
    link.reserve(100, earliest=0)
    s, e = link.reserve(50, earliest=500)
    assert (s, e) == (500, 550)


def test_link_stats():
    link = Link("l", bandwidth=2.0)
    link.reserve(100, 0)
    link.reserve(300, 0)
    assert link.bytes_carried == 400
    assert link.messages_carried == 2


def test_link_rejects_bad_inputs():
    with pytest.raises(SimulationError):
        Link("bad", bandwidth=0)
    link = Link("l", bandwidth=1.0)
    with pytest.raises(SimulationError):
        link.serialization_time(-1)


def test_link_utilization():
    link = Link("l", bandwidth=1.0)
    link.reserve(100, 0)
    assert link.utilization(200) == pytest.approx(0.5)
    assert link.utilization(0) == 0.0


# -- Cluster / Node ----------------------------------------------------------

def test_cluster_builds_nodes():
    cluster = Cluster(node_count=4)
    assert cluster.node_count == 4
    assert cluster.node(2).name == "node2"


def test_cluster_rejects_bad_node_count():
    with pytest.raises(ConfigurationError):
        Cluster(node_count=0)


def test_cluster_node_id_bounds():
    cluster = Cluster(node_count=2)
    with pytest.raises(ConfigurationError):
        cluster.node(5)


def test_node_compute_scales_with_frequency():
    profile = HardwareProfile(cpu_frequency_scale={1: 0.5})
    cluster = Cluster(node_count=2, profile=profile)
    times = {}

    def worker(node):
        yield node.compute(100)
        times[node.node_id] = node.env.now

    for node in cluster.nodes:
        node.spawn(worker(node))
    cluster.run()
    assert times[0] == 100
    assert times[1] == 200  # straggler at half frequency takes twice as long


def test_straggler_profile_helper():
    profile = HardwareProfile().with_straggler(3, 0.5)
    assert profile.cpu_scale(3) == 0.5
    assert profile.cpu_scale(0) == 1.0


# -- Fabric unicast ----------------------------------------------------------

def test_unicast_uncongested_is_cut_through():
    cluster = Cluster(node_count=2)
    profile = cluster.profile
    size = 64 * KIB
    expected = (profile.wire_latency
                + size / profile.link_bandwidth)
    arrived = {}

    def sender(cluster):
        event = cluster.fabric.unicast(cluster.node(0), cluster.node(1), size)
        yield event
        arrived["t"] = cluster.env.now

    cluster.env.process(sender(cluster))
    cluster.run()
    assert arrived["t"] == pytest.approx(expected, rel=1e-9)


def test_unicast_small_message_latency_dominated():
    cluster = Cluster(node_count=2)
    done = {}

    def sender(cluster):
        yield cluster.fabric.unicast(cluster.node(0), cluster.node(1), 16)
        done["t"] = cluster.env.now

    cluster.env.process(sender(cluster))
    cluster.run()
    # 16 B at 12.5 GB/s ~ 1.3 ns; wire latency dominates.
    assert done["t"] == pytest.approx(cluster.profile.wire_latency, rel=0.01)


def test_unicast_back_to_back_messages_saturate_link():
    cluster = Cluster(node_count=2)
    size = 8 * KIB
    count = 100
    done = {}

    def sender(cluster):
        events = [cluster.fabric.unicast(cluster.node(0), cluster.node(1),
                                         size)
                  for _ in range(count)]
        yield cluster.env.all_of(events)
        done["t"] = cluster.env.now

    cluster.env.process(sender(cluster))
    cluster.run()
    serialization = count * size / cluster.profile.link_bandwidth
    assert done["t"] == pytest.approx(
        serialization + cluster.profile.wire_latency, rel=1e-6)


def test_incast_congestion_on_downlink():
    """Multiple senders to one receiver share the receiver's downlink."""
    cluster = Cluster(node_count=3)
    size = 1 * MIB
    done = {}

    def sender(cluster, src):
        yield cluster.fabric.unicast(cluster.node(src), cluster.node(2), size)
        done[src] = cluster.env.now

    cluster.env.process(sender(cluster, 0))
    cluster.env.process(sender(cluster, 1))
    cluster.run()
    one_serialization = size / cluster.profile.link_bandwidth
    # Both uplinks run in parallel but the shared downlink serializes both.
    assert max(done.values()) >= 2 * one_serialization


def test_loopback_bypasses_links():
    cluster = Cluster(node_count=1)
    node = cluster.node(0)
    done = {}

    def sender(cluster):
        yield cluster.fabric.unicast(node, node, 4 * KIB)
        done["t"] = cluster.env.now

    cluster.env.process(sender(cluster))
    cluster.run()
    assert node.uplink.bytes_carried == 0
    assert node.downlink.bytes_carried == 0
    assert done["t"] < MICROSECONDS


def test_unicast_foreign_node_rejected():
    cluster_a = Cluster(node_count=1)
    cluster_b = Cluster(node_count=1)
    with pytest.raises(SimulationError):
        cluster_a.fabric.unicast(cluster_a.node(0), cluster_b.node(0), 10)


# -- Fabric multicast ----------------------------------------------------------

def test_multicast_single_uplink_serialization():
    """The sender pays one uplink slot regardless of group size."""
    cluster = Cluster(node_count=5)
    source = cluster.node(0)
    members = [cluster.node(i) for i in range(1, 5)]
    size = 1 * MIB

    def sender(cluster):
        arrivals = cluster.fabric.multicast(source, members, size)
        yield cluster.env.all_of([e for e in arrivals.values()])

    cluster.env.process(sender(cluster))
    cluster.run()
    assert source.uplink.messages_carried == 1
    assert source.uplink.bytes_carried == size
    for member in members:
        assert member.downlink.bytes_carried == size


def test_multicast_aggregate_bandwidth_exceeds_sender_link():
    """Core claim behind Fig. 8b: switch replication beats the uplink."""
    cluster = Cluster(node_count=9)
    source = cluster.node(0)
    members = [cluster.node(i) for i in range(1, 9)]
    size = 256 * KIB
    rounds = 50
    done = {}

    def sender(cluster):
        for _ in range(rounds):
            arrivals = cluster.fabric.multicast(source, members, size)
            yield cluster.env.all_of(list(arrivals.values()))
        done["t"] = cluster.env.now

    cluster.env.process(sender(cluster))
    cluster.run()
    received = 8 * rounds * size
    agg_bandwidth = received / done["t"]
    assert agg_bandwidth > 4 * cluster.profile.link_bandwidth


def test_multicast_loss_injection_drops_members():
    profile = HardwareProfile(multicast_loss_probability=0.5)
    cluster = Cluster(node_count=3, profile=profile, seed=7)
    source = cluster.node(0)
    members = [cluster.node(1), cluster.node(2)]
    drops = 0
    total = 0

    def sender(cluster):
        nonlocal drops, total
        for _ in range(200):
            arrivals = cluster.fabric.multicast(source, members, 64)
            for event in arrivals.values():
                total += 1
                if event is None:
                    drops += 1
            yield cluster.env.timeout(10)

    cluster.env.process(sender(cluster))
    cluster.run()
    assert total == 400
    assert 120 < drops < 280  # ~50% loss
    assert cluster.fabric.multicast_drops == drops


def test_multicast_deterministic_across_runs():
    def run_once():
        profile = HardwareProfile(multicast_loss_probability=0.3)
        cluster = Cluster(node_count=3, profile=profile, seed=42)
        outcomes = []

        def sender(cluster):
            for _ in range(50):
                arrivals = cluster.fabric.multicast(
                    cluster.node(0), [cluster.node(1), cluster.node(2)], 64)
                outcomes.append(tuple(e is None for e in arrivals.values()))
                yield cluster.env.timeout(5)

        cluster.env.process(sender(cluster))
        cluster.run()
        return outcomes

    assert run_once() == run_once()


def test_multicast_empty_group_rejected():
    cluster = Cluster(node_count=2)
    with pytest.raises(SimulationError):
        cluster.fabric.multicast(cluster.node(0), [], 64)


def test_cluster_byte_accounting():
    cluster = Cluster(node_count=2)

    def sender(cluster):
        yield cluster.fabric.unicast(cluster.node(0), cluster.node(1), 1000)

    cluster.env.process(sender(cluster))
    cluster.run()
    assert cluster.total_bytes_sent() == 1000
    assert cluster.total_bytes_received() == 1000


def test_loopback_preserves_fifo_order():
    """Regression: a small message posted after a large one on the same
    node must not overtake it (footer-after-payload ordering depends on
    this even for same-node transfers)."""
    cluster = Cluster(node_count=1)
    node = cluster.node(0)
    arrivals = []

    def sender(cluster):
        big = cluster.fabric.unicast(node, node, 512 * KIB)
        small = cluster.fabric.unicast(node, node, 16)
        big.callbacks.append(lambda _e: arrivals.append("big"))
        small.callbacks.append(lambda _e: arrivals.append("small"))
        yield cluster.env.all_of([big, small])

    cluster.env.process(sender(cluster))
    cluster.run()
    assert arrivals == ["big", "small"]
