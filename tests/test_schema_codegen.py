"""Compiled-vs-generic equivalence for the schema codegen layer.

The contract under test: every generated kernel (pack, unpack, route,
fold) is a *wall-clock* accelerator only — byte-identical output,
identical partitions and aggregates, identical error types and messages
to the generic ``struct`` path, across every dtype, field offset, batch
size, and combiner operator. Plus the determinism capstone: a full
simulated flow lands on bit-identical simulated time and results with
codegen on and off (the in-process equivalent of running the fingerprint
under ``REPRO_NO_CODEGEN=1``).
"""

import pytest

from repro.common import config
from repro.common.errors import SchemaError
from repro.core import Schema
from repro.core.routing import key_hash_router
from repro.core.types import BUILTIN_TYPES, fixed_bytes

#: Exercise values per dtype (chosen to round-trip exactly, including
#: negative, zero, and near-boundary encodings).
_VALUES = {
    "int8": (-128, -1, 0, 127),
    "uint8": (0, 1, 200, 255),
    "int16": (-32768, -7, 0, 32767),
    "uint16": (0, 9, 65535, 4096),
    "int32": (-2**31, -42, 0, 2**31 - 1),
    "uint32": (0, 13, 2**32 - 1, 7),
    "int64": (-2**63, -1, 0, 2**63 - 1),
    "uint64": (0, 1, 2**64 - 1, 0x9E3779B97F4A7C15),
    "float": (0.0, 1.5, -2.25, 1024.0),
    "double": (0.0, 3.141592653589793, -1e300, 2.0**-52),
    "char": (b"a", b"\x00", b"\xff", b"z"),
}

BATCH_SIZES = (0, 1, 2, 7, 64, 100, 1024)


def _schemas(*fields):
    """The same layout built twice: with generated kernels and without.

    Both legs are forced explicitly so this suite tests the same
    contract whether or not the host set ``REPRO_NO_CODEGEN``.
    """
    saved = config.CODEGEN_ENABLED
    try:
        config.CODEGEN_ENABLED = True
        compiled = Schema(*fields)
        config.CODEGEN_ENABLED = False
        generic = Schema(*fields)
    finally:
        config.CODEGEN_ENABLED = saved
    assert compiled.codegen_active and not generic.codegen_active
    return compiled, generic


def _rows(schema, count):
    values = []
    for i in range(count):
        row = []
        for field in schema.fields:
            name = field.dtype.name
            if name in _VALUES:
                pool = _VALUES[name]
                row.append(pool[i % len(pool)])
            else:  # fixed_bytes payload
                row.append(bytes([65 + i % 26]) * field.dtype.size)
        values.append(tuple(row))
    return values


@pytest.mark.parametrize("dtype", sorted(BUILTIN_TYPES))
@pytest.mark.parametrize("count", BATCH_SIZES)
def test_pack_many_into_byte_identical(dtype, count):
    fields = (("head", "uint8"), ("x", dtype), ("tail", 3))
    compiled, generic = _schemas(*fields)
    rows = _rows(compiled, count)
    offset = 5  # non-zero: offsets must thread through both paths
    buf_c = bytearray(offset + compiled.tuple_size * count + 2)
    buf_g = bytearray(len(buf_c))
    compiled.pack_many_into(buf_c, offset, rows)
    generic.pack_many_into(buf_g, offset, rows)
    assert buf_c == buf_g


@pytest.mark.parametrize("dtype", sorted(BUILTIN_TYPES))
def test_unpack_rows_identical(dtype):
    fields = (("x", dtype), ("blob", 5))
    compiled, generic = _schemas(*fields)
    rows = _rows(compiled, 100)
    buf = bytearray(compiled.tuple_size * 100)
    compiled.pack_many_into(buf, 0, rows)
    assert compiled.unpack_rows(bytes(buf)) == generic.unpack_rows(
        bytes(buf))


def test_uncached_batch_counts_pack_identically():
    """Counts beyond the batch-struct cache cap take the power-of-two
    chunked path on both legs — still byte-identical."""
    compiled, generic = _schemas(("k", "uint64"), ("pad", 8))
    size = compiled.tuple_size
    for count in (65, 127, 1000, 1025):  # none cached up front
        rows = _rows(compiled, count)
        buf_c = bytearray(size * count)
        buf_g = bytearray(size * count)
        compiled.pack_many_into(buf_c, 0, rows)
        generic.pack_many_into(buf_g, 0, rows)
        assert buf_c == buf_g, count


def test_pack_error_messages_identical():
    compiled, generic = _schemas(("k", "uint64"), ("v", "uint32"))
    bad_batches = (
        [("not-an-int", 1)],
        [(1, 2), (3,)],           # arity mismatch mid-batch
        [(1, 2), (4, -1)],        # range error
    )
    for batch in bad_batches:
        buf = bytearray(compiled.tuple_size * len(batch))
        with pytest.raises(SchemaError) as exc_c:
            compiled.pack_many_into(buf, 0, batch)
        with pytest.raises(SchemaError) as exc_g:
            generic.pack_many_into(buf, 0, batch)
        assert str(exc_c.value) == str(exc_g.value)


def test_unpack_error_messages_identical():
    compiled, generic = _schemas(("k", "uint64"), ("v", "uint64"))
    torn = b"\x01" * 19  # not a multiple of the 16-byte tuple
    with pytest.raises(SchemaError) as exc_c:
        compiled.unpack_rows(torn)
    with pytest.raises(SchemaError) as exc_g:
        generic.unpack_rows(torn)
    assert str(exc_c.value) == str(exc_g.value)


# -- router ------------------------------------------------------------------

@pytest.mark.parametrize("dtype", ("int8", "uint16", "int32", "uint64"))
@pytest.mark.parametrize("targets", (1, 2, 3, 7, 8, 16))
def test_route_many_partitions_identical(dtype, targets):
    compiled, generic = _schemas(("key", dtype), ("pad", 4))
    assert compiled.compiled_route_many(0, None) is not None
    assert generic.compiled_route_many(0, None) is None
    route_c = key_hash_router(compiled, "key").route_many
    route_g = key_hash_router(generic, "key").route_many
    for count in BATCH_SIZES:
        rows = _rows(compiled, count)
        assert route_c(rows, targets) == route_g(rows, targets)


def test_route_many_non_int_dtype_declines():
    """Float/char/bytes keys cannot use the static-int fused hash."""
    for dtype in ("float", "double", "char"):
        compiled, _ = _schemas(("key", dtype))
        assert compiled.compiled_route_many(0, None) is None
    compiled, _ = _schemas(("key", 8))  # fixed_bytes
    assert compiled.compiled_route_many(0, None) is None


def test_route_many_mistyped_batch_replays_through_generic():
    """A batch whose key values violate the declared int dtype must
    produce exactly the generic partitions (whole-batch replay)."""
    compiled, generic = _schemas(("key", "uint64"), ("pad", 4))
    route_c = key_hash_router(compiled, "key").route_many
    route_g = key_hash_router(generic, "key").route_many
    pad = b"ppXX"
    liars = [("zebra", pad), ("ant", pad), (3.5, pad), ("zebra", pad)]
    for targets in (4, 5):
        assert route_c(liars, targets) == route_g(liars, targets)


# -- combiner folds ----------------------------------------------------------

def _generic_fold(schema, chunks, group_index, value_index, op):
    table = {}
    for chunk in chunks:
        for row in schema.unpack_rows(chunk):
            group = row[group_index]
            current = table.get(group)
            if op == "sum":
                value = row[value_index]
                table[group] = (value if current is None
                                else current + value)
            elif op == "count":
                table[group] = 1 if current is None else current + 1
            elif op == "min":
                value = row[value_index]
                if current is None or value < current:
                    table[group] = value
            else:
                value = row[value_index]
                if current is None or value > current:
                    table[group] = value
    return table


@pytest.mark.parametrize("op", ("sum", "count", "min", "max"))
@pytest.mark.parametrize("layout", (
    # (fields, group_index, value_index): group before value, value
    # before group, group == value, wide tuple with skipped columns.
    ((("g", "uint32"), ("v", "int64")), 0, 1),
    ((("v", "double"), ("g", "uint16")), 1, 0),
    ((("g", "uint64"), ("pad", 8)), 0, 0),
    ((("a", 8), ("g", "int16"), ("b", "uint64"), ("v", "double"),
      ("c", 4)), 1, 3),
))
def test_fold_kernel_matches_generic(op, layout):
    fields, group_index, value_index = layout
    compiled, generic = _schemas(*fields)
    factory = compiled.fold_kernel(group_index, value_index, op)
    assert factory is not None
    assert generic.fold_kernel(group_index, value_index, op) is None
    rows = _rows(compiled, 257)
    size = compiled.tuple_size
    buf = bytearray(size * len(rows))
    compiled.pack_many_into(buf, 0, rows)
    packed = bytes(buf)
    # Uneven chunk boundaries (always whole rows, as segments guarantee).
    cut = size * 101
    chunks = [packed[:cut], packed[cut:cut], packed[cut:]]
    table = {}
    folded = factory(table.get, table.__setitem__)(chunks)
    assert folded == len(rows)
    assert table == _generic_fold(
        generic, chunks, group_index, value_index, op)


def test_fold_kernel_unknown_op_declines():
    compiled, _ = _schemas(("g", "uint64"), ("v", "uint64"))
    assert compiled.fold_kernel(0, 1, "median") is None


# -- determinism capstone ----------------------------------------------------

def _run_flow(codegen: bool):
    """One small 2:2 shuffle + fold; returns every simulated observable."""
    from repro.core import (
        FLOW_END,
        AggregationSpec,
        DfiRuntime,
        FlowOptions,
        Optimization,
    )
    from repro.simnet import Cluster

    saved = config.CODEGEN_ENABLED
    config.CODEGEN_ENABLED = codegen
    try:
        schema = Schema(("key", "uint64"), ("value", "uint64"))
        cluster = Cluster(node_count=4)
        dfi = DfiRuntime(cluster)
        dfi.init_combiner_flow(
            "agg", ["node0|0", "node1|0"], "node3|0", schema,
            aggregation=AggregationSpec("sum", "key", "value"),
            optimization=Optimization.BANDWIDTH, options=FlowOptions())
        out = {}

        def source_thread(index):
            source = yield from dfi.open_source("agg", index)
            yield from source.push_batch(
                [(i % 97, i) for i in range(index, 1500 + index)])
            yield from source.close()

        def target_thread():
            target = yield from dfi.open_target("agg", 0)
            while (yield from target.consume_step()) is not FLOW_END:
                pass
            out["aggregated"] = target.tuples_aggregated
            out["at"] = cluster.now

        cluster.node(0).spawn(source_thread(0))
        cluster.node(1).spawn(source_thread(1))
        cluster.node(3).spawn(target_thread())
        cluster.run()
        out["final"] = cluster.now
        return out
    finally:
        config.CODEGEN_ENABLED = saved


def test_flow_bit_identical_with_codegen_off():
    """The in-process REPRO_NO_CODEGEN fingerprint: simulated completion
    times and aggregate counts must be bit-identical across the toggle."""
    assert _run_flow(codegen=True) == _run_flow(codegen=False)
