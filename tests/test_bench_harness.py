"""Tests for the benchmark harness itself (fast, reduced workloads)."""

import os

import pytest

from repro.bench.flows import (
    flow_memory_per_node,
    measure_combiner_bandwidth,
    measure_replicate_bandwidth,
    measure_shuffle_bandwidth,
    measure_shuffle_rtt,
)
from repro.bench.mpi_compare import (
    dfi_p2p_runtime,
    dfi_shuffle_straggler_runtime,
    mpi_alltoall_batched_runtime,
    mpi_p2p_runtime,
)
from repro.bench.reporting import Table
from repro.common.units import gbps_to_bytes_per_ns

LINK = gbps_to_bytes_per_ns(100.0)


def test_shuffle_bandwidth_measurement_sane():
    m = measure_shuffle_bandwidth(256, 2, total_bytes=512 << 10)
    assert 0 < m.bytes_per_ns <= LINK * 1.05
    assert m.payload_bytes > 0 and m.elapsed_ns > 0


def test_shuffle_rtt_measurement_sane():
    rtts = measure_shuffle_rtt(64, 2, iterations=20)
    assert len(rtts) == 20
    assert all(rtt > 0 for rtt in rtts)


def test_replicate_bandwidth_multicast_beats_naive():
    naive = measure_replicate_bandwidth(1024, 1, multicast=False,
                                        total_bytes=256 << 10)
    mcast = measure_replicate_bandwidth(1024, 1, multicast=True,
                                        total_bytes=256 << 10)
    assert mcast.bytes_per_ns > 1.5 * naive.bytes_per_ns


def test_combiner_bandwidth_capped_by_target_link():
    m = measure_combiner_bandwidth(256, 2, total_bytes=512 << 10)
    assert m.bytes_per_ns <= LINK * 1.05


def test_combiner_requires_key_value_tuple():
    with pytest.raises(ValueError):
        measure_combiner_bandwidth(8, 1)


def test_flow_memory_formula_matches_paper():
    assert flow_memory_per_node(2, 4) == 2 * 4 * 8 * 32 * (8192 + 16)
    mib = flow_memory_per_node(8, 14) / (1 << 20)
    assert abs(mib - 785.5) < 4  # the paper's Section 6.1.4 headline


def test_p2p_runtimes_ordering():
    mpi = mpi_p2p_runtime(64, 256 << 10)
    dfi = dfi_p2p_runtime(64, 256 << 10)
    assert dfi < mpi


def test_straggler_runtimes_scale():
    base = mpi_alltoall_batched_runtime(4 << 20, straggler_scale=1.0)
    slow = mpi_alltoall_batched_runtime(4 << 20, straggler_scale=0.5)
    assert slow > 1.3 * base
    dfi_base = dfi_shuffle_straggler_runtime(4 << 20, segment_size=4096)
    dfi_slow = dfi_shuffle_straggler_runtime(4 << 20, straggler_scale=0.5,
                                             segment_size=4096)
    assert dfi_slow > dfi_base
    assert dfi_base < base  # DFI wins without the straggler too


# -- reporting ----------------------------------------------------------------

def test_table_render_and_row_validation():
    table = Table("unit", "A title", ["col_a", "col_b"])
    table.add_row("x", 1)
    table.add_row("longer-value", 22)
    rendered = table.render()
    assert "== unit: A title ==" in rendered
    assert "longer-value" in rendered
    with pytest.raises(ValueError):
        table.add_row("only-one-cell")


def test_table_save_writes_results_file(tmp_path, monkeypatch):
    import repro.bench.reporting as reporting
    monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
    table = Table("unit_save", "t", ["a"])
    table.add_row("v")
    path = table.save()
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as handle:
        assert "unit_save" in handle.read()
