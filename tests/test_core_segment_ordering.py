"""Tests for segment rings, footers, the reorder buffer and SeqTracker."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import FlowError
from repro.core.ordering import ReorderBuffer
from repro.core.replicate import SeqTracker
from repro.core.segment import (
    FLAG_CLOSED,
    FLAG_CONSUMABLE,
    FOOTER_SIZE,
    SegmentRing,
    pack_footer,
    unpack_footer,
)
from repro.rdma import get_nic
from repro.simnet import Cluster


# -- footers -----------------------------------------------------------------

def test_footer_roundtrip():
    footer = unpack_footer(pack_footer(4096, FLAG_CONSUMABLE, 17))
    assert footer.used == 4096
    assert footer.consumable and not footer.closed
    assert footer.seq == 17
    assert footer.source_index == 0


def test_footer_source_index_encoding():
    footer = unpack_footer(
        pack_footer(8, FLAG_CONSUMABLE | FLAG_CLOSED, 3, source_index=12))
    assert footer.source_index == 12
    assert footer.consumable and footer.closed
    assert footer.used == 8


def test_footer_is_16_bytes():
    assert FOOTER_SIZE == 16
    assert len(pack_footer(0, 0, 0)) == 16


@given(st.integers(0, 2 ** 32 - 1), st.integers(0, 3),
       st.integers(0, 2 ** 64 - 1), st.integers(0, 2 ** 15 - 1))
def test_footer_roundtrip_property(used, flags, seq, source):
    footer = unpack_footer(pack_footer(used, flags, seq, source))
    assert footer.used == used
    assert footer.seq == seq
    assert footer.source_index == source
    assert footer.consumable == bool(flags & FLAG_CONSUMABLE)
    assert footer.closed == bool(flags & FLAG_CLOSED)


# -- segment rings ------------------------------------------------------------

@pytest.fixture
def nic():
    return get_nic(Cluster(node_count=1).node(0))


def test_ring_layout(nic):
    ring = SegmentRing.allocate(nic, segment_count=4, segment_size=100)
    assert ring.slot_size == 116
    assert ring.payload_offset(2) == 232
    assert ring.footer_offset(2) == 332
    assert ring.total_bytes == 464


def test_ring_footer_roundtrip_in_memory(nic):
    ring = SegmentRing.allocate(nic, 4, 64)
    ring.write_footer(1, used=48, flags=FLAG_CONSUMABLE, seq=9)
    footer = ring.read_footer(1)
    assert footer.used == 48 and footer.seq == 9 and footer.consumable


def test_ring_starts_writable(nic):
    ring = SegmentRing.allocate(nic, 4, 64)
    for i in range(4):
        assert not ring.read_footer(i).consumable


def test_ring_index_wraps(nic):
    ring = SegmentRing.allocate(nic, 3, 64)
    assert ring.next_index(2) == 0


def test_ring_bounds(nic):
    ring = SegmentRing.allocate(nic, 3, 64)
    with pytest.raises(FlowError):
        ring.payload_offset(3)
    with pytest.raises(FlowError):
        ring.payload_view(0, 65)


def test_ring_too_few_segments(nic):
    with pytest.raises(FlowError):
        SegmentRing.allocate(nic, 1, 64)


def test_ring_region_too_small(nic):
    region = nic.register_memory(100)
    with pytest.raises(FlowError, match="too small"):
        SegmentRing(region, 4, 64)


# -- ReorderBuffer (paper Fig. 6) -----------------------------------------------

def test_reorder_delivers_in_sequence():
    buf = ReorderBuffer()
    buf.insert(3, "c")
    buf.insert(1, "b")
    assert buf.pop_ready() is None  # 0 is missing
    buf.insert(0, "a")
    assert buf.pop_ready() == (0, "a")
    assert buf.pop_ready() == (1, "b")
    assert buf.pop_ready() is None  # 2 missing
    buf.insert(2, "x")
    assert buf.pop_ready() == (2, "x")
    assert buf.pop_ready() == (3, "c")


def test_reorder_figure6_example():
    """The exact scenario of the paper's Figure 6: arrivals 3, 1 then 2."""
    buf = ReorderBuffer()
    buf.insert(3, "s3")
    buf.insert(1, "s1")
    assert buf.pop_ready() is None
    buf.insert(0, "s0")
    assert buf.pop_ready() == (0, "s0")
    assert buf.pop_ready() == (1, "s1")
    buf.insert(2, "s2")
    assert buf.pop_ready() == (2, "s2")
    assert buf.pop_ready() == (3, "s3")
    assert buf.pending == 0


def test_reorder_duplicate_filtering():
    buf = ReorderBuffer()
    assert buf.insert(0, "a")
    assert not buf.insert(0, "a-again")
    assert buf.pop_ready() == (0, "a")
    assert not buf.insert(0, "late-retransmit")
    assert buf.duplicates_dropped == 2


def test_reorder_missing_seq_detection():
    buf = ReorderBuffer()
    assert buf.missing_seq() is None
    buf.insert(5, "later")
    assert buf.missing_seq() == 0
    buf.insert(0, "now")
    buf.pop_ready()
    assert buf.missing_seq() == 1


def test_reorder_skip_gap():
    buf = ReorderBuffer()
    buf.insert(1, "b")
    assert buf.pop_ready() is None
    buf.skip(0)
    assert buf.pop_ready() == (1, "b")
    with pytest.raises(FlowError):
        buf.skip(5)


@given(st.permutations(list(range(30))))
def test_reorder_any_permutation_delivers_in_order(order):
    buf = ReorderBuffer()
    delivered = []
    for seq in order:
        buf.insert(seq, seq)
        while True:
            ready = buf.pop_ready()
            if ready is None:
                break
            delivered.append(ready[0])
    assert delivered == list(range(30))
    assert buf.pending == 0


# -- SeqTracker ---------------------------------------------------------------

def test_seq_tracker_contiguous_advance():
    tracker = SeqTracker()
    assert tracker.add(0) and tracker.add(1)
    assert tracker.contiguous == 2
    assert tracker.missing() is None


def test_seq_tracker_gap_and_fill():
    tracker = SeqTracker()
    tracker.add(0)
    tracker.add(2)
    assert tracker.missing() == 1
    assert tracker.delivered == 2
    tracker.add(1)
    assert tracker.contiguous == 3
    assert tracker.missing() is None


def test_seq_tracker_duplicates():
    tracker = SeqTracker()
    tracker.add(0)
    assert not tracker.add(0)
    tracker.add(2)
    assert not tracker.add(2)
    assert tracker.duplicates_dropped == 2


def test_seq_tracker_skip():
    tracker = SeqTracker()
    tracker.add(1)
    tracker.skip(0)
    assert tracker.contiguous == 2
    with pytest.raises(FlowError):
        tracker.skip(7)


@given(st.permutations(list(range(40))))
def test_seq_tracker_permutation_property(order):
    tracker = SeqTracker()
    for seq in order:
        assert tracker.add(seq)
    assert tracker.contiguous == 40
    assert tracker.missing() is None
