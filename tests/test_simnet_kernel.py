"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.simnet import Environment, Interrupt


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(10)
        yield env.timeout(5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert env.now == 15
    assert p.value == 15


def test_timeout_value_passthrough():
    env = Environment()

    def proc(env):
        got = yield env.timeout(3, value="hello")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(waiter(env, 30, "c"))
    env.process(waiter(env, 10, "a"))
    env.process(waiter(env, 20, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def waiter(env, tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in range(6):
        env.process(waiter(env, tag))
    env.run()
    assert order == list(range(6))


def test_process_waits_on_process():
    env = Environment()

    def child(env):
        yield env.timeout(7)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        return result + 1

    p = env.process(parent(env))
    env.run()
    assert p.value == 43
    assert env.now == 7


def test_wait_on_already_finished_process():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return "early"

    def parent(env, child_proc):
        yield env.timeout(10)
        result = yield child_proc
        return result

    child_proc = env.process(child(env))
    parent_proc = env.process(parent(env, child_proc))
    env.run()
    assert parent_proc.value == "early"
    assert env.now == 10


def test_manual_event_succeed():
    env = Environment()
    gate = env.event()
    results = []

    def waiter(env):
        value = yield gate
        results.append(value)

    def firer(env):
        yield env.timeout(100)
        gate.succeed("go")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert results == ["go"]


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_failed_event_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        try:
            yield gate
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(waiter(env))
    gate.fail(ValueError("boom"))
    env.run()
    assert p.value == "caught boom"


def test_unhandled_process_failure_propagates_to_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("explode")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="explode"):
        env.run()


def test_process_failure_caught_by_waiter_is_defused():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("explode")

    def guardian(env):
        try:
            yield env.process(bad(env))
        except RuntimeError:
            return "handled"

    p = env.process(guardian(env))
    env.run()
    assert p.value == "handled"


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_all_of_collects_values_in_order():
    env = Environment()

    def proc(env):
        values = yield env.all_of([
            env.timeout(30, value="slow"),
            env.timeout(10, value="fast"),
        ])
        return values

    p = env.process(proc(env))
    env.run()
    assert p.value == ["slow", "fast"]
    assert env.now == 30


def test_any_of_returns_first():
    env = Environment()

    def proc(env):
        index, value = yield env.any_of([
            env.timeout(30, value="slow"),
            env.timeout(10, value="fast"),
        ])
        return index, value

    p = env.process(proc(env))
    env.run(p)
    assert p.value == (1, "fast")
    assert env.now == 10


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc(env):
        values = yield env.all_of([])
        return values

    p = env.process(proc(env))
    env.run()
    assert p.value == []


def test_run_until_time_stops_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100)

    env.process(proc(env))
    env.run(until=50)
    assert env.now == 50
    env.run()
    assert env.now == 100


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(10)
        return "finished"

    p = env.process(proc(env))
    assert env.run(until=p) == "finished"


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_run_until_event_deadlock_detected():
    env = Environment()
    gate = env.event()

    def waiter(env):
        yield gate

    env.process(waiter(env))
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=gate)


def test_interrupt_raises_inside_process():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(1000)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == ("interrupted", "wake up", 5)


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_active_process_tracking():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(25)
    assert env.peek() == 25
    env.run()
    assert env.peek() == float("inf")
